"""Setup shim: enables legacy editable installs (`pip install -e .`)
in offline environments that lack the `wheel` package (PEP 660
editable builds need it; `setup.py develop` does not).  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
