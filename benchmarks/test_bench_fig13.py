"""Bench: regenerate Figure 13 (STU cache size sweep)."""

from conftest import run_once

from repro.experiments.figures import figure13

_BENCHES = ["canl", "mcf"]
_SIZES = (256, 1024, 4096)


def test_bench_figure13(benchmark, fresh_runner):
    result = run_once(
        benchmark,
        lambda: figure13(fresh_runner(), _BENCHES, sizes=_SIZES))
    # Shape: DeACT's advantage shrinks as the STU grows.
    for row in result.rows:
        assert row.values[str(_SIZES[0])] >= \
            row.values[str(_SIZES[-1])] - 0.15
