"""Shared fixtures for the figure/table regeneration benches.

Each bench regenerates one of the paper's tables or figures end to end
(trace generation + simulation + reduction) at a reduced scale, so the
whole suite finishes in minutes.  ``pytest benchmarks/
--benchmark-only`` therefore both times the harness and re-checks the
qualitative shape assertions embedded in each bench.

Full-scale regeneration (the numbers recorded in EXPERIMENTS.md) is
``python scripts/generate_experiments_md.py``.
"""

import pytest

from repro.experiments.runner import ExperimentRunner, RunSettings

#: Reduced scale: enough events for warm hit rates over a small
#: footprint; one bench run stays in the hundreds of milliseconds to
#: seconds range.
BENCH_SETTINGS = RunSettings(n_events=16000, footprint_scale=0.06, seed=13)

#: A translation-sensitive, a moderate, and an insensitive benchmark —
#: the minimum set that exercises every qualitative claim.
BENCH_SUBSET = ["canl", "mcf", "mg"]


@pytest.fixture()
def fresh_runner():
    """A new (un-memoized) runner per measurement round."""
    def make():
        return ExperimentRunner(BENCH_SETTINGS)
    return make


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Figure regeneration is seconds-scale; multiple rounds would only
    repeat identical deterministic work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
