"""Shared fixtures for the figure/table regeneration benches.

Each bench regenerates one of the paper's tables or figures end to end
(trace generation + simulation + reduction) at a reduced scale, so the
whole suite finishes in minutes.  ``pytest benchmarks/
--benchmark-only`` therefore both times the harness and re-checks the
qualitative shape assertions embedded in each bench.

Set ``REPRO_SWEEP_JOBS=N`` to fan run matrices out over N worker
processes (results are bit-identical to serial — see
``tests/test_determinism.py``).  Only benches that pass their figure
id to ``fresh_runner`` opt in — those regenerating a figure's default
matrix (3, 4, 9-12, Table III); the sensitivity benches run trimmed
custom matrices and stay serial.  Opted-in timed regions measure the
parallel sweep plus the serial row assembly.

Full-scale regeneration (the numbers recorded in EXPERIMENTS.md) is
``python scripts/generate_experiments_md.py``.
"""

import os

import pytest

from repro.experiments.figures import figure_matrix
from repro.experiments.runner import ExperimentRunner, RunSettings
from repro.experiments.tables import table3_matrix

#: Reduced scale: enough events for warm hit rates over a small
#: footprint; one bench run stays in the hundreds of milliseconds to
#: seconds range.
BENCH_SETTINGS = RunSettings(n_events=16000, footprint_scale=0.06, seed=13)

#: A translation-sensitive, a moderate, and an insensitive benchmark —
#: the minimum set that exercises every qualitative claim.
BENCH_SUBSET = ["canl", "mcf", "mg"]

#: Worker processes per bench run matrix (1 = serial, the default).
SWEEP_JOBS = max(1, int(os.environ.get("REPRO_SWEEP_JOBS", "1") or "1"))


@pytest.fixture()
def fresh_runner():
    """A new (un-memoized) runner per measurement round.

    ``make(figure_id, benchmarks)`` additionally prewarms that
    figure's run matrix through the sweep pool when
    ``REPRO_SWEEP_JOBS`` asks for more than one worker.
    """
    def make(figure_id=None, benchmarks=None):
        runner = ExperimentRunner(BENCH_SETTINGS, jobs=SWEEP_JOBS)
        if figure_id is not None and SWEEP_JOBS > 1:
            if figure_id == "t3":
                triples = table3_matrix(benchmarks or BENCH_SUBSET)
            else:
                triples = figure_matrix(figure_id,
                                        benchmarks or BENCH_SUBSET)
            runner.prewarm(triples)
        return runner
    return make


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Figure regeneration is seconds-scale; multiple rounds would only
    repeat identical deterministic work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
