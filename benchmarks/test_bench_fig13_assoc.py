"""Bench: regenerate the STU associativity study (Section V-D.1
text)."""

from conftest import run_once

from repro.experiments.figures import figure13_assoc

_BENCHES = ["canl", "mcf"]
_WAYS = (4, 32)


def test_bench_figure13_assoc(benchmark, fresh_runner):
    result = run_once(
        benchmark,
        lambda: figure13_assoc(fresh_runner(), _BENCHES,
                               associativities=_WAYS))
    # Higher associativity helps I-FAM, shrinking DeACT's edge.
    for row in result.rows:
        assert row.values["4"] >= row.values["32"] - 0.2
