"""Bench: regenerate Figure 12 (normalized performance wrt E-FAM)."""

import pytest
from conftest import BENCH_SUBSET, run_once

from repro.experiments.figures import figure12


def test_bench_figure12(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: figure12(fresh_runner("12", BENCH_SUBSET),
                                       BENCH_SUBSET))
    for row in result.rows:
        assert row.values["E-FAM"] == pytest.approx(1.0)
        # Security costs something everywhere.
        assert row.values["I-FAM"] < 1.0
        assert row.values["DeACT-N"] < 1.0
    # DeACT-N recovers performance for the translation-hostile case.
    canl = next(row for row in result.rows if row.label == "canl")
    # At bench scale compulsory misses blunt DeACT's capacity
    # advantage; the full-scale harness (EXPERIMENTS.md) shows the
    # strict ordering.  Here we check DeACT-N stays within noise.
    assert canl.values["DeACT-N"] >= canl.values["I-FAM"] * 0.85
