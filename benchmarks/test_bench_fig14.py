"""Bench: regenerate Figure 14 (ACM width effect)."""

from conftest import run_once

from repro.experiments.figures import figure14

_BENCHES = ["canl", "mcf"]


def test_bench_figure14(benchmark, fresh_runner):
    result = run_once(
        benchmark,
        lambda: figure14(fresh_runner(), _BENCHES, widths=(8, 32)))
    for row in result.rows:
        # Every series present and positive; DeACT-W moves little with
        # width (the paper's 'performance improvement is almost same').
        for series in result.series:
            assert row.values[series] > 0.0
        assert abs(row.values["W/8"] - row.values["W/32"]) < 0.8
