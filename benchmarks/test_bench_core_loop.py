"""Core per-event loop microbenchmark: reworked path vs seed path.

Measures the per-event simulation core — trace decode, TLB probe,
cache-hierarchy access, retirement — by running the same traces
through the production fast path (``Trace.decoded`` +
``Node.run_decoded`` and the allocation-free probe entry points) and
through the frozen seed implementation (:mod:`repro.core.refpath`),
on fresh systems each time.

The headline workload is ``lu`` (dense blocked reuse — the catalog
entry where the per-event loop, not the FAM bank model, dominates),
run on **all four** architectures; ``bc`` (power-law graph reuse) is
measured alongside as the second datapoint.  The acceptance gate is
an aggregate >= 2x speedup on ``lu``, with every run first checked
bit-identical to the reference (a fast-but-wrong path must not pass).

Smoke mode (``REPRO_BENCH_CORE_SMOKE=1``, used by the CI
microbenchmark step) shrinks the trace and skips the ratio gates
entirely — sub-100ms runs on shared runners are too jittery for any
wall-clock assert — while still checking bit-identity and printing
events/sec so regressions are visible in PR logs.
"""

import os
import time

import pytest

from repro.config.presets import default_config
from repro.core.system import FamSystem
from repro.experiments.runner import (
    RunSettings,
    _result_to_dict,
    build_traces,
)

SMOKE = os.environ.get("REPRO_BENCH_CORE_SMOKE", "") == "1"
SETTINGS = RunSettings(n_events=4000 if SMOKE else 16000,
                       footprint_scale=0.06, seed=13)
ARCHS = ("e-fam", "i-fam", "deact-w", "deact-n")
HEADLINE_BENCH = "lu"
SECONDARY_BENCH = "bc"
REPEATS = 2 if SMOKE else 3
#: Acceptance: the reworked core loop is >= 2x the seed path.  Smoke
#: runs are too short for any stable ratio assert (shared CI runners
#: can throttle mid-measurement), so smoke mode only prints the
#: census and checks bit-identity.
MIN_AGGREGATE_SPEEDUP = 2.0


def _best_time(run, repeats=REPEATS):
    """Best-of-N wall time (and the last result) for ``run()``."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _measure(bench, arch):
    """(fast_s, ref_s, identical) for one benchmark × architecture."""
    traces = build_traces(bench, 1, SETTINGS)
    config = default_config()
    seed = SETTINGS.seed * 31 + 5

    def run_fast():
        return FamSystem(config, arch, seed=seed).run(traces,
                                                      benchmark=bench)

    def run_reference():
        return FamSystem(config, arch, seed=seed).run(
            traces, benchmark=bench, reference=True)

    fast_s, fast_result = _best_time(run_fast)
    ref_s, ref_result = _best_time(run_reference)
    identical = _result_to_dict(fast_result) == _result_to_dict(ref_result)
    return fast_s, ref_s, identical


@pytest.fixture(scope="module")
def core_loop_measurement():
    """One measurement pass shared by the assertions below."""
    rows = {}
    for bench in (HEADLINE_BENCH, SECONDARY_BENCH):
        for arch in ARCHS:
            rows[(bench, arch)] = _measure(bench, arch)
    # Always print the census — this is what the CI smoke step surfaces.
    print()
    print(f"core-loop microbenchmark ({SETTINGS.n_events} events"
          f"{', smoke' if SMOKE else ''}):")
    for (bench, arch), (fast_s, ref_s, identical) in rows.items():
        rate = SETTINGS.n_events / fast_s
        print(f"  {bench:3s} {arch:8s} fast={fast_s * 1000:7.1f}ms "
              f"({rate:9.0f} events/s)  seed={ref_s * 1000:7.1f}ms  "
              f"speedup={ref_s / fast_s:5.2f}x  identical={identical}")
    return rows


def test_fast_path_is_bit_identical(core_loop_measurement):
    # Guard: a fast-but-wrong loop must not win the benchmark.
    assert all(identical for _f, _r, identical
               in core_loop_measurement.values())


def test_core_loop_speedup(core_loop_measurement):
    """Acceptance: aggregate >= 2x on the headline workload."""
    if SMOKE:
        pytest.skip("ratio gate needs full-size traces on a quiet "
                    "machine; smoke mode prints the census only")
    fast_total = sum(core_loop_measurement[(HEADLINE_BENCH, arch)][0]
                     for arch in ARCHS)
    ref_total = sum(core_loop_measurement[(HEADLINE_BENCH, arch)][1]
                    for arch in ARCHS)
    speedup = ref_total / fast_total
    assert speedup >= MIN_AGGREGATE_SPEEDUP, (
        f"core loop aggregate speedup {speedup:.2f}x on "
        f"{HEADLINE_BENCH} fell below {MIN_AGGREGATE_SPEEDUP}x")


def test_secondary_workload_speedup(core_loop_measurement):
    """The graph-reuse workload must also clearly beat the seed path
    (floor below the headline gate: more FAM-path dilution)."""
    if SMOKE:
        pytest.skip("ratio gate needs full-size traces on a quiet "
                    "machine; smoke mode prints the census only")
    fast_total = sum(core_loop_measurement[(SECONDARY_BENCH, arch)][0]
                     for arch in ARCHS)
    ref_total = sum(core_loop_measurement[(SECONDARY_BENCH, arch)][1]
                    for arch in ARCHS)
    assert ref_total / fast_total >= 1.5


def test_bench_core_loop_fast_path(benchmark):
    """pytest-benchmark record of the production path (one run)."""
    traces = build_traces(HEADLINE_BENCH, 1, SETTINGS)
    config = default_config()

    def run():
        return FamSystem(config, "deact-n",
                         seed=SETTINGS.seed * 31 + 5).run(
            traces, benchmark=HEADLINE_BENCH)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.nodes[0].memory_accesses == SETTINGS.n_events
