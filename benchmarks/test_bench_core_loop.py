"""Core per-event loop microbenchmark: the three execution tiers.

Measures the per-event simulation core by running the same traces
through every tier on fresh systems each time:

* ``reference`` — the frozen seed loop (:mod:`repro.core.refpath`);
* ``fast`` — the PR-2 allocation-free scalar loop;
* ``batch`` — the hit-run engine (:mod:`repro.core.batch`).

Workloads: ``hotspot`` (the L1-hit-dominated catalog kernel — the
batch tier's home turf and its 3x acceptance gate), ``hot-loop``
(synthetic hit-dominated sweep; warm-up-bound, so its floor is lower
— the 512-block cold lap runs scalar and caps the ratio near 2x),
plus ``lu`` and ``bc`` from the catalog (miss-heavy; the batch tier
only has to hold parity with the scalar loop there).  Every cell is
first checked bit-identical across tiers — a fast-but-wrong path must
not win the benchmark.

The measurement pass is shared with ``deact bench``
(:mod:`repro.experiments.bench`) and always *appends* the census to
the ``BENCH_core_loop.json`` trajectory (override the path with
``REPRO_BENCH_JSON``) so future PRs can track the events/s trajectory
per tier; regression gating against the committed baseline moved to
``deact bench compare --against-baseline`` (the CI step), which
scores every (benchmark, architecture, tier) cell instead of the old
single batch-not-slower-than-fast smoke gate.

Smoke mode (``REPRO_BENCH_CORE_SMOKE=1``, the CI microbenchmark step)
shrinks the trace and skips the wall-clock ratio gates — sub-100ms
runs on shared runners are too jittery for strict per-run floors.
"""

import os

import pytest

from repro.config.presets import default_config
from repro.core.system import FamSystem
from repro.experiments.bench import (
    HOT_BENCH,
    build_bench_traces,
    measure_core_loop,
    render_census,
    write_bench_json,
)
from repro.experiments.runner import RunSettings

SMOKE = os.environ.get("REPRO_BENCH_CORE_SMOKE", "") == "1"
SETTINGS = RunSettings(n_events=4000 if SMOKE else 16000,
                       footprint_scale=0.06, seed=13)
ARCHS = ("e-fam", "i-fam", "deact-w", "deact-n")
#: The batch tier's acceptance workloads (hit-dominated) and the
#: PR-2 catalog workloads (miss-heavy trajectory).
HIT_BENCH = "hotspot"
WARM_BENCH = HOT_BENCH
HEADLINE_BENCH = "lu"
SECONDARY_BENCH = "bc"
#: Repeat floor per cell: the harness rotates tiers and tops up
#: short-wall cells to a fixed sample budget (``bench.MIN_SAMPLE_S``),
#: so 3 is the floor the long reference walls settle at, not the
#: sample count the ratio gates ride on.
REPEATS = 3
#: Acceptance gates, tolerance-adjusted for host contention.  Quiet
#: hosts measure the scalar fast loop at >= 2x the seed path on
#: ``lu``, and the batch tier at 3.0-3.8x the fast loop on the
#: hit-dominated ``hotspot`` kernel (the committed trajectory entry
#: records 3.03x) and ~1.8x on the warm-up-bound ``hot-loop`` sweep.
#: The gates back each target off ~20%: a contended host suppresses
#: the bandwidth-bound batched NumPy passes disproportionately to the
#: interpreter-bound scalar loop, so the *ratio* itself — not just
#: its noise band — degrades under a noisy neighbor.
MIN_FAST_SPEEDUP = 2.0
MIN_BATCH_SPEEDUP = 2.4
MIN_BATCH_SPEEDUP_WARM = 1.5


@pytest.fixture(scope="module")
def core_loop_measurement(tmp_path_factory):
    """One three-tier measurement pass shared by the assertions below;
    always appended to the perf-trajectory JSON.

    Only full-size runs may append to the committed repo-root baseline
    — a smoke pass writes its census to a temp file (or wherever
    ``REPRO_BENCH_JSON`` points) so running the CI command locally
    cannot pollute the real trajectory with 4000-event jitter.
    """
    payload = measure_core_loop(
        SETTINGS, (HIT_BENCH, WARM_BENCH, HEADLINE_BENCH,
                   SECONDARY_BENCH), ARCHS,
        repeats=REPEATS)
    payload["smoke"] = SMOKE
    if SMOKE and not os.environ.get("REPRO_BENCH_JSON"):
        out = str(tmp_path_factory.mktemp("bench") /
                  "BENCH_core_loop.json")
    else:
        out = None  # default: $REPRO_BENCH_JSON or the repo-root baseline
    path = write_bench_json(payload, out)
    # Always print the census — this is what the CI smoke step surfaces.
    print()
    print(render_census(payload))
    print(f"  -> {path}")
    return payload


def test_all_tiers_bit_identical(core_loop_measurement):
    # Guard: a fast-but-wrong loop must not win the benchmark.
    assert all(row["identical_to_first_tier"]
               for row in core_loop_measurement["rows"])


def test_bench_json_schema(core_loop_measurement):
    payload = core_loop_measurement
    tiers = {row["tier"] for row in payload["rows"]}
    assert tiers == {"reference", "fast", "batch"}
    for bench in (HIT_BENCH, WARM_BENCH, HEADLINE_BENCH,
                  SECONDARY_BENCH):
        aggregate = payload["aggregates"][bench]
        assert "batch_speedup_vs_fast" in aggregate
        assert "fast_speedup_vs_reference" in aggregate
        assert all(rate > 0
                   for rate in aggregate["events_per_sec"].values())


def test_core_loop_speedup(core_loop_measurement):
    """PR-2 acceptance: scalar fast loop >= 2x the seed on ``lu``."""
    if SMOKE:
        pytest.skip("ratio gate needs full-size traces on a quiet "
                    "machine; smoke mode prints the census only")
    aggregate = core_loop_measurement["aggregates"][HEADLINE_BENCH]
    assert aggregate["fast_speedup_vs_reference"] >= MIN_FAST_SPEEDUP, (
        f"core loop fast-vs-seed speedup "
        f"{aggregate['fast_speedup_vs_reference']:.2f}x on "
        f"{HEADLINE_BENCH} fell below {MIN_FAST_SPEEDUP}x")


def test_secondary_workload_speedup(core_loop_measurement):
    """The graph-reuse workload must also clearly beat the seed path
    (floor below the headline gate: more FAM-path dilution)."""
    if SMOKE:
        pytest.skip("ratio gate needs full-size traces on a quiet "
                    "machine; smoke mode prints the census only")
    aggregate = core_loop_measurement["aggregates"][SECONDARY_BENCH]
    assert aggregate["fast_speedup_vs_reference"] >= 1.5


def test_batch_tier_speedup_hit_dominated(core_loop_measurement):
    """The batch acceptance gate: >= 3x the scalar fast loop,
    aggregated over all four architectures, on the L1-hit-dominated
    catalog kernel."""
    if SMOKE:
        pytest.skip("ratio gate needs full-size traces on a quiet "
                    "machine; smoke mode prints the census only")
    aggregate = core_loop_measurement["aggregates"][HIT_BENCH]
    assert aggregate["batch_speedup_vs_fast"] >= MIN_BATCH_SPEEDUP, (
        f"batch-vs-fast speedup "
        f"{aggregate['batch_speedup_vs_fast']:.2f}x on {HIT_BENCH} "
        f"fell below {MIN_BATCH_SPEEDUP}x")


def test_batch_tier_speedup_warmup_bound(core_loop_measurement):
    """``hot-loop`` is hit-dominated but warm-up-bound: its 512-block
    cold lap runs scalar and caps the achievable ratio near 2x, so
    its floor sits below the ``hotspot`` gate."""
    if SMOKE:
        pytest.skip("ratio gate needs full-size traces on a quiet "
                    "machine; smoke mode prints the census only")
    aggregate = core_loop_measurement["aggregates"][WARM_BENCH]
    assert aggregate["batch_speedup_vs_fast"] >= MIN_BATCH_SPEEDUP_WARM, (
        f"batch-vs-fast speedup "
        f"{aggregate['batch_speedup_vs_fast']:.2f}x on {WARM_BENCH} "
        f"fell below {MIN_BATCH_SPEEDUP_WARM}x")


def test_bench_json_appends_trajectory_entry(core_loop_measurement,
                                             tmp_path):
    """Two writes to one path append two provenance-stamped entries —
    the trajectory is a time series, never an overwrite."""
    from repro.experiments.bench import write_bench_json
    from repro.experiments.trajectory import load_trajectory

    path = str(tmp_path / "trajectory.json")
    write_bench_json(core_loop_measurement, path)
    write_bench_json(core_loop_measurement, path)
    trajectory = load_trajectory(path)
    assert len(trajectory["entries"]) == 2
    for entry in trajectory["entries"]:
        assert entry["provenance"]["hostname"]
        assert entry["settings_fingerprint"]


def test_bench_core_loop_fast_path(benchmark):
    """pytest-benchmark record of the production (batch) path."""
    traces = build_bench_traces(HEADLINE_BENCH, SETTINGS)
    config = default_config()

    def run():
        return FamSystem(config, "deact-n",
                         seed=SETTINGS.seed * 31 + 5).run(
            traces, benchmark=HEADLINE_BENCH)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.nodes[0].memory_accesses == SETTINGS.n_events
