"""Bench: regenerate Figure 16 (node count sweep)."""

from conftest import run_once

from repro.experiments.figures import figure16


def test_bench_figure16(benchmark, fresh_runner):
    result = run_once(
        benchmark,
        lambda: figure16(fresh_runner(), benchmarks=["dc"],
                         node_counts=(1, 4)))
    row = result.rows[0]
    # DeACT never loses its advantage as the fabric gets crowded.
    assert row.values["4"] >= row.values["1"] * 0.8
    assert row.values["1"] > 0.0
