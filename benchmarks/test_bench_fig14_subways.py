"""Bench: regenerate the Figure 14 DeACT-N pairs-per-way study."""

from conftest import run_once

from repro.experiments.figures import figure14_subways

_BENCHES = ["canl"]


def test_bench_figure14_subways(benchmark, fresh_runner):
    result = run_once(
        benchmark,
        lambda: figure14_subways(fresh_runner(), _BENCHES,
                                 subways=(1, 2)))
    # Two pairs per way reach at least as far as one.
    for row in result.rows:
        assert row.values["2"] >= row.values["1"] - 0.1
