"""Ablation bench: FAM translation cache sizing.

DESIGN.md calls out the in-DRAM cache's capacity as the reason DeACT's
translation hit rate dwarfs the STU's.  Shrinking it to STU scale must
erase that advantage.
"""

from dataclasses import replace

from conftest import BENCH_SETTINGS, run_once

from repro.config.presets import default_config
from repro.config.system import TranslationCacheConfig
from repro.experiments.runner import ExperimentRunner


def _translation_hit_rate(tcache_bytes: int) -> float:
    runner = ExperimentRunner(BENCH_SETTINGS)
    config = default_config().replace(
        translation_cache=TranslationCacheConfig(size_bytes=tcache_bytes))
    return runner.run("canl", "deact-n", config).translation_hit_rate


def test_bench_tcache_ablation(benchmark):
    rates = run_once(benchmark, lambda: {
        "16KiB": _translation_hit_rate(16 * 1024),     # ~STU scale
        "1MiB": _translation_hit_rate(1024 * 1024),    # the paper's
    })
    # Capacity is the mechanism: the 1 MiB cache must not hit less.
    assert rates["1MiB"] >= rates["16KiB"] - 0.01
