"""Bench: regenerate Figure 11 (AT share of FAM requests across the
three secure schemes)."""

from conftest import BENCH_SUBSET, run_once

from repro.experiments.figures import figure11


def test_bench_figure11(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: figure11(fresh_runner("11", BENCH_SUBSET), BENCH_SUBSET))
    # For the translation-hostile benchmark, DeACT-N cuts the AT share
    # below I-FAM's (the paper's 23.97% -> 1.77% trend).
    canl = next(row for row in result.rows if row.label == "canl")
    assert canl.values["DeACT-N"] <= canl.values["I-FAM"] + 5.0
