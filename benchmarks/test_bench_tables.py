"""Bench: regenerate Tables I, II, and III."""

from conftest import BENCH_SUBSET, run_once

from repro.experiments.tables import table1, table2, table3


def test_bench_table1(benchmark):
    result = run_once(benchmark, table1)
    by_label = {row.label: row.values for row in result.rows}
    # The paper's Table I check/cross pattern.
    assert by_label["E-FAM"]["Security"] == 0.0
    assert by_label["I-FAM"]["Performance"] == 0.0
    assert all(by_label["DeACT"][col] == 1.0
               for col in ("Performance", "Avoid OS Changes", "Security"))


def test_bench_table2(benchmark):
    result = run_once(benchmark, table2)
    rendered = result.render()
    for fact in ("2GHz", "16GB", "1024 entries", "500ns"):
        assert fact in rendered


def test_bench_table3(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: table3(fresh_runner("t3", BENCH_SUBSET), BENCH_SUBSET))
    for row in result.rows:
        # Selection criterion from the paper: at least 5 MPKI.
        assert row.values["MPKI"] >= 5.0
