"""Bench: regenerate Figure 3 (slowdown of I-FAM wrt E-FAM)."""

from conftest import BENCH_SUBSET, run_once

from repro.experiments.figures import figure3


def test_bench_figure3(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: figure3(fresh_runner("3", BENCH_SUBSET),
                                      BENCH_SUBSET))
    # Shape: I-FAM is never faster than E-FAM, and the
    # translation-hostile benchmark (canl) suffers the most.
    slowdowns = {row.label: row.values["I-FAM"] for row in result.rows}
    assert all(value >= 1.0 for value in slowdowns.values())
    assert slowdowns["canl"] >= slowdowns["mg"]
