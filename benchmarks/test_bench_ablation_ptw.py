"""Ablation bench: STU walk caching (the paper's §III-B argument).

The paper applies DeACT only to the PTE level and lets the STU walk
the whole system table on misses ("four memory accesses during PTW").
This bench compares a cacheless STU walker against a Bhargava-style
32-entry walk cache: walk caching shortens I-FAM's miss penalty, so
DeACT's speedup over I-FAM must be at least as large without it.
"""

from dataclasses import replace

from conftest import BENCH_SETTINGS, run_once

from repro.config.presets import default_config
from repro.experiments.runner import ExperimentRunner


def _deact_speedup(walk_cache_entries: int) -> float:
    runner = ExperimentRunner(BENCH_SETTINGS)
    config = default_config()
    config = config.replace(
        stu=replace(config.stu, walk_cache_entries=walk_cache_entries))
    ifam = runner.run("canl", "i-fam", config)
    deact = runner.run("canl", "deact-n", config)
    return deact.speedup_over(ifam)


def test_bench_ptw_ablation(benchmark):
    speedups = run_once(benchmark, lambda: {
        "no_walk_cache": _deact_speedup(0),
        "walk_cache_32": _deact_speedup(32),
    })
    assert speedups["no_walk_cache"] >= \
        speedups["walk_cache_32"] - 0.05
    assert speedups["no_walk_cache"] > 0.5
