"""Ablation bench: encrypted-memory read optimization.

The Section III-A aside: with per-node encryption keys, read
verification can be skipped.  This bench quantifies how much of
DeACT-N's remaining overhead the ACM read checks account for.
"""

from conftest import BENCH_SETTINGS, run_once

from repro.config.presets import default_config, with_encrypted_memory
from repro.experiments.runner import ExperimentRunner


def _ipc(encrypted: bool) -> float:
    runner = ExperimentRunner(BENCH_SETTINGS)
    config = default_config()
    if encrypted:
        config = with_encrypted_memory(config)
    return runner.run("canl", "deact-n", config).ipc


def test_bench_encrypted_ablation(benchmark):
    ipcs = run_once(benchmark, lambda: {
        "verified_reads": _ipc(False),
        "encrypted_reads": _ipc(True),
    })
    # Skipping read verification never hurts.
    assert ipcs["encrypted_reads"] >= ipcs["verified_reads"] * 0.999
