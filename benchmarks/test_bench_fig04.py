"""Bench: regenerate Figure 4 (AT share of FAM requests, E-FAM vs
I-FAM)."""

from conftest import BENCH_SUBSET, run_once

from repro.experiments.figures import figure4


def test_bench_figure4(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: figure4(fresh_runner("4", BENCH_SUBSET),
                                      BENCH_SUBSET))
    for row in result.rows:
        # Indirection always adds translation traffic at the FAM.
        assert row.values["I-FAM"] > row.values["E-FAM"]
        assert 0.0 <= row.values["E-FAM"] <= 100.0
