"""Bench: regenerate Figure 15 (fabric latency sweep)."""

from conftest import run_once

from repro.experiments.figures import figure15

_BENCHES = ["canl", "mcf"]
_LATENCIES = (100.0, 6000.0)


def test_bench_figure15(benchmark, fresh_runner):
    result = run_once(
        benchmark,
        lambda: figure15(fresh_runner(), _BENCHES,
                         latencies_ns=_LATENCIES))
    # Longer fabric -> every avoided walk saves more -> bigger win.
    for row in result.rows:
        assert row.values["6000"] >= row.values["100"] - 0.1
