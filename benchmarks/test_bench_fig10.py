"""Bench: regenerate Figure 10 (FAM address-translation hit rate)."""

from conftest import BENCH_SUBSET, run_once

from repro.experiments.figures import figure10


def test_bench_figure10(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: figure10(fresh_runner("10", BENCH_SUBSET), BENCH_SUBSET))
    for row in result.rows:
        # The in-DRAM translation cache (64K entries) never trails the
        # 1024-entry STU cache.
        assert row.values["DeACT"] >= row.values["I-FAM"] - 2.0
