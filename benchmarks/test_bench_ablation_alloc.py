"""Ablation bench: randomized vs contiguous FAM frame allocation.

DESIGN.md calls this out: the DeACT-W vs DeACT-N gap exists *because*
the shared pool hands out scattered frames (Section III-D).  Under a
contiguous allocator, DeACT-W's way-contiguous ACM groups become
useful again and the gap should shrink or invert.
"""

from conftest import BENCH_SETTINGS, run_once

from repro.config.presets import default_config, with_allocation_policy
from repro.experiments.runner import ExperimentRunner


def _acm_gap(policy: str) -> float:
    """DeACT-N minus DeACT-W ACM hit rate under ``policy``."""
    runner = ExperimentRunner(BENCH_SETTINGS)
    config = with_allocation_policy(default_config(), policy)
    w = runner.run("canl", "deact-w", config)
    n = runner.run("canl", "deact-n", config)
    return n.acm_hit_rate - w.acm_hit_rate


def test_bench_allocation_ablation(benchmark):
    gaps = run_once(benchmark, lambda: {
        "random": _acm_gap("random"),
        "contiguous": _acm_gap("contiguous"),
    })
    # Random allocation is what DeACT-N exploits: its edge over
    # DeACT-W must be at least as large as under contiguity.
    assert gaps["random"] >= gaps["contiguous"] - 0.02
