"""Bench: regenerate Figure 9 (access-control metadata hit rate)."""

from conftest import BENCH_SUBSET, run_once

from repro.experiments.figures import figure9


def test_bench_figure9(benchmark, fresh_runner):
    result = run_once(benchmark,
                      lambda: figure9(fresh_runner("9", BENCH_SUBSET), BENCH_SUBSET))
    for row in result.rows:
        # DeACT-N's non-contiguous sub-ways never cache fewer useful
        # entries than DeACT-W's contiguous groups under random FAM
        # allocation (small tolerance for sampling noise).
        assert row.values["DeACT-N"] >= row.values["DeACT-W"] - 2.0
        assert 0.0 <= row.values["I-FAM"] <= 100.0
