#!/usr/bin/env python
"""Job migration scenario (Section VI of the paper).

Hybrid-cloud schedulers move jobs between nodes.  With DeACT the
shootdown has three parts the paper enumerates: invalidate the node's
in-DRAM FAM translation cache rows, invalidate the STU's cached ACM,
and rewrite the access-control metadata at global memory.  This
example migrates a job's pages from node 0 to node 1, reports the
metadata work, verifies post-migration isolation, and contrasts the
logical-node-id shortcut the paper proposes.

Run:

    python examples/job_migration.py
"""

from repro import AccessViolationError, default_config
from repro.acm.metadata import Permission
from repro.core.system import FamSystem

PAGE = 4096
JOB_PAGES = 256


def main() -> None:
    config = default_config(nodes=2)
    system = FamSystem(config, "deact-n")
    broker = system.broker
    source, target = system.nodes[0], system.nodes[1]

    # The job's pages live on node 0; warm node 0's translation cache
    # and STU the way a running job would.
    print(f"scheduling a {JOB_PAGES}-page job on node 0")
    fam_pages = [broker.allocate_for_node(0, node_page=0x4_0000 + i)
                 for i in range(JOB_PAGES)]
    for i, fam_page in enumerate(fam_pages):
        source.fam_translator.install(0x4_0000 + i, fam_page, now=0.0)
        source.stu.verify_access(fam_page * PAGE, now=0.0,
                                 needed=Permission.READ)
    print(f"warm: translation cache holds "
          f"{len(source.fam_translator.cache)} mappings")

    # --- migrate: broker moves ownership, node shoots down ----------
    def shootdown(node_page: int, fam_page: int) -> None:
        source.fam_translator.shootdown(node_page, now=0.0)
        source.stu.invalidate_fam_page(fam_page)

    report = broker.migrate_node_pages(0, 1, on_invalidate=shootdown)
    print(f"\nmigration shootdown work (the Section VI overhead):")
    print(f"  pages moved                  : {report.pages_moved}")
    print(f"  ACM rewrites at global memory: {report.acm_writes}")
    print(f"  system-table updates         : {report.table_updates}")
    print(f"  translation-cache shootdowns : "
          f"{report.translation_cache_invalidations}")
    print(f"  STU ACM invalidations        : {report.stu_invalidations}")

    # --- post-migration isolation ------------------------------------
    addr = fam_pages[0] * PAGE
    try:
        source.stu.verify_access(addr, now=0.0, needed=Permission.READ)
        print("STALE ACCESS SUCCEEDED — must never print")
    except AccessViolationError:
        print("\nnode 0 touching a migrated page: DENIED (ownership moved)")
    ok = target.stu.verify_access(addr, now=0.0, needed=Permission.WRITE)
    print(f"node 1 touching its new page:    allowed={ok.allowed}")
    assert broker.translate(1, 0x4_0000) == fam_pages[0]

    # --- the logical-node-id alternative ------------------------------
    registry = broker.registry
    record = registry.schedule_job("lulesh-batch-42", physical_node=0)
    registry.migrate_job("lulesh-batch-42", 1)
    print(f"\nlogical-id migration: job {record.job_name!r} "
          f"(logical id {record.logical_id}) now binds to physical "
          f"node {record.physical_node} — no per-page ACM rewrites "
          f"when metadata is keyed by logical id.")


if __name__ == "__main__":
    main()
