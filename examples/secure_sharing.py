#!/usr/bin/env python
"""Secure sharing scenario: the access-control story of the paper.

Two HPC tenants share a FAM pool.  This example shows the three
security behaviours DeACT's decoupling must preserve (Section II-A's
threat model):

1. A node freely accesses its own FAM pages (verified by the STU).
2. A malicious node that forges a FAM address to another tenant's page
   — exactly what unverified node-side translation would allow — is
   rejected by the STU's access-control check.
3. A broker-built shared segment grants *mixed* permissions: node 0
   gets read-write, node 1 read-only; node 1's write attempt is
   rejected via the 1 GB-region bitmap.

Run:

    python examples/secure_sharing.py
"""

from repro import AccessViolationError, default_config
from repro.acm.metadata import PERM_RO, PERM_RW, Permission
from repro.core.system import FamSystem

PAGE = 4096


def main() -> None:
    config = default_config(nodes=2)
    system = FamSystem(config, "deact-n")
    broker = system.broker
    victim_stu = system.nodes[0].stu
    attacker_stu = system.nodes[1].stu

    # --- 1. legitimate ownership ------------------------------------
    fam_page = broker.allocate_for_node(0, node_page=0x4_0000)
    fam_addr = fam_page * PAGE
    result = victim_stu.verify_access(fam_addr, now=0.0,
                                      needed=Permission.WRITE)
    print(f"node 0 writes its own page {fam_page:#x}: "
          f"allowed={result.allowed}")

    # --- 2. forged cross-tenant access ------------------------------
    # Node 1 presents node 0's FAM address with the V flag set — the
    # attack a buggy/malicious node-side MMU enables.  The STU's
    # metadata check is what stands in the way.
    try:
        attacker_stu.verify_access(fam_addr, now=0.0,
                                   needed=Permission.READ)
        print("ATTACK SUCCEEDED — this must never print")
    except AccessViolationError as violation:
        print(f"node 1 forging access to node 0's page: DENIED "
              f"({violation})")

    # --- 3. shared segment with mixed permissions --------------------
    segment = broker.create_shared_segment({0: PERM_RW, 1: PERM_RO},
                                           n_pages=16)
    broker.map_shared_into_node(0, 0x8_0000, segment)
    broker.map_shared_into_node(1, 0x8_0000, segment)
    shared_addr = segment.fam_pages[0] * PAGE
    print(f"\nshared segment at FAM pages "
          f"{segment.fam_pages[0]:#x}..{segment.fam_pages[-1]:#x} "
          f"(regions {list(segment.regions)})")

    ok = victim_stu.verify_access(shared_addr, now=0.0,
                                  needed=Permission.WRITE)
    print(f"node 0 (RW grant) writes shared page: allowed={ok.allowed}, "
          f"bitmap consulted={ok.bitmap_fetched}")
    ok = attacker_stu.verify_access(shared_addr, now=0.0,
                                    needed=Permission.READ)
    print(f"node 1 (RO grant) reads shared page:  allowed={ok.allowed}")
    try:
        attacker_stu.verify_access(shared_addr, now=0.0,
                                   needed=Permission.WRITE)
        print("RO WRITE SUCCEEDED — this must never print")
    except AccessViolationError:
        print("node 1 (RO grant) writing shared page: DENIED")

    # --- metadata overhead, as the paper reports it ------------------
    layout = broker.layout
    print(f"\nACM + bitmap overhead: "
          f"{100 * layout.overhead_fraction:.4f}% of FAM capacity "
          f"({layout.metadata_bytes >> 20} MiB metadata + "
          f"{layout.bitmap_bytes >> 10} KiB bitmaps for "
          f"{layout.capacity_bytes >> 30} GiB)")


if __name__ == "__main__":
    main()
