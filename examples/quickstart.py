#!/usr/bin/env python
"""Quickstart: compare the four FAM virtual-memory schemes on one
benchmark.

Builds the paper's Table II system, generates a deterministic synthetic
trace for SPEC's ``mcf``, runs it under E-FAM (insecure baseline),
I-FAM (secure two-level translation), and both DeACT organizations, and
prints the normalized performance — a one-benchmark slice of the
paper's Figure 12.

Run:

    python examples/quickstart.py
"""

from repro import FamSystem, default_config, get_profile

EVENTS = 40_000          # memory-instruction events in the trace
FOOTPRINT_SCALE = 0.12   # fraction of the paper's ~280 MB mcf footprint


def main() -> None:
    config = default_config()
    profile = get_profile("mcf")
    trace = profile.build_trace(n_events=EVENTS, seed=1,
                                footprint_scale=FOOTPRINT_SCALE)
    print(f"trace: {len(trace):,} memory events, "
          f"{trace.footprint_pages():,} pages touched, "
          f"{trace.instructions:,} instructions\n")

    results = {}
    for arch in ("e-fam", "i-fam", "deact-w", "deact-n"):
        system = FamSystem(config, arch)
        results[arch] = system.run(trace, benchmark="mcf")

    efam = results["e-fam"]
    ifam = results["i-fam"]
    print(f"{'scheme':<10} {'IPC':>8} {'vs E-FAM':>9} {'vs I-FAM':>9} "
          f"{'AT@FAM':>8} {'xlat hit':>9} {'ACM hit':>8}")
    for arch, result in results.items():
        print(f"{arch:<10} {result.ipc:8.4f} "
              f"{result.normalized_performance(efam):9.3f} "
              f"{result.speedup_over(ifam):9.3f} "
              f"{100 * result.fam_at_fraction:7.1f}% "
              f"{100 * result.translation_hit_rate:8.1f}% "
              f"{100 * result.acm_hit_rate:7.1f}%")

    deact = results["deact-n"]
    print(f"\nDeACT-N recovers "
          f"{100 * (deact.ipc - ifam.ipc) / (efam.ipc - ifam.ipc):.0f}% "
          f"of the performance I-FAM gives up for security.")


if __name__ == "__main__":
    main()
