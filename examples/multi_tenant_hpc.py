#!/usr/bin/env python
"""Multi-tenant HPC scenario: nodes sharing one FAM pool.

The motivation of the paper's introduction: an HPC facility pools
memory so nodes scale allocation to their workloads.  Here four nodes
run different benchmarks against one FAM pool simultaneously; the
shared fabric port and FAM banks create real contention between
tenants.  We compare I-FAM against DeACT-N and report per-tenant IPC —
showing that DeACT's benefit grows for translation-hungry tenants
without hurting the streaming ones (the Figure 16 mechanism at
workload-mix granularity).

Run:

    python examples/multi_tenant_hpc.py
"""

from repro import FamSystem, default_config, get_profile

EVENTS = 25_000
SCALE = 0.12
TENANTS = ["canl", "mcf", "sssp", "mg"]  # mixed sensitivity


def run(arch: str):
    config = default_config(nodes=len(TENANTS))
    traces = [
        get_profile(bench).build_trace(EVENTS, seed=11 + i,
                                       footprint_scale=SCALE)
        for i, bench in enumerate(TENANTS)
    ]
    system = FamSystem(config, arch)
    result = system.run(traces, benchmark="mixed-tenants")
    return result, system


def main() -> None:
    print(f"{len(TENANTS)} tenants on one FAM pool: {', '.join(TENANTS)}\n")
    ifam, ifam_system = run("i-fam")
    deact, deact_system = run("deact-n")

    print(f"{'tenant':<8} {'I-FAM IPC':>10} {'DeACT-N IPC':>12} "
          f"{'speedup':>8}")
    for i, bench in enumerate(TENANTS):
        ipc_i = ifam.nodes[i].ipc
        ipc_d = deact.nodes[i].ipc
        print(f"{bench:<8} {ipc_i:10.4f} {ipc_d:12.4f} "
              f"{ipc_d / ipc_i:7.2f}x")

    print(f"\nwhole-system runtime: I-FAM {ifam.runtime_ns / 1e6:.2f} ms, "
          f"DeACT-N {deact.runtime_ns / 1e6:.2f} ms "
          f"({ifam.runtime_ns / deact.runtime_ns:.2f}x faster)")
    print(f"AT share at FAM: I-FAM {100 * ifam.fam_at_fraction:.1f}% -> "
          f"DeACT-N {100 * deact.fam_at_fraction:.1f}%")
    print(f"FAM pool utilization: "
          f"{100 * deact_system.broker.fam_utilization:.2f}% "
          f"({deact_system.broker.stats.get('pages_granted'):.0f} pages "
          f"granted)")


if __name__ == "__main__":
    main()
