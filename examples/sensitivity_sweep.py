#!/usr/bin/env python
"""Sensitivity sweep: how DeACT's advantage moves with the design
knobs (a compact version of the paper's Figures 13 and 15).

Sweeps the STU cache size and the fabric latency for one
translation-sensitive benchmark (``dc``, the NPB benchmark the paper
keeps for all its sensitivity studies) and prints DeACT-N's speedup
over I-FAM at every point.

Run:

    python examples/sensitivity_sweep.py
"""

from repro import FamSystem, default_config, get_profile
from repro.config.presets import with_fabric_latency, with_stu_entries

EVENTS = 25_000
SCALE = 0.12
BENCH = "dc"


def speedup(config) -> float:
    trace = get_profile(BENCH).build_trace(EVENTS, seed=3,
                                           footprint_scale=SCALE)
    ifam = FamSystem(config, "i-fam").run(trace, benchmark=BENCH)
    deact = FamSystem(config, "deact-n").run(trace, benchmark=BENCH)
    return deact.speedup_over(ifam)


def main() -> None:
    base = default_config()

    print(f"{BENCH}: DeACT-N speedup over I-FAM\n")
    print("STU cache size sweep (Figure 13 — smaller STU, bigger win):")
    for entries in (256, 512, 1024, 2048, 4096):
        value = speedup(with_stu_entries(base, entries))
        bar = "#" * int(value * 20)
        print(f"  {entries:>5} entries: {value:5.2f}x  {bar}")

    print("\nfabric latency sweep (Figure 15 — slower fabric, "
          "bigger win):")
    for latency in (100, 250, 500, 1000, 3000, 6000):
        value = speedup(with_fabric_latency(base, latency))
        bar = "#" * int(value * 20)
        print(f"  {latency:>5} ns: {value:5.2f}x  {bar}")


if __name__ == "__main__":
    main()
