"""DeACT: architecture-aware virtual memory for fabric-attached memory.

A full Python reproduction of *DeACT: Architecture-Aware Virtual Memory
Support for Fabric Attached Memory Systems* (Kommareddy et al., HPCA
2021): a trace-driven architecture simulator for FAM systems with four
virtual-memory schemes (E-FAM, I-FAM, DeACT-W, DeACT-N), the memory
broker, STU, in-DRAM FAM translation cache, access-control metadata,
the paper's benchmark catalog, and a harness regenerating every table
and figure of the evaluation.

Quickstart::

    from repro import FamSystem, default_config, get_profile

    config = default_config()
    trace = get_profile("mcf").build_trace(n_events=20_000, seed=1)
    efam = FamSystem(config, "e-fam").run(trace)
    deact = FamSystem(config, "deact-n").run(trace)
    print(deact.normalized_performance(efam))
"""

from repro.config import default_config, SystemConfig
from repro.core import (
    ARCHITECTURES,
    Architecture,
    FamSystem,
    NodeMetrics,
    RunResult,
    make_architecture,
)
from repro.errors import (
    AccessViolationError,
    AllocationError,
    ConfigError,
    ProtocolError,
    ReproError,
    TraceError,
    TranslationFault,
)
from repro.workloads import (
    BENCHMARKS,
    BenchmarkProfile,
    Trace,
    TraceEvent,
    benchmark_names,
    generate_trace,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "default_config",
    # system and architectures
    "FamSystem",
    "Architecture",
    "ARCHITECTURES",
    "make_architecture",
    "RunResult",
    "NodeMetrics",
    # workloads
    "Trace",
    "TraceEvent",
    "generate_trace",
    "BenchmarkProfile",
    "BENCHMARKS",
    "benchmark_names",
    "get_profile",
    # errors
    "ReproError",
    "ConfigError",
    "AllocationError",
    "TranslationFault",
    "AccessViolationError",
    "ProtocolError",
    "TraceError",
]
