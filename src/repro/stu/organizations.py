"""STU cache way organizations (Figure 8).

All three organizations share the same physical budget — ``entries``
ways of ``52 + 52 + 16`` bits organized as ``n_sets x associativity``
(Table II: 1024 entries, 128 sets, 8 ways) — but spend it differently:

* :class:`IFamStuCache` (Fig. 8a): each way holds one full mapping:
  52-bit node-page tag, 52-bit FAM page, ACM.  Translation and access
  control hit or miss *together*.
* :class:`DeactWAcmCache` (Fig. 8b): translation moved to the node, so
  the 52 FAM-address bits are recycled to hold the ACM of
  ``52 // acm_bits`` additional *contiguous* pages (4 for 16-bit ACM,
  8 for 8-bit, 2 for 32-bit — the Figure 14 arithmetic): one way covers
  an aligned group of contiguous FAM pages.
* :class:`DeactNAcmCache` (Fig. 8c): tags shrink to 44 bits so each
  physical way splits into independent sub-ways, each holding one
  {tag, ACM} pair for an *arbitrary* page.  Default 2 sub-ways; the
  Figure 14 ablation explores 1 and 3 (3 requires further tag
  squeezing, possible only for 8-bit ACM in the paper and relaxed here
  under a config flag).

The caches model presence/recency only; the authoritative metadata
values live in :class:`~repro.acm.store.AcmStore` (a simulator does
not need to duplicate the payload to get the timing right).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.config.system import StuConfig

__all__ = ["IFamStuCache", "DeactWAcmCache", "DeactNAcmCache"]


class IFamStuCache:
    """Figure 8a: combined {node page -> FAM page + ACM} cache."""

    name = "ifam"

    def __init__(self, config: StuConfig, label: str = "stu.ifam") -> None:
        self.config = config
        self._cache: SetAssociativeCache[int] = SetAssociativeCache(
            label, config.n_sets, config.associativity, replacement="lru")

    def lookup(self, node_page: int) -> Optional[int]:
        """Probe for a node page; returns the FAM page or ``None``.

        A hit delivers translation *and* access control at once — the
        coupled design whose capacity limit DeACT attacks.
        """
        line = self._cache.get_line(node_page)
        return line[0] if line is not None else None

    def install(self, node_page: int, fam_page: int) -> None:
        """Insert a mapping after a system-page-table walk."""
        self._cache.fill_line(node_page, fam_page)

    def invalidate_node_page(self, node_page: int) -> bool:
        return self._cache.invalidate(node_page)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    @property
    def probes(self) -> int:
        """Total tag probes (telemetry)."""
        return self._cache.accesses

    @property
    def coverage_pages(self) -> int:
        """Pages of reach at full occupancy (one per entry)."""
        return self.config.entries


class DeactWAcmCache:
    """Figure 8b: way-contiguous ACM-only cache.

    Keys are *groups* of ``pages_per_way`` aligned contiguous FAM
    pages: the tag identifies the group, the data bits hold every
    member's ACM.  Great when FAM pages are accessed contiguously —
    which random pool allocation defeats (Section III-D).
    """

    name = "deact-w"

    def __init__(self, config: StuConfig, label: str = "stu.deact_w") -> None:
        self.config = config
        # One tag per way still covers (1 + 52/acm_bits) pages in the
        # paper's packing; the dominant term is the recycled 52 bits.
        self.pages_per_way = config.contiguous_pages_per_way
        self._cache: SetAssociativeCache[bool] = SetAssociativeCache(
            label, config.n_sets, config.associativity, replacement="lru")

    def _group(self, fam_page: int) -> int:
        return fam_page // self.pages_per_way

    def lookup(self, fam_page: int) -> bool:
        """Whether ``fam_page``'s ACM is resident."""
        return self._cache.get_line(self._group(fam_page)) is not None

    def install(self, fam_page: int) -> None:
        """Insert the ACM group covering ``fam_page`` after a metadata
        fetch from FAM."""
        self._cache.fill_line(self._group(fam_page), True)

    def invalidate_fam_page(self, fam_page: int) -> bool:
        return self._cache.invalidate(self._group(fam_page))

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    @property
    def probes(self) -> int:
        """Total tag probes (telemetry)."""
        return self._cache.accesses

    @property
    def coverage_pages(self) -> int:
        """Pages of reach at full occupancy (entries x group size)."""
        return self.config.entries * self.pages_per_way


class DeactNAcmCache:
    """Figure 8c: non-contiguous sub-way ACM cache.

    Each physical way holds ``subways_per_way`` independent {44-bit
    tag, ACM} pairs, so the set's effective associativity multiplies
    and every cached page is chosen by recency, not adjacency.  Tag
    truncation to 44 bits restricts reach to 32 PB per node — far
    beyond any simulated footprint, so aliasing is not modelled.
    """

    name = "deact-n"

    def __init__(self, config: StuConfig, label: str = "stu.deact_n") -> None:
        self.config = config
        self.subways_per_way = config.subways_per_way
        effective_ways = config.associativity * self.subways_per_way
        self._cache: SetAssociativeCache[bool] = SetAssociativeCache(
            label, config.n_sets, effective_ways, replacement="lru")

    def lookup(self, fam_page: int) -> bool:
        """Whether ``fam_page``'s ACM is resident."""
        return self._cache.get_line(fam_page) is not None

    def install(self, fam_page: int) -> None:
        self._cache.fill_line(fam_page, True)

    def invalidate_fam_page(self, fam_page: int) -> bool:
        return self._cache.invalidate(fam_page)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    @property
    def probes(self) -> int:
        """Total tag probes (telemetry)."""
        return self._cache.accesses

    @property
    def coverage_pages(self) -> int:
        return self.config.entries * self.subways_per_way
