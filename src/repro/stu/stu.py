"""The System Translation Unit: walking, verification, timing.

One STU instance serves one node (the paper proposes an STU per node,
implemented in the router connecting that node to the fabric).  It is
the only component allowed to read access-control metadata, and the
only path by which a node request reaches the FAM.

The unit exposes three timed operations used by the architecture
strategies in :mod:`repro.core.architectures`:

* :meth:`ifam_translate` — the I-FAM combined lookup/walk.
* :meth:`walk_system_table` — a FAM page-table walk on behalf of a
  DeACT FAM-translator miss (serial FAM round trips per level).
* :meth:`verify_access` — the DeACT verification step: ACM cache
  lookup, metadata-block fetch from FAM on a miss, shared-page bitmap
  consultation, and the actual allow/deny decision against the
  authoritative :class:`~repro.acm.store.AcmStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.acm.metadata import Permission
from repro.acm.store import AcmStore
from repro.config.system import StuConfig
from repro.errors import AccessViolationError, ProtocolError
from repro.fabric.network import FabricNetwork
from repro.mem.device import NvmDevice
from repro.mem.request import RequestKind
from repro.pagetable.walker import PageTableWalker
from repro.sim.stats import Stats
from repro.stu.organizations import DeactNAcmCache, DeactWAcmCache, IFamStuCache

__all__ = ["Stu", "WalkTiming", "VerificationResult"]


@dataclass
class WalkTiming:
    """Outcome of a system-page-table walk performed by the STU."""

    fam_page: int
    completion_ns: float
    memory_accesses: int
    skipped_levels: int


@dataclass
class VerificationResult:
    """Outcome of a DeACT access verification."""

    allowed: bool
    completion_ns: float
    acm_hit: bool
    bitmap_fetched: bool


class Stu:
    """Per-node system translation unit."""

    def __init__(self, node_id: int, config: StuConfig,
                 acm_store: AcmStore, walker: PageTableWalker,
                 fabric: FabricNetwork, fam: NvmDevice,
                 organization: Union[IFamStuCache, DeactWAcmCache,
                                     DeactNAcmCache, None],
                 name: str = "stu") -> None:
        self.node_id = node_id
        self.config = config
        self.acm_store = acm_store
        self.walker = walker
        self.fabric = fabric
        self.fam = fam
        self.organization = organization
        self.name = name
        self.stats = Stats(name)
        # Counter dict, organization kind and lookup latency hoisted
        # off the per-verification path.
        self._counters = self.stats._counters
        self._org_is_deact = isinstance(organization,
                                        (DeactWAcmCache, DeactNAcmCache))
        self._lookup_ns = config.lookup_ns
        # The STU has a single FAM-PTW unit (Figure 6): concurrent
        # translation misses from one node serialize behind it.  This
        # is the mechanism that lets translation misses destroy
        # memory-level parallelism in I-FAM — the core can overlap 32
        # data misses, but their walks form a queue at the STU.
        self._ptw_busy_until = 0.0
        # Outcome flags of the most recent verification, for the boxed
        # verify_access wrapper.
        self._last_verification = (True, False, False)

    # ------------------------------------------------------------------
    # I-FAM combined path
    # ------------------------------------------------------------------
    def ifam_translate(self, node_page: int,
                       now: float) -> Tuple[int, float, bool]:
        """Translate a node page through the combined STU cache.

        Returns ``(fam_page, completion_ns, hit)``.  On a miss, the
        system page table is walked with serial FAM round trips and
        the mapping (including its ACM, which travels with the PTE in
        I-FAM) is installed.
        """
        if not isinstance(self.organization, IFamStuCache):
            raise ProtocolError(
                f"{self.name}: ifam_translate on a {type(self.organization)}")
        t = now + self.config.lookup_ns
        fam_page = self.organization.lookup(node_page)
        if fam_page is not None:
            self._counters["mapping.hits"] += 1.0
            return fam_page, t, True
        self._counters["mapping.misses"] += 1.0
        fam_page, completion = self.walk_system_table_fast(node_page, t)
        self.organization.install(node_page, fam_page)
        return fam_page, completion, False

    # ------------------------------------------------------------------
    # System page-table walking (shared by I-FAM and DeACT misses)
    # ------------------------------------------------------------------
    def _walk_core(self, node_page: int, now: float):
        """Timed system-table walk shared by the boxed and fast APIs.

        Each surviving level (after the STU's walk caches) is a
        dependent FAM read: router -> FAM port -> NVM bank -> router.
        Returns ``(walk_result, completion_ns)``.
        """
        result = self.walker.walk(node_page)
        # Queue behind any walk already in flight at this STU's PTW
        # unit, then hold the unit for the whole walk.
        t = now if now > self._ptw_busy_until else self._ptw_busy_until
        if t > now:
            self.stats.incr("ptw_queue_time", t - now)
        for step in result.steps:
            depart = self.fabric.stu_to_fam_arrival(t)
            served = self.fam.access(step.entry_addr, depart,
                                     is_write=False,
                                     kind=RequestKind.FAM_PTW,
                                     node_id=self.node_id)
            t = self.fabric.fam_to_stu_arrival(served)
        self._ptw_busy_until = t
        self._counters["walks"] += 1.0
        self._counters["walk_accesses"] += float(len(result.steps))
        return result, t

    def walk_system_table_fast(self, node_page: int,
                               now: float) -> Tuple[int, float]:
        """Allocation-free system-table walk: ``(fam_page,
        completion_ns)`` — the per-miss hot path."""
        result, t = self._walk_core(node_page, now)
        return result.frame, t

    def walk_system_table(self, node_page: int, now: float) -> WalkTiming:
        """Walk the broker-maintained system page table (boxed)."""
        result, t = self._walk_core(node_page, now)
        return WalkTiming(fam_page=result.frame, completion_ns=t,
                          memory_accesses=len(result.steps),
                          skipped_levels=result.skipped_levels)

    # ------------------------------------------------------------------
    # DeACT verification path
    # ------------------------------------------------------------------
    def verify_access_fast(self, fam_addr: int, now: float,
                           needed: Permission = Permission.READ,
                           enforce: bool = True) -> float:
        """Verify that this STU's node may access ``fam_addr``.

        Allocation-free hot path: returns the completion time only
        (the common case — verification passed).  Timing: an ACM-cache
        lookup; on a miss, one FAM round trip to fetch the 64 B
        metadata block (installed for reuse); for shared pages, one
        further FAM round trip for the bitmap block.

        Raises
        ------
        AccessViolationError
            When ``enforce`` is set and the metadata denies the access.
        """
        if not self._org_is_deact:
            raise ProtocolError(
                f"{self.name}: verify_access needs a DeACT ACM cache")
        layout = self.acm_store.layout
        fam_page = layout.page_number(fam_addr)
        t = now + self._lookup_ns
        acm_hit = self.organization.lookup(fam_page)
        if acm_hit:
            self._counters["acm.hits"] += 1.0
        else:
            self._counters["acm.misses"] += 1.0
            block_addr = layout.acm_block_addr(fam_addr)
            depart = self.fabric.stu_to_fam_arrival(t)
            served = self.fam.access(block_addr, depart, is_write=False,
                                     kind=RequestKind.ACM,
                                     node_id=self.node_id)
            t = self.fabric.fam_to_stu_arrival(served)
            self.organization.install(fam_page)

        allowed, consulted_bitmap = self.acm_store.check(
            self.node_id, fam_addr, needed)
        if consulted_bitmap:
            # Shared page: fetch the region bitmap block covering this
            # node's bits.
            bitmap_addr = layout.bitmap_block_addr(fam_addr, self.node_id)
            depart = self.fabric.stu_to_fam_arrival(t)
            served = self.fam.access(bitmap_addr, depart, is_write=False,
                                     kind=RequestKind.ACM,
                                     node_id=self.node_id)
            t = self.fabric.fam_to_stu_arrival(served)
            self.stats.incr("bitmap_fetches")

        if not allowed:
            self.stats.incr("violations")
            if enforce:
                raise AccessViolationError(
                    f"{self.name}: node {self.node_id} denied {needed!r} "
                    f"at FAM {fam_addr:#x}",
                    node_id=self.node_id, fam_addr=fam_addr)
            # Denied-but-unenforced callers need the full outcome; the
            # boxed API reconstructs it below.
        self._last_verification = (allowed, acm_hit, consulted_bitmap)
        return t

    def verify_access(self, fam_addr: int, now: float,
                      needed: Permission = Permission.READ,
                      enforce: bool = True) -> VerificationResult:
        """Boxed :meth:`verify_access_fast` (reference path, tests,
        and callers that inspect hit/bitmap outcomes)."""
        t = self.verify_access_fast(fam_addr, now, needed=needed,
                                    enforce=enforce)
        allowed, acm_hit, bitmap_fetched = self._last_verification
        return VerificationResult(allowed=allowed, completion_ns=t,
                                  acm_hit=acm_hit,
                                  bitmap_fetched=bitmap_fetched)

    # ------------------------------------------------------------------
    # Shootdown hooks (job migration, Section VI)
    # ------------------------------------------------------------------
    def invalidate_fam_page(self, fam_page: int) -> None:
        """Drop any ACM cached for ``fam_page``."""
        org = self.organization
        if isinstance(org, (DeactWAcmCache, DeactNAcmCache)):
            org.invalidate_fam_page(fam_page)
            self.stats.incr("invalidations")

    def invalidate_node_page(self, node_page: int) -> None:
        """Drop an I-FAM mapping for ``node_page``."""
        if isinstance(self.organization, IFamStuCache):
            self.organization.invalidate_node_page(node_page)
            self.stats.incr("invalidations")

    # ------------------------------------------------------------------
    @property
    def acm_hit_rate(self) -> float:
        """Figure 9's y-axis for this node."""
        org = self.organization
        if org is None:
            return 0.0
        return org.hit_rate
