"""The System Translation Unit (STU).

The STU is the off-node trusted hardware of the paper (sitting in the
first router a node connects to, "similar in spirit to the Gen-Z
ZMMU").  Its duties differ by architecture:

* **I-FAM** — caches full ``{node page -> FAM page + ACM}`` mappings
  and walks the system page table on misses (Figure 8a).
* **DeACT** — only verifies: the freed cache space holds access-control
  metadata, organized contiguously (**DeACT-W**, Figure 8b) or as
  independent sub-way pairs (**DeACT-N**, Figure 8c); it still walks
  the system page table on behalf of the node's FAM translator when
  the node misses its in-DRAM translation cache.

:mod:`repro.stu.organizations` implements the three cache layouts with
their exact capacity arithmetic (52 spare bits per way, 44-bit sub-way
tags, ACM-width-dependent packing for the Figure 14 sweep);
:mod:`repro.stu.stu` implements the unit itself with its timing.
"""

from repro.stu.organizations import (
    DeactNAcmCache,
    DeactWAcmCache,
    IFamStuCache,
)
from repro.stu.stu import Stu, VerificationResult, WalkTiming

__all__ = [
    "IFamStuCache",
    "DeactWAcmCache",
    "DeactNAcmCache",
    "Stu",
    "VerificationResult",
    "WalkTiming",
]
