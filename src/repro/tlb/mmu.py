"""The node memory-management unit.

Ties the two-level TLB to the page-table walker: a translation request
either hits a TLB level (no memory traffic) or triggers a walk whose
surviving steps (after walk-cache filtering) are returned so the node
can charge them through its cache hierarchy and memory path — page
walks are ordinary memory reads to wherever the table pages live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.config.system import PtwConfig, TlbConfig
from repro.core.hotpath import hot_path
from repro.pagetable.walker import PageTableWalker
from repro.pagetable.x86 import FourLevelPageTable, WalkStep
from repro.tlb.tlb import TwoLevelTlb

__all__ = ["Mmu", "TranslationOutcome"]


@dataclass
class TranslationOutcome:
    """Everything the node needs to charge one virtual-address
    translation.

    Attributes
    ----------
    vpn / frame:
        Virtual page number and the node-physical frame it maps to.
    tlb_level:
        1 or 2 on a TLB hit, 0 when a walk was required.
    tlb_latency_ns:
        On-chip TLB lookup latency (L2 probe cost on L1 miss).
    walk_steps:
        Physical addresses of the page-table entries the walk must
        read from the memory system (empty on TLB hits).
    walk_cache_skips:
        Interior levels short-circuited by the walk caches.
    """

    vpn: int
    frame: int
    tlb_level: int
    tlb_latency_ns: float = 0.0
    walk_steps: List[WalkStep] = field(default_factory=list)
    walk_cache_skips: int = 0

    @property
    def tlb_hit(self) -> bool:
        return self.tlb_level != 0


class Mmu:
    """Per-node MMU: TLB front-end plus a page-table walker back-end."""

    def __init__(self, page_table: FourLevelPageTable, tlb_config: TlbConfig,
                 ptw_config: PtwConfig, name: str = "mmu") -> None:
        self.name = name
        self.page_bytes = tlb_config.page_bytes
        self._page_shift = tlb_config.page_bytes.bit_length() - 1
        self.tlb = TwoLevelTlb(tlb_config, name=f"{name}.tlb")
        self.walker = PageTableWalker(page_table, ptw_config.cache_entries,
                                      name=f"{name}.ptw")
        self.translations = 0
        self.walks = 0

    def vpn_of(self, vaddr: int) -> int:
        return vaddr >> self._page_shift

    def physical_address(self, frame: int, vaddr: int) -> int:
        """Recombine a translated frame with the page offset."""
        offset = vaddr & (self.page_bytes - 1)
        return (frame << self._page_shift) | offset

    def translate(self, vaddr: int) -> TranslationOutcome:
        """Translate ``vaddr``; walk the page table on a TLB miss.

        Walks install the leaf translation into both TLB levels before
        returning, as hardware does.  This is the boxed (reference)
        path; the per-event loop uses :meth:`translate_fast`, whose
        accounting is pinned to this method by the hot-path
        equivalence suite.
        """
        self.translations += 1
        vpn = self.vpn_of(vaddr)
        lookup = self.tlb.lookup(vpn)
        if lookup.hit:
            assert lookup.frame is not None
            return TranslationOutcome(vpn=vpn, frame=lookup.frame,
                                      tlb_level=lookup.level,
                                      tlb_latency_ns=lookup.latency_ns)
        self.walks += 1
        walk = self.walker.walk(vpn)
        self.tlb.install(vpn, walk.frame)
        return TranslationOutcome(vpn=vpn, frame=walk.frame, tlb_level=0,
                                  tlb_latency_ns=lookup.latency_ns,
                                  walk_steps=walk.steps,
                                  walk_cache_skips=walk.skipped_levels)

    _NO_STEPS: Tuple = ()

    def translate_fast(
            self, vpn: int) -> Tuple[int, int, float, Sequence[WalkStep]]:
        """Allocation-free translation of a pre-decoded VPN.

        Returns ``(frame, tlb_level, tlb_latency_ns, walk_steps)``;
        ``walk_steps`` is empty on TLB hits and otherwise lists the
        page-table reads the caller must charge through the memory
        system.  Accounting (translation/walk counters, TLB fills) is
        identical to :meth:`translate`.
        """
        self.translations += 1
        level, frame, latency = self.tlb.lookup_fast(vpn)
        if level:
            return frame, level, latency, self._NO_STEPS
        self.walks += 1
        walk = self.walker.walk(vpn)
        self.tlb.install(vpn, walk.frame)
        return walk.frame, 0, latency, walk.steps

    @hot_path
    def translate_after_l1_miss(
            self, vpn: int) -> Tuple[int, int, float, Sequence[WalkStep]]:
        """:meth:`translate_fast` continuation for callers that probed
        (and counted) the L1 TLB themselves — the fully inlined
        single-node loop.  ``translations`` and the L1 hit/miss census
        are the caller's responsibility; everything downstream (L2,
        walker, installs) is accounted here identically.
        """
        tlb = self.tlb
        line = tlb.l2.get_line(vpn)
        if line is not None:
            frame = line[0]
            tlb.l1.fill_line(vpn, frame)
            return frame, 2, tlb._l2_latency_ns, self._NO_STEPS
        self.walks += 1
        walk = self.walker.walk(vpn)
        tlb.install(vpn, walk.frame)
        return walk.frame, 0, tlb._l2_latency_ns, walk.steps

    def translate_hit_run(self, n_hits: int, vpns_by_last_touch) -> None:
        """Batch-account a run of ``n_hits`` translations that all hit
        the L1 TLB (the batch tier's pre-proved hit-runs).

        Scalar accounting per event is ``translations += 1`` plus the
        L1 probe's hit/recency effect; nothing else in the MMU is
        touched on an L1 hit (no walker, no installs, no L2 probe), so
        the batched form is an exact replay — see
        :meth:`~repro.tlb.tlb.TwoLevelTlb.hit_run_l1`.
        """
        self.translations += n_hits
        self.tlb.hit_run_l1(n_hits, vpns_by_last_touch)

    def shootdown(self, vpn: int) -> None:
        """Invalidate one page everywhere the MMU caches it."""
        self.tlb.invalidate(vpn)
        self.walker.invalidate()

    @property
    def walk_rate(self) -> float:
        """Fraction of translations that required a page walk."""
        return self.walks / self.translations if self.translations else 0.0
