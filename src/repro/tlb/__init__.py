"""TLBs and the node memory-management unit.

* :mod:`repro.tlb.tlb` — a two-level TLB (Table II: 32-entry L1,
  256-entry L2).
* :mod:`repro.tlb.mmu` — the node MMU: TLB lookup, then a page walk
  through walk caches on a miss (the Samba-equivalent in our model).
"""

from repro.tlb.tlb import TlbLookup, TwoLevelTlb
from repro.tlb.mmu import Mmu, TranslationOutcome

__all__ = ["TwoLevelTlb", "TlbLookup", "Mmu", "TranslationOutcome"]
