"""A two-level translation lookaside buffer.

L1 misses probe L2; an L2 hit refills L1.  Both levels cache full
VPN -> frame leaf translations (4 KB pages, as throughout the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.config.system import TlbConfig

__all__ = ["TwoLevelTlb", "TlbLookup"]


@dataclass
class TlbLookup:
    """Result of a TLB probe.

    ``level`` is 1 or 2 for hits, 0 for a full miss; ``frame`` is the
    translated physical frame on a hit.
    """

    level: int
    frame: Optional[int] = None
    latency_ns: float = 0.0

    @property
    def hit(self) -> bool:
        return self.level != 0


class TwoLevelTlb:
    """L1 + L2 TLB with LRU replacement at both levels."""

    def __init__(self, config: TlbConfig, name: str = "tlb") -> None:
        self.config = config
        self.l1 = SetAssociativeCache(
            f"{name}.L1", config.l1_entries // config.l1_associativity,
            config.l1_associativity, replacement="lru")
        self.l2 = SetAssociativeCache(
            f"{name}.L2", config.l2_entries // config.l2_associativity,
            config.l2_associativity, replacement="lru")

    def lookup(self, vpn: int) -> TlbLookup:
        """Probe L1 then L2; refill L1 from an L2 hit."""
        line = self.l1.get_line(vpn)
        if line is not None:
            return TlbLookup(level=1, frame=line[0], latency_ns=0.0)
        line = self.l2.get_line(vpn)
        if line is not None:
            self.l1.fill(vpn, line[0])
            return TlbLookup(level=2, frame=line[0],
                             latency_ns=self.config.l2_latency_ns)
        return TlbLookup(level=0, latency_ns=self.config.l2_latency_ns)

    def install(self, vpn: int, frame: int) -> None:
        """Insert a translation into both levels (walk refill)."""
        self.l2.fill(vpn, frame)
        self.l1.fill(vpn, frame)

    def invalidate(self, vpn: int) -> None:
        """Shoot down one page's translation."""
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)

    def flush(self) -> None:
        """Full TLB flush (context switch / job migration)."""
        self.l1.clear()
        self.l2.clear()

    @property
    def hit_rate(self) -> float:
        """Combined hit rate over all lookups."""
        lookups = self.l1.accesses
        if not lookups:
            return 0.0
        misses = self.l2.misses
        return (lookups - misses) / lookups
