"""A two-level translation lookaside buffer.

L1 misses probe L2; an L2 hit refills L1.  Both levels cache full
VPN -> frame leaf translations (4 KB pages, as throughout the paper).

The per-event path is :meth:`TwoLevelTlb.lookup_fast`, which returns a
plain tuple; :meth:`lookup` boxes the same probe into a
:class:`TlbLookup` for non-hot callers and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.config.system import TlbConfig
from repro.errors import ConfigError

__all__ = ["TwoLevelTlb", "TlbLookup"]


@dataclass
class TlbLookup:
    """Result of a TLB probe.

    ``level`` is 1 or 2 for hits, 0 for a full miss; ``frame`` is the
    translated physical frame on a hit.
    """

    level: int
    frame: Optional[int] = None
    latency_ns: float = 0.0

    @property
    def hit(self) -> bool:
        return self.level != 0


def _level_geometry(name: str, entries: int, associativity: int) -> int:
    """Validated set count for one TLB level.

    Entry counts that do not divide into whole ways would silently
    truncate capacity (``entries // associativity`` sets), so they are
    rejected here even if the config object skipped its own
    validation.
    """
    if associativity <= 0:
        raise ConfigError(
            f"{name}: associativity must be positive, got {associativity}")
    if entries <= 0:
        raise ConfigError(
            f"{name}: entry count must be positive, got {entries}")
    if entries % associativity:
        raise ConfigError(
            f"{name}: {entries} entries do not divide into "
            f"{associativity}-way sets (capacity would silently drop to "
            f"{(entries // associativity) * associativity} entries)")
    return entries // associativity


class TwoLevelTlb:
    """L1 + L2 TLB with LRU replacement at both levels."""

    def __init__(self, config: TlbConfig, name: str = "tlb") -> None:
        self.config = config
        self.l1 = SetAssociativeCache(
            f"{name}.L1",
            _level_geometry(f"{name}.L1", config.l1_entries,
                            config.l1_associativity),
            config.l1_associativity, replacement="lru")
        self.l2 = SetAssociativeCache(
            f"{name}.L2",
            _level_geometry(f"{name}.L2", config.l2_entries,
                            config.l2_associativity),
            config.l2_associativity, replacement="lru")
        self._l2_latency_ns = config.l2_latency_ns

    def lookup_fast(self, vpn: int) -> Tuple[int, int, float]:
        """Allocation-free probe: ``(level, frame, latency_ns)``.

        ``level`` is 1/2 for hits (with ``frame`` valid) and 0 for a
        full miss (``frame`` is -1 and must not be used).  L2 hits
        refill L1, as in :meth:`lookup`.  The L1 probe is inlined
        (``get_line``'s body, LRU promotion unconditional — both TLB
        levels are always LRU) because most translations end there.
        """
        l1 = self.l1
        mask = l1._mask
        lines = l1._sets[vpn & mask if mask >= 0 else vpn % l1.n_sets]
        line = lines.get(vpn)
        if line is not None:
            l1.hits += 1
            lines.move_to_end(vpn)
            return 1, line[0], 0.0
        l1.misses += 1
        line = self.l2.get_line(vpn)
        if line is not None:
            frame = line[0]
            self.l1.fill_line(vpn, frame)
            return 2, frame, self._l2_latency_ns
        return 0, -1, self._l2_latency_ns

    def lookup(self, vpn: int) -> TlbLookup:
        """Probe L1 then L2; refill L1 from an L2 hit."""
        level, frame, latency = self.lookup_fast(vpn)
        return TlbLookup(level=level, frame=frame if level else None,
                         latency_ns=latency)

    def hit_run_l1(self, n_hits: int, vpns_by_last_touch) -> None:
        """Batch-apply a run of ``n_hits`` L1 TLB hits.

        Used by the batch execution tier (:mod:`repro.core.batch`)
        after it has *proved* every event in the run hits the L1 TLB
        (resident-set membership cannot change during a run: hits
        neither fill nor evict).  Both TLB levels are always LRU, so
        the run's only state effect is L1 recency — replayed once per
        distinct VPN in last-occurrence order, which
        :meth:`~repro.cache.cache.SetAssociativeCache.touch_run` shows
        is equivalent to per-event promotion.  L2 is untouched, as in
        the scalar path (an L1 hit never probes L2).
        """
        self.l1.touch_run(n_hits, vpns_by_last_touch)

    def install(self, vpn: int, frame: int) -> None:
        """Insert a translation into both levels (walk refill)."""
        self.l2.fill_line(vpn, frame)
        self.l1.fill_line(vpn, frame)

    def invalidate(self, vpn: int) -> None:
        """Shoot down one page's translation."""
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)

    def flush(self) -> None:
        """Full TLB flush (context switch / job migration)."""
        self.l1.clear()
        self.l2.clear()

    @property
    def hit_rate(self) -> float:
        """Combined hit rate over all lookups."""
        lookups = self.l1.accesses
        if not lookups:
            return 0.0
        misses = self.l2.misses
        return (lookups - misses) / lookups
