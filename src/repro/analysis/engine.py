"""Scanning and rule execution.

:func:`scan_project` parses every ``*.py`` under a package root into
:class:`ModuleInfo` records — source is only ever *parsed*, never
imported, so the checker cannot be affected by (or trigger) import
side effects.  :func:`run_check` runs rules over the scanned project
and folds inline suppressions and the baseline into a
:class:`CheckReport`.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules
from repro.errors import AnalysisError

__all__ = [
    "CheckReport",
    "ModuleInfo",
    "Project",
    "default_root",
    "run_check",
    "scan_project",
]

#: Inline suppression marker.  Matches on the finding's own line or the
#: line directly above it::
#:
#:     age = time.time() - mtime  # deact: allow(DET001) lock staleness
_ALLOW_RE = re.compile(r"#\s*deact:\s*allow\(([A-Z0-9_,\s]+)\)")


@dataclasses.dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module."""

    path: Path            # absolute filesystem path
    rel: str              # package-relative posix path (repro/core/node.py)
    name: str             # dotted module name (repro.core.node)
    tree: ast.Module
    lines: Tuple[str, ...]

    def allowed_rules_at(self, line: int) -> frozenset:
        """Rule ids suppressed inline at 1-based ``line``."""
        rules: set = set()
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(self.lines):
                match = _ALLOW_RE.search(self.lines[candidate - 1])
                if match:
                    rules.update(
                        r.strip() for r in match.group(1).split(",")
                        if r.strip())
        return frozenset(rules)


@dataclasses.dataclass(frozen=True)
class Project:
    """Every module under one package root, keyed by dotted name."""

    root: Path
    modules: Dict[str, ModuleInfo]

    def by_rel(self, rel: str) -> Optional[ModuleInfo]:
        for module in self.modules.values():
            if module.rel == rel:
                return module
        return None


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def scan_project(root: Union[str, Path, None] = None) -> Project:
    """Parse every module under ``root`` (default: the ``repro``
    package).  Raises :class:`AnalysisError` on unreadable or
    syntactically invalid source — the checker cannot vouch for a tree
    it cannot parse."""
    root_path = Path(root).resolve() if root is not None else default_root()
    if not root_path.is_dir():
        raise AnalysisError(f"not a package directory: {root_path}")

    modules: Dict[str, ModuleInfo] = {}
    for path in sorted(root_path.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel_parts = (root_path.name,) + path.relative_to(root_path).parts
        rel = "/".join(rel_parts)
        dotted_parts = list(rel_parts)
        dotted_parts[-1] = dotted_parts[-1][:-len(".py")]
        if dotted_parts[-1] == "__init__":
            dotted_parts.pop()
        name = ".".join(dotted_parts)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        modules[name] = ModuleInfo(
            path=path, rel=rel, name=name, tree=tree,
            lines=tuple(source.splitlines()))
    return Project(root=root_path, modules=modules)


@dataclasses.dataclass(frozen=True)
class CheckReport:
    """Outcome of one ``deact check`` run."""

    root: str
    findings: Tuple[Finding, ...]            # active (gate these)
    suppressed_inline: Tuple[Finding, ...]
    suppressed_baseline: Tuple[Finding, ...]
    rule_ids: Tuple[str, ...]                # rules that ran

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        by_rule: Dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "schema": 1,
            "tool": "deact-check",
            "root": self.root,
            "rules": list(self.rule_ids),
            "findings": [f.to_dict() for f in self.findings],
            "counts": {
                "total": len(self.findings),
                "by_rule": dict(sorted(by_rule.items())),
            },
            "suppressed": {
                "inline": len(self.suppressed_inline),
                "baseline": len(self.suppressed_baseline),
            },
        }

    def render_table(self, fix_hints: bool = False) -> str:
        from repro.analysis.render import render_table

        return render_table(self, fix_hints=fix_hints)


def _instantiate(rules: Optional[Sequence[Union[Rule, Type[Rule]]]]
                 ) -> List[Rule]:
    classes = all_rules() if rules is None else list(rules)
    out: List[Rule] = []
    for rule in classes:
        out.append(rule() if isinstance(rule, type) else rule)
    return out


def run_check(root: Union[str, Path, None] = None,
              rules: Optional[Sequence[Union[Rule, Type[Rule]]]] = None,
              baseline: Optional[object] = None) -> CheckReport:
    """Scan ``root`` and run ``rules`` (default: all registered).

    ``baseline`` is a :class:`repro.analysis.baseline.Baseline`; its
    entries demote matching findings to *suppressed* instead of
    active.  Rule crashes are internal errors and surface as
    :class:`AnalysisError` (exit 2), never as silence.
    """
    project = scan_project(root)
    instances = _instantiate(rules)

    collected: set = set()
    for rule in instances:
        try:
            collected.update(rule.check_project(project))
            for module in project.modules.values():
                collected.update(rule.check_module(module, project))
        except AnalysisError:
            raise
        except Exception as exc:
            raise AnalysisError(
                f"rule {rule.id} crashed: {exc!r}") from exc

    active: List[Finding] = []
    inline: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sorted(collected, key=Finding.sort_key):
        module = project.by_rel(finding.path)
        if finding.line and module is not None \
                and finding.rule in module.allowed_rules_at(finding.line):
            inline.append(finding)
        elif baseline is not None and baseline.matches(finding):
            grandfathered.append(finding)
        else:
            active.append(finding)

    return CheckReport(
        root=str(project.root),
        findings=tuple(active),
        suppressed_inline=tuple(inline),
        suppressed_baseline=tuple(grandfathered),
        rule_ids=tuple(rule.id for rule in instances),
    )
