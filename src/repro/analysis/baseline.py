"""Grandfathered-findings baseline (``analysis-baseline.toml``).

The gate lands strict: known debt goes in a committed TOML file that
*suppresses but still counts* matching findings, so new violations
fail CI immediately while old ones are burned down on their own
schedule.  Entries match on ``(rule, path)`` plus an optional
``symbol`` (the enclosing function/class qualname) — deliberately not
on line numbers, which churn with every unrelated edit.

File format::

    schema = 1

    [[suppress]]
    rule = "DET001"
    path = "repro/experiments/cachefile.py"
    symbol = "_acquire_lock"          # optional; omit to match the file
    reason = "lock staleness probe"   # optional, for humans

Reading uses stdlib :mod:`tomllib`; writing emits the subset above by
hand (the stdlib has no TOML writer, and the subset needs only
JSON-compatible string escaping).
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = [
    "Baseline",
    "Suppression",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
]

BASELINE_NAME = "analysis-baseline.toml"
SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One grandfathered finding pattern."""

    rule: str
    path: str                      # package-relative posix path
    symbol: Optional[str] = None   # None matches any symbol in the file
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule or finding.path != self.path:
            return False
        return self.symbol is None or finding.symbol == self.symbol


@dataclasses.dataclass(frozen=True)
class Baseline:
    """The parsed suppression set."""

    entries: Tuple[Suppression, ...] = ()
    source: Optional[Path] = None

    def matches(self, finding: Finding) -> bool:
        return any(entry.matches(finding) for entry in self.entries)


def default_baseline_path(start: Union[str, Path, None] = None) -> Path:
    """``analysis-baseline.toml`` next to the repo root.

    Walks up from ``start`` (default: cwd) until it finds an existing
    baseline file or a ``.git`` directory; falls back to ``start``
    itself so a fresh checkout still gets a stable location.
    """
    base = Path(start).resolve() if start is not None \
        else Path.cwd().resolve()
    for candidate in (base, *base.parents):
        if (candidate / BASELINE_NAME).is_file():
            return candidate / BASELINE_NAME
        if (candidate / ".git").exists():
            return candidate / BASELINE_NAME
    return base / BASELINE_NAME


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Parse a baseline file; a missing file is an empty baseline, a
    corrupt one is an :class:`AnalysisError` (exit 2 — silently
    ignoring a broken baseline would un-suppress everything or, worse,
    nothing)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return Baseline(source=baseline_path)
    try:
        with open(baseline_path, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise AnalysisError(
            f"cannot read baseline {baseline_path}: {exc}") from exc

    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise AnalysisError(
            f"baseline {baseline_path}: unsupported schema {schema!r} "
            f"(expected {SCHEMA_VERSION})")

    entries: List[Suppression] = []
    for index, raw in enumerate(data.get("suppress", [])):
        if not isinstance(raw, dict):
            raise AnalysisError(
                f"baseline {baseline_path}: suppress[{index}] is not "
                f"a table")
        try:
            rule = raw["rule"]
            rel = raw["path"]
        except KeyError as exc:
            raise AnalysisError(
                f"baseline {baseline_path}: suppress[{index}] missing "
                f"required key {exc}") from exc
        if not isinstance(rule, str) or not isinstance(rel, str):
            raise AnalysisError(
                f"baseline {baseline_path}: suppress[{index}] rule/"
                f"path must be strings")
        symbol = raw.get("symbol")
        if symbol is not None and not isinstance(symbol, str):
            raise AnalysisError(
                f"baseline {baseline_path}: suppress[{index}] symbol "
                f"must be a string")
        entries.append(Suppression(
            rule=rule, path=rel, symbol=symbol,
            reason=str(raw.get("reason", ""))))
    return Baseline(entries=tuple(entries), source=baseline_path)


def _toml_string(value: str) -> str:
    # TOML basic strings share JSON's escape rules for the characters
    # that can appear here (paths, qualnames, prose).
    return json.dumps(value)


def write_baseline(path: Union[str, Path],
                   findings: Tuple[Finding, ...]) -> None:
    """Write a baseline grandfathering exactly ``findings``.

    Dedupes to ``(rule, path, symbol)`` so line churn never bloats the
    file; output is sorted for stable diffs.
    """
    keys = sorted({(f.rule, f.path, f.symbol) for f in findings})
    lines = [
        "# Grandfathered `deact check` findings.  Entries suppress",
        "# matching findings without deleting them from the report;",
        "# remove an entry once its debt is paid.  Regenerate with:",
        "#   deact check --write-baseline",
        f"schema = {SCHEMA_VERSION}",
    ]
    for rule, rel, symbol in keys:
        lines += [
            "",
            "[[suppress]]",
            f"rule = {_toml_string(rule)}",
            f"path = {_toml_string(rel)}",
        ]
        if symbol:
            lines.append(f"symbol = {_toml_string(symbol)}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
