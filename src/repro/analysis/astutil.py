"""Shared :mod:`ast` helpers for the rule implementations.

Rules never import each other; anything two rules both need (dotted
call-name resolution, qualname maps, subtree walks with exclusions)
lives here so their notion of "what is a call to ``time.time``" or
"which function encloses this node" cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "FUNCTION_NODES",
    "call_positional_count",
    "dotted_name",
    "function_defs",
    "has_double_star",
    "keyword_map",
    "literal_tuple_of_strings",
    "qualname_map",
    "walk_excluding",
]

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = FUNCTION_NODES + (ast.ClassDef,)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call nodes resolve through their ``func`` so both
    ``dotted_name(call)`` and ``dotted_name(call.func)`` work.
    """
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def qualname_map(tree: ast.Module) -> Dict[int, str]:
    """Map ``id(node)`` of every node to its enclosing dotted qualname.

    Module-level nodes map to ``''``; a statement inside
    ``class Node: def step(...)`` maps to ``'Node.step'``.  Function
    and class *definition nodes themselves* map to their own qualname
    (a finding on ``def foo`` should read ``symbol=foo``).
    """
    out: Dict[int, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        if isinstance(node, _SCOPE_NODES):
            scope = f"{scope}.{node.name}" if scope else node.name
        out[id(node)] = scope
        for child in ast.iter_child_nodes(node):
            visit(child, scope)

    for child in ast.iter_child_nodes(tree):
        visit(child, "")
    out[id(tree)] = ""
    return out


def function_defs(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(dotted_qualname, def_node)`` for every function."""
    names = qualname_map(tree)
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield names[id(node)], node


def walk_excluding(node: ast.AST, excluded: Tuple[type, ...],
                   include_root: bool = False) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree, pruning subtrees rooted at ``excluded``
    node types.

    The excluded node itself is *yielded* (so a rule can flag a nested
    ``def`` without also flagging every construct inside it) but its
    children are not visited.
    """
    if include_root:
        yield node
        if isinstance(node, excluded):
            return
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, excluded):
            continue
        stack.extend(ast.iter_child_nodes(current))


def keyword_map(call: ast.Call) -> Dict[Optional[str], ast.expr]:
    """Keyword name -> value expression; ``None`` key for ``**kwargs``."""
    return {kw.arg: kw.value for kw in call.keywords}


def has_double_star(call: ast.Call) -> bool:
    return any(kw.arg is None for kw in call.keywords)


def call_positional_count(call: ast.Call) -> int:
    return len(call.args)


def literal_tuple_of_strings(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The value of a tuple/list display whose elements are all string
    constants, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


def assigned_string_tuples(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` assignments."""
    out: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            value = literal_tuple_of_strings(node.value)
            if value is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = value
    return out


def assigned_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value.value
    return out


def local_string_assignments(func: ast.AST) -> Dict[str, str]:
    """``name = "literal"`` assignments directly in a function body."""
    out: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value.value
    return out


def nested_function_names(func: ast.AST) -> Set[str]:
    """Names of functions/lambda-bindings defined *inside* ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, FUNCTION_NODES):
            names.add(node.name)
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names
