"""The finding record every rule emits.

A finding pins one invariant violation to a source location: the rule
that fired, where (package-relative path, 1-based line/column), the
enclosing symbol (dotted function/class qualname, for baseline
matching that survives line-number churn), a human message, and the
rule's fix hint.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["SEVERITIES", "Finding"]

#: Recognized severities, gate-worthy first.  Every shipped rule is
#: ``error`` today; ``warning`` exists so a future rule can surface
#: advice without flipping the exit code.
SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location."""

    rule: str
    severity: str
    path: str            # package-relative posix path, e.g. repro/core/node.py
    line: int            # 1-based; 0 for whole-file/project findings
    col: int             # 1-based; 0 for whole-file/project findings
    symbol: str          # enclosing dotted qualname ('' at module level)
    message: str
    hint: str = ""

    @property
    def location(self) -> str:
        if self.line:
            return f"{self.path}:{self.line}:{self.col}"
        return self.path

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable (``--json``) form of this finding."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)
