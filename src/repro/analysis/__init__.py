"""Static invariant checking for the ``repro`` source tree.

The repo's correctness story rests on contracts that the expensive
equivalence suites only catch *after* a violation ships: the three
execution tiers must stay bit-identical, canonical cache/trajectory
writes must be byte-deterministic across hosts, the ``*_fast`` probe
paths must stay allocation-free, and everything crossing the sweep
pool boundary must pickle.  This package enforces those contracts at
diff time by walking the :mod:`ast` of every module under
``src/repro`` — the same way sanitizer/lint wiring protects production
simulator stacks.

Entry point: ``deact check`` (see :mod:`repro.cli`), or
:func:`run_check` programmatically::

    from repro.analysis import run_check
    report = run_check()          # scans the installed repro package
    print(report.render_table())

Shipped rules (each a registered class in
:mod:`repro.analysis.rules`):

========  ==========================================================
DET001    no nondeterminism sources in canonical-write modules
HOT001    no allocating constructs in ``@hot_path`` / ``*_fast`` code
PAR001    tier-parity surfaces (fast/batch vs. refpath, CLI mirrors,
          ``NodeMetrics`` serialization round-trip)
PKL001    pool submit sites take module-level callables only
CFG001    config dataclasses frozen and fully annotated
DEF001    no mutable default arguments
EXC001    no bare ``except:`` clauses
ROB001    result-wait sites in supervised-execution modules bounded
========  ==========================================================

Findings can be suppressed inline (``# deact: allow(RULE)`` on the
offending line) or grandfathered in ``analysis-baseline.toml`` so the
gate lands strict while known debt is burned down.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    Baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import CheckReport, Project, run_check, scan_project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules, get_rule

# Importing the rule modules registers their rule classes.
from repro.analysis.rules import (  # noqa: F401  (registration imports)
    configs as _configs,
    determinism as _determinism,
    hotpath as _hotpath,
    hygiene as _hygiene,
    parity as _parity,
    pickling as _pickling,
    robustness as _robustness,
)

__all__ = [
    "Baseline",
    "CheckReport",
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "default_baseline_path",
    "get_rule",
    "load_baseline",
    "run_check",
    "scan_project",
    "write_baseline",
]
