"""Human-readable rendering of a :class:`~repro.analysis.engine.CheckReport`.

The table is plain monospace (no ANSI codes) so it reads identically
in a terminal, a CI log, and a pasted issue comment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["render_table"]


def _format_rows(rows: Sequence[Tuple[str, ...]],
                 header: Tuple[str, ...]) -> List[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row in (header,) + tuple(rows):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if row is header:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def render_table(report, fix_hints: bool = False) -> str:
    lines: List[str] = []
    if report.findings:
        rows = [
            (f.rule, f.severity, f.location, f.symbol or "-", f.message)
            for f in report.findings
        ]
        lines.extend(_format_rows(
            rows, ("rule", "severity", "location", "symbol", "message")))
        if fix_hints:
            lines.append("")
            lines.append("fix hints:")
            seen = set()
            for finding in report.findings:
                if finding.rule in seen or not finding.hint:
                    continue
                seen.add(finding.rule)
                lines.append(f"  {finding.rule}: {finding.hint}")
        lines.append("")

    total = len(report.findings)
    noun = "finding" if total == 1 else "findings"
    summary = (f"deact check: {total} {noun} "
               f"({len(report.rule_ids)} rules over {report.root})")
    extras = []
    if report.suppressed_inline:
        extras.append(f"{len(report.suppressed_inline)} inline-allowed")
    if report.suppressed_baseline:
        extras.append(f"{len(report.suppressed_baseline)} baselined")
    if extras:
        summary += f" [{', '.join(extras)}]"
    lines.append(summary)
    return "\n".join(lines)
