"""PAR001 — tier-parity surfaces must stay in sync.

The three execution tiers are only trustworthy because the white-box
reference path (:mod:`repro.core.refpath`) re-derives every fast-path
probe independently, and because a handful of deliberately duplicated
literals (the CLI's mode choices, the hot-bench name, the
``NodeMetrics`` serialization) mirror their single sources of truth.
Nothing at runtime checks those mirrors — a renamed fast probe or a
field added to ``NodeMetrics`` but not to ``_result_to_dict`` ships
silently and only shows up as an equivalence-suite failure (or worse,
a cache round-trip that drops data).  This rule re-checks the mirrors
on every ``deact check``:

* every ``*_fast`` function must have a :mod:`repro.core.refpath`
  counterpart (matched by sharing a name token of >= 4 chars, so
  ``walk_system_table_fast`` pairs with ``_ref_stu_walk`` via
  ``walk`` without hard-coding the pairing table);
* every segment kind in ``repro.core.runplan.SEGMENT_KINDS`` must
  have a ``_handle_<kind>`` consumer in :mod:`repro.core.batch`,
  every ``_handle_*`` in the plan/consumer pair must name a declared
  kind, and each handler body must call at least one probe whose name
  token-matches a refpath function — the run-first parity surface is
  the segment handlers, not just the ``*_fast`` probes they wrap;
* the CLI's ``execution_modes`` tuple and ``hot_bench`` literal must
  equal ``repro.core.system.EXECUTION_MODES`` and
  ``repro.experiments.bench.HOT_BENCH``;
* ``DEFAULT_EXECUTION_MODE`` must be a member of ``EXECUTION_MODES``;
* the ``NodeMetrics`` dataclass fields, the keyword arguments of the
  ``NodeMetrics(...)`` construction in ``Node.metrics``, and the
  per-node dict keys in ``runner._result_to_dict`` must be the same
  set (this is what makes ``NodeMetrics(**n)`` deserialization total).

Each sub-check only runs when its anchor modules are present in the
scanned tree, so the rule degrades gracefully on partial trees (test
fixtures).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["TierParity"]

REFPATH_MODULE = "repro.core.refpath"
RUNPLAN_MODULE = "repro.core.runplan"
BATCH_MODULE = "repro.core.batch"
SYSTEM_MODULE = "repro.core.system"
BENCH_MODULE = "repro.experiments.bench"
CLI_MODULE = "repro.cli"
RESULTS_MODULE = "repro.core.results"
NODE_MODULE = "repro.core.node"
RUNNER_MODULE = "repro.experiments.runner"

#: Minimum token length for fast<->refpath name matching; shorter
#: tokens ("l1", "to", "do") match everything and prove nothing.
MIN_TOKEN = 4

#: Segment-kind handlers are ``_handle_<kind>`` methods by convention
#: (``runplan.SEGMENT_KINDS`` entries with ``-`` mapped to ``_``).
SEGMENT_HANDLER_PREFIX = "_handle_"


def _tokens(fast_name: str) -> Set[str]:
    stem = fast_name[:-len("_fast")] if fast_name.endswith("_fast") \
        else fast_name
    stem = stem.lstrip("_")
    return {t for t in stem.split("_") if len(t) >= MIN_TOKEN}


def _call_tokens(func: ast.AST) -> Set[str]:
    """Name tokens (>= MIN_TOKEN chars) of every call made inside
    ``func``, resolved through attribute chains (``self.node.step_fast``
    contributes ``step``)."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = astutil.dotted_name(node)
            if name is not None:
                out.update(_tokens(name.split(".")[-1]))
    return out


def _local_tuple(func: ast.AST, name: str) -> Optional[
        Tuple[Tuple[str, ...], int, int]]:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            value = astutil.literal_tuple_of_strings(node.value)
            if value is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return value, node.lineno, node.col_offset
    return None


def _local_string(func: ast.AST, name: str) -> Optional[
        Tuple[str, int, int]]:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value.value, node.lineno, node.col_offset
    return None


def _dataclass_fields(tree: ast.Module, class_name: str) -> Optional[
        Tuple[Tuple[str, ...], int]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = tuple(
                stmt.target.id for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name))
            return fields, node.lineno
    return None


def _constructor_keywords(tree: ast.Module, class_name: str) -> Optional[
        Tuple[Tuple[str, ...], int]]:
    """Keywords of the first keyword-only ``ClassName(...)`` call."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.dotted_name(node)
        if name is None or name.split(".")[-1] != class_name:
            continue
        if node.args or astutil.has_double_star(node):
            continue
        keys = tuple(kw.arg for kw in node.keywords if kw.arg)
        if keys:
            return keys, node.lineno
    return None


def _dict_keys_containing(tree: ast.Module, func_name: str,
                          marker: str) -> Optional[Tuple[Tuple[str, ...],
                                                         int]]:
    """String keys of the dict display inside ``func_name`` that has
    ``marker`` among its keys."""
    for qualname, func in astutil.function_defs(tree):
        if qualname.rsplit(".", 1)[-1] != func_name:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Dict):
                continue
            keys = tuple(
                k.value for k in node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str))
            if marker in keys:
                return keys, node.lineno
    return None


class TierParity(Rule):
    id = "PAR001"
    title = "tier-parity surface drifted between files"
    severity = "error"
    hint = ("update both sides of the mirror together: add the refpath "
            "counterpart for a new *_fast probe, give every "
            "SEGMENT_KINDS entry a _handle_<kind> consumer that calls a "
            "refpath-matched probe, and keep the NodeMetrics fields / "
            "Node.metrics() keywords / _result_to_dict keys identical")

    def check_project(self, project) -> Iterable[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_fast_counterparts(project))
        findings.extend(self._check_segment_handlers(project))
        findings.extend(self._check_cli_mirrors(project))
        findings.extend(self._check_metrics_roundtrip(project))
        return findings

    # -- *_fast <-> refpath ----------------------------------------------
    def _check_fast_counterparts(self, project) -> Iterable[Finding]:
        refpath = project.modules.get(REFPATH_MODULE)
        if refpath is None:
            return []
        ref_names: Set[str] = set()
        for qualname, _func in astutil.function_defs(refpath.tree):
            ref_names.add(qualname.rsplit(".", 1)[-1])
        ref_tokens: Set[str] = set()
        for name in ref_names:
            ref_tokens.update(_tokens(name))

        findings: List[Finding] = []
        for module in project.modules.values():
            if module.name == REFPATH_MODULE:
                continue
            for qualname, func in astutil.function_defs(module.tree):
                short = qualname.rsplit(".", 1)[-1]
                if not short.endswith("_fast"):
                    continue
                if _tokens(short) & ref_tokens:
                    continue
                findings.append(self.finding(
                    module, func.lineno, func.col_offset, qualname,
                    f"fast-path probe {short}() has no counterpart in "
                    f"{REFPATH_MODULE} (no shared name token); the "
                    f"reference tier cannot cross-check it"))
        return findings

    # -- segment kinds <-> _handle_<kind> consumers ----------------------
    def _check_segment_handlers(self, project) -> Iterable[Finding]:
        """The run-first parity surface.

        ``repro.core.runplan.SEGMENT_KINDS`` is the single source of
        truth for the segment taxonomy; the batch tier consumes plans
        through one ``_handle_<kind>`` per kind.  Three mirrors to
        hold: every kind has its consumer handler in
        ``repro.core.batch``; every ``_handle_*`` in the plan/consumer
        pair names a declared kind (a typo'd handler would silently
        never dispatch); and every handler body reaches a probe the
        reference tier can cross-check (a refpath-token-matched call,
        same matching as the ``*_fast`` check).
        """
        runplan = project.modules.get(RUNPLAN_MODULE)
        if runplan is None:
            return []
        findings: List[Finding] = []
        kinds = astutil.assigned_string_tuples(
            runplan.tree).get("SEGMENT_KINDS")
        if kinds is None:
            findings.append(self.finding(
                runplan, 0, -1, "",
                "SEGMENT_KINDS is not a module-level literal string "
                "tuple; the segment-handler parity check cannot see "
                "the kinds"))
            return findings
        handler_names = {kind: SEGMENT_HANDLER_PREFIX
                         + kind.replace("-", "_") for kind in kinds}
        valid = set(handler_names.values())

        refpath = project.modules.get(REFPATH_MODULE)
        ref_tokens: Set[str] = set()
        if refpath is not None:
            for qualname, _func in astutil.function_defs(refpath.tree):
                ref_tokens.update(_tokens(qualname.rsplit(".", 1)[-1]))

        batch = project.modules.get(BATCH_MODULE)
        batch_handlers: Set[str] = set()
        for module in (runplan, batch):
            if module is None:
                continue
            for qualname, func in astutil.function_defs(module.tree):
                short = qualname.rsplit(".", 1)[-1]
                if not short.startswith(SEGMENT_HANDLER_PREFIX):
                    continue
                if short not in valid:
                    findings.append(self.finding(
                        module, func.lineno, func.col_offset, qualname,
                        f"segment handler {short}() matches no kind in "
                        f"{RUNPLAN_MODULE}.SEGMENT_KINDS {kinds!r}; it "
                        f"would never dispatch"))
                    continue
                if module is batch:
                    batch_handlers.add(short)
                if ref_tokens and not (_call_tokens(func) & ref_tokens):
                    findings.append(self.finding(
                        module, func.lineno, func.col_offset, qualname,
                        f"segment handler {short}() never calls a "
                        f"{REFPATH_MODULE}-token-matched probe; the "
                        f"reference tier cannot cross-check this "
                        f"segment kind"))
        if batch is not None:
            for kind in kinds:
                handler = handler_names[kind]
                if handler not in batch_handlers:
                    findings.append(self.finding(
                        batch, 0, -1, "",
                        f"segment kind {kind!r} has no {handler}() "
                        f"consumer in {BATCH_MODULE}; plans emitting it "
                        f"cannot be charged"))
        return findings

    # -- CLI literal mirrors ---------------------------------------------
    def _check_cli_mirrors(self, project) -> Iterable[Finding]:
        cli = project.modules.get(CLI_MODULE)
        system = project.modules.get(SYSTEM_MODULE)
        bench = project.modules.get(BENCH_MODULE)
        findings: List[Finding] = []

        modes: Optional[Tuple[str, ...]] = None
        if system is not None:
            tuples = astutil.assigned_string_tuples(system.tree)
            modes = tuples.get("EXECUTION_MODES")
            constants = astutil.assigned_string_constants(system.tree)
            default = constants.get("DEFAULT_EXECUTION_MODE")
            if modes is not None and default is not None \
                    and default not in modes:
                findings.append(self.finding(
                    system, 0, -1, "",
                    f"DEFAULT_EXECUTION_MODE {default!r} is not in "
                    f"EXECUTION_MODES {modes!r}"))

        if cli is not None:
            cli_modes = _local_tuple(cli.tree, "execution_modes")
            if cli_modes is not None and modes is not None \
                    and cli_modes[0] != modes:
                findings.append(self.finding(
                    cli, cli_modes[1], cli_modes[2], "",
                    f"CLI execution_modes {cli_modes[0]!r} != "
                    f"{SYSTEM_MODULE}.EXECUTION_MODES {modes!r}"))
            cli_hot = _local_string(cli.tree, "hot_bench")
            if cli_hot is not None and bench is not None:
                hot = astutil.assigned_string_constants(
                    bench.tree).get("HOT_BENCH")
                if hot is not None and cli_hot[0] != hot:
                    findings.append(self.finding(
                        cli, cli_hot[1], cli_hot[2], "",
                        f"CLI hot_bench {cli_hot[0]!r} != "
                        f"{BENCH_MODULE}.HOT_BENCH {hot!r}"))
        return findings

    # -- NodeMetrics serialization round-trip ----------------------------
    def _check_metrics_roundtrip(self, project) -> Iterable[Finding]:
        results = project.modules.get(RESULTS_MODULE)
        if results is None:
            return []
        declared = _dataclass_fields(results.tree, "NodeMetrics")
        if declared is None:
            return []
        want = set(declared[0])
        findings: List[Finding] = []

        surfaces: List[Tuple[object, str, Optional[Tuple[Tuple[str, ...],
                                                         int]]]] = []
        node = project.modules.get(NODE_MODULE)
        if node is not None:
            surfaces.append((node, "NodeMetrics(...) keywords in "
                                   "Node.metrics()",
                             _constructor_keywords(node.tree,
                                                   "NodeMetrics")))
        runner = project.modules.get(RUNNER_MODULE)
        if runner is not None:
            surfaces.append((runner, "_result_to_dict() per-node keys",
                             _dict_keys_containing(runner.tree,
                                                   "_result_to_dict",
                                                   "node_id")))

        for module, label, got in surfaces:
            if got is None:
                continue
            have = set(got[0])
            missing = sorted(want - have)
            extra = sorted(have - want)
            if missing or extra:
                detail = []
                if missing:
                    detail.append(f"missing {missing}")
                if extra:
                    detail.append(f"extra {extra}")
                findings.append(self.finding(
                    module, got[1], -1, "",
                    f"{label} drifted from NodeMetrics fields: "
                    f"{'; '.join(detail)}"))
        return findings
