"""CFG001 — config dataclasses must be frozen and fully annotated.

Configs flow through settings fingerprints (SHA-256 over their
serialized form) into cache keys and the bench trajectory.  A mutable
config invites in-place edits *after* fingerprinting — the cache then
files results under a stale key; an unannotated class attribute is
silently shared class state instead of a dataclass field, so it never
reaches ``asdict``/the fingerprint at all.  Both failure modes are
invisible at the call site, so the shape is enforced here.

Scope: every ``@dataclass`` class in modules under ``repro.config``.
Flagged:

* a ``@dataclass`` decoration without ``frozen=True``;
* a plain (unannotated) assignment in the class body — it is a class
  attribute, not a field; annotate it (or name it with a leading
  underscore if shared class state is genuinely intended).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["FrozenConfigs"]

IN_SCOPE_PREFIX = "repro.config"


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        name = astutil.dotted_name(
            decorator.func if isinstance(decorator, ast.Call) else decorator)
        if name in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass defaults to frozen=False
    for kw in decorator.keywords:
        if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
            return kw.value.value is True
    return False


class FrozenConfigs(Rule):
    id = "CFG001"
    title = "config dataclass not frozen or not fully annotated"
    severity = "error"
    hint = ("declare config classes @dataclass(frozen=True) and give "
            "every field a type annotation; do validation in "
            "__post_init__ with object.__setattr__ for derived fields")

    def check_module(self, module, project) -> Iterable[Finding]:
        if not (module.name == IN_SCOPE_PREFIX
                or module.name.startswith(IN_SCOPE_PREFIX + ".")):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                findings.append(self.finding(
                    module, node.lineno, node.col_offset, node.name,
                    f"config dataclass {node.name} is not frozen; "
                    f"mutation after fingerprinting corrupts cache keys"))
            for stmt in node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and not target.id.startswith("_"):
                        findings.append(self.finding(
                            module, stmt.lineno, stmt.col_offset,
                            f"{node.name}.{target.id}",
                            f"unannotated assignment {target.id} in "
                            f"dataclass {node.name} is a class "
                            f"attribute, not a field"))
        return findings
