"""DET001 — no nondeterminism sources in canonical-write modules.

The result cache, the bench trajectory, and everything under
``repro.core`` promise *byte-identical* output for identical inputs:
cache merges treat differing payloads for the same run key as
corruption (:class:`repro.errors.CacheMergeConflict`), and the
committed trajectory is diffed across hosts.  A single
``time.time()`` or unseeded ``random.random()`` feeding those writes
breaks the promise silently, often only surfacing weeks later as an
unexplained merge conflict.

In scope: ``repro.core.*`` plus the two canonical-write experiment
modules (``repro.experiments.cachefile``, ``repro.experiments.trajectory``).
Flagged inside those modules:

* wall-clock reads: ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``/``today`` (``time.monotonic`` is fine —
  it is used for deadlines and never serialized);
* entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets.*``;
* unseeded randomness: module-level ``random.*`` calls, and
  ``random.Random()`` with no seed argument (``random.Random(seed)``
  is the sanctioned pattern);
* ``json.dump``/``json.dumps`` without ``sort_keys=True`` (skipped
  when the call forwards ``**kwargs`` — the sort flag may travel in
  it, as in ``write_json_atomic``);
* iterating a set display or bare ``set()``/``frozenset()`` call in a
  ``for`` or comprehension without ``sorted(...)`` around it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["Determinism"]

#: Dotted call names that read wall clocks or entropy pools.
BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
})

IN_SCOPE_MODULES = frozenset({
    "repro.experiments.cachefile",
    "repro.experiments.trajectory",
})
IN_SCOPE_PREFIX = "repro.core"


def in_scope(module_name: str) -> bool:
    if module_name in IN_SCOPE_MODULES:
        return True
    return module_name == IN_SCOPE_PREFIX \
        or module_name.startswith(IN_SCOPE_PREFIX + ".")


def _is_unsorted_set_expr(node: ast.AST) -> bool:
    """A set display or bare ``set()``/``frozenset()`` call."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        name = astutil.dotted_name(node)
        return name in ("set", "frozenset")
    return False


class Determinism(Rule):
    id = "DET001"
    title = "nondeterminism source in a canonical-write module"
    severity = "error"
    hint = ("thread a seeded random.Random(seed) / explicit timestamp in "
            "from the caller, pass sort_keys=True to json.dump, or wrap "
            "the set in sorted(...) before iterating")

    def check_module(self, module, project) -> Iterable[Finding]:
        if not in_scope(module.name):
            return []
        findings: List[Finding] = []
        symbols = astutil.qualname_map(module.tree)

        def emit(node: ast.AST, message: str) -> None:
            findings.append(self.finding(
                module, node.lineno, node.col_offset,
                symbols.get(id(node), ""), message))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = astutil.dotted_name(node)
                if name is None:
                    continue
                if name in BANNED_CALLS:
                    emit(node, f"call to {name}() is nondeterministic")
                elif name.startswith("secrets."):
                    emit(node, f"call to {name}() draws from the "
                               f"entropy pool")
                elif name == "random.Random":
                    if not node.args and not node.keywords:
                        emit(node, "random.Random() without a seed is "
                                   "nondeterministic")
                elif name.startswith("random."):
                    emit(node, f"module-level {name}() uses the shared "
                               f"unseeded RNG")
                elif name in ("json.dump", "json.dumps"):
                    keywords = astutil.keyword_map(node)
                    if None in keywords:
                        continue  # **kwargs may carry sort_keys
                    sort_keys = keywords.get("sort_keys")
                    if not (isinstance(sort_keys, ast.Constant)
                            and sort_keys.value is True):
                        emit(node, f"{name}() without sort_keys=True "
                                   f"makes output key-order dependent")
            elif isinstance(node, ast.For):
                if _is_unsorted_set_expr(node.iter):
                    emit(node.iter, "iterating a set without sorted() "
                                    "has no stable order")
            elif isinstance(node, ast.comprehension):
                if _is_unsorted_set_expr(node.iter):
                    emit(node.iter, "iterating a set without sorted() "
                                    "has no stable order")
        return findings
