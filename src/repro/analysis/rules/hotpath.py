"""HOT001 — no allocating constructs in hot-path functions.

The per-event loops (``Node.run_events`` and everything it calls on a
hit) execute hundreds of thousands of times per trace; an allocation
per event dominates the profile (PR 4's optimization work exists
precisely because of this).  The repo marks that surface two ways —
the ``*_fast`` naming convention and the explicit
:func:`repro.core.hotpath.hot_path` decorator — and this rule keeps
both allocation-free.

Flagged inside a hot function:

* comprehensions and generator expressions;
* ``lambda``, nested ``def``/``class`` (closure cells + code objects);
* f-strings (``JoinedStr``);
* ``dict``/``set``/``list`` *displays* (``{}``, ``{x}``, ``[x]``) and
  calls to the ``dict``/``list``/``set`` builtins.

Exempt: everything inside a ``raise`` statement — error paths run at
most once per simulation and may format rich messages.  Tuple
displays are also allowed: CPython builds small constant tuples at
compile time and the repo's hot returns are tuple-shaped.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["HotPath"]

_ALLOCATING_BUILTINS = frozenset({"dict", "list", "set"})

_BANNED_NODES = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
    ast.Lambda: "lambda",
    ast.JoinedStr: "f-string",
    ast.Dict: "dict display",
    ast.Set: "set display",
    ast.List: "list display",
}

#: Subtrees whose contents are exempt (or already flagged as a unit).
_PRUNE = (ast.Raise, ast.Lambda) + astutil.FUNCTION_NODES + (ast.ClassDef,)


def _is_hot(name: str, node: ast.AST) -> bool:
    """Hot by naming convention or by ``@hot_path`` decoration."""
    if name.endswith("_fast"):
        return True
    for decorator in getattr(node, "decorator_list", []):
        if astutil.dotted_name(decorator) in ("hot_path",
                                              "hotpath.hot_path"):
            return True
    return False


class HotPath(Rule):
    id = "HOT001"
    title = "allocating construct in a hot-path function"
    severity = "error"
    hint = ("preallocate in __init__ and mutate in place, return tuples, "
            "and hoist string formatting off the per-event path (raise "
            "statements are exempt)")

    def check_module(self, module, project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for qualname, func in astutil.function_defs(module.tree):
            short = qualname.rsplit(".", 1)[-1]
            if not _is_hot(short, func):
                continue
            for node in astutil.walk_excluding(func, _PRUNE):
                label = None
                for banned, text in _BANNED_NODES.items():
                    if type(node) is banned:
                        label = text
                        break
                if label is None and isinstance(node, ast.Call):
                    name = astutil.dotted_name(node)
                    if name in _ALLOCATING_BUILTINS:
                        label = f"{name}() call"
                if label is None and isinstance(
                        node, astutil.FUNCTION_NODES + (ast.ClassDef,)):
                    label = f"nested {type(node).__name__}"
                if label is not None:
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset, qualname,
                        f"{label} allocates on every call of hot "
                        f"function {short}()"))
        return findings
