"""PKL001 — pool submit sites must take module-level callables.

:mod:`repro.experiments.supervisor` fans jobs out over worker
processes; every callable crossing a process boundary is pickled by
reference, so a lambda, a nested function, or a bound method handed
to a pool submit method raises ``PicklingError`` — but only at
runtime, only with ``--jobs > 1``, which is exactly the configuration
the test suite runs least.  This rule rejects the pattern statically
at every pool/executor submit site.

Flagged as the *callable argument* (first positional) of
``imap``/``imap_unordered``/``map_async``/``starmap``/
``starmap_async``/``apply_async``/``submit`` method calls:

* ``lambda`` expressions;
* names bound to a nested ``def`` or lambda in the enclosing
  function;
* attribute accesses on ``self``/``cls`` (bound methods drag the
  whole instance through the pickle).

Bare ``pool.map(...)`` is *not* in the method set: the page tables'
``table.map(node_page, fam_page)`` is an address-mapping API, and a
name-only heuristic cannot tell the two apart without false
positives.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["PoolPickling"]

#: Method names that submit a callable to a pool/executor.  ``map`` and
#: ``apply`` are deliberately absent (see module docstring).
SUBMIT_METHODS = frozenset({
    "imap",
    "imap_unordered",
    "map_async",
    "starmap",
    "starmap_async",
    "apply_async",
    "submit",
})


class PoolPickling(Rule):
    id = "PKL001"
    title = "unpicklable callable at a pool submit site"
    severity = "error"
    hint = ("move the worker to module level and pass its inputs "
            "through the iterable (see supervisor._worker_main for the "
            "sanctioned pattern)")

    def check_module(self, module, project) -> Iterable[Finding]:
        findings: List[Finding] = []
        symbols = astutil.qualname_map(module.tree)

        for _qualname, func in astutil.function_defs(module.tree):
            nested = astutil.nested_function_names(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in SUBMIT_METHODS:
                    continue
                if not node.args:
                    continue
                target = node.args[0]
                problem = self._classify(target, nested)
                if problem is None:
                    continue
                findings.append(self.finding(
                    module, target.lineno, target.col_offset,
                    symbols.get(id(node), ""),
                    f"{problem} passed to .{node.func.attr}() cannot "
                    f"be pickled by reference"))
        return findings

    @staticmethod
    def _classify(target: ast.expr, nested_names: "set[str]"):
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name) and target.id in nested_names:
            return f"nested function {target.id!r}"
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                return f"bound method {base.id}.{target.attr}"
        return None
