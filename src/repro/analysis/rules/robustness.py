"""ROB001 — result-wait sites in supervised-execution modules must be
bounded.

The fault-tolerance story of the sweep layer rests on one discipline:
the parent process never blocks *indefinitely* on a child that may
already be dead.  A ``queue.get()`` with no timeout, a ``wait(conns)``
with no deadline, or a ``proc.join()`` without a bound each turn a
crashed or hung worker into a hung *sweep* — precisely the failure
mode the supervisor exists to eliminate, and one that only manifests
under the rare conditions (worker death, OOM kill) the test suite
exercises least.  This rule machine-enforces the discipline in the
modules that coordinate across processes.

In scope: ``repro.experiments.supervisor``, ``repro.experiments.sweep``,
``repro.experiments.cachefile``.  Flagged:

* ``.get(...)`` on a queue-like receiver (name contains ``queue`` or
  ends in ``_q``) without a ``timeout`` bound;
* ``.join(...)`` on a process/worker/pool/thread-like receiver with no
  timeout argument;
* ``wait(...)`` calls (bare, dotted ``*.wait``, or ``*_wait`` aliases
  such as ``multiprocessing.connection.wait``) without a timeout;
* pool ``.imap``/``.imap_unordered`` iteration — these block forever
  on a dead worker with no timeout knob at all; the supervised pool
  is the sanctioned fan-out.

A bound counts when it arrives as a ``timeout=`` keyword, via
``**kwargs``, or in the positional slot the API defines
(``get(block, timeout)``, ``join(timeout)``, ``wait(objs, timeout)``).
``.poll()``/``conn.recv()`` are deliberately out of scope: ``poll``
defaults to non-blocking, and ``recv`` is only reached behind a
``wait``-with-timeout readiness check (or, worker-side, an idle
worker awaiting dispatch — genuinely unbounded by design).  Where an
unbounded wait *is* intended, suppress inline with a rationale::

    task = queue.get()  # deact: allow(ROB001) idle worker awaits dispatch
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["BoundedWaits"]

IN_SCOPE_MODULES = frozenset({
    "repro.experiments.supervisor",
    "repro.experiments.sweep",
    "repro.experiments.cachefile",
})

#: Receiver-name fragments identifying queue-like objects for ``.get``.
QUEUE_FRAGMENTS = ("queue",)
#: Receiver-name fragments identifying joinable children for ``.join``.
JOINABLE_FRAGMENTS = ("proc", "worker", "pool", "thread")
#: Pool iteration methods with no timeout support at all.
UNBOUNDED_POOL_METHODS = frozenset({"imap", "imap_unordered"})


def _receiver_name(node: ast.Call) -> Optional[str]:
    """Dotted name of the object a method call is invoked on."""
    if not isinstance(node.func, ast.Attribute):
        return None
    return astutil.dotted_name(node.func.value)


def _has_bound(node: ast.Call, positional_slot: int) -> bool:
    """Whether the call passes a timeout: ``timeout=`` keyword,
    ``**kwargs`` (the bound may travel inside), or at least
    ``positional_slot + 1`` positional arguments (the slot the API
    defines for its timeout)."""
    keywords = astutil.keyword_map(node)
    if "timeout" in keywords or None in keywords:
        return True
    return len(node.args) > positional_slot


def _queue_like(name: Optional[str]) -> bool:
    if not name:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(f in tail for f in QUEUE_FRAGMENTS) or tail.endswith("_q")


def _joinable(name: Optional[str]) -> bool:
    if not name:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(f in tail for f in JOINABLE_FRAGMENTS)


def _is_wait_call(name: Optional[str]) -> bool:
    if not name:
        return False
    return (name == "wait" or name.endswith(".wait")
            or name.endswith("_wait"))


class BoundedWaits(Rule):
    id = "ROB001"
    title = "unbounded result wait in a supervised-execution module"
    severity = "error"
    hint = ("pass an explicit timeout (timeout=... or the API's "
            "positional slot) and handle expiry, or suppress with "
            "'# deact: allow(ROB001) <why unbounded is intended>'")

    def check_module(self, module, project) -> Iterable[Finding]:
        if module.name not in IN_SCOPE_MODULES:
            return []
        findings: List[Finding] = []
        symbols = astutil.qualname_map(module.tree)

        def emit(node: ast.AST, message: str) -> None:
            findings.append(self.finding(
                module, node.lineno, node.col_offset,
                symbols.get(id(node), ""), message))

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = astutil.dotted_name(node)
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                receiver = _receiver_name(node)
                if method in UNBOUNDED_POOL_METHODS:
                    emit(node, f".{method}() blocks forever on a dead "
                               f"worker and offers no timeout; use the "
                               f"supervised pool (run_supervised)")
                    continue
                if method == "get" and _queue_like(receiver):
                    # Queue.get(block=True, timeout=None): slot 1.
                    if not _has_bound(node, positional_slot=1):
                        emit(node, f"{receiver}.get() without a timeout "
                                   f"hangs if the producer died")
                    continue
                if method == "join" and _joinable(receiver):
                    # join(timeout=None): slot 0.
                    if not _has_bound(node, positional_slot=0):
                        emit(node, f"{receiver}.join() without a timeout "
                                   f"hangs on a wedged child")
                    continue
            if _is_wait_call(name):
                # wait(object_list, timeout=None): slot 1.
                if not _has_bound(node, positional_slot=1):
                    emit(node, f"{name}() without a timeout blocks "
                               f"forever if no child ever speaks")
        return findings
