"""DEF001 / EXC001 — general hygiene invariants.

Two small rules that guard failure modes this codebase is unusually
exposed to:

* **DEF001** — mutable default arguments.  Config plumbing passes
  dicts and lists through many layers of keyword arguments; a
  ``def f(overrides={})`` default is shared across *all* calls, so a
  single sweep job mutating it leaks state into every later job in
  the same worker process — exactly the cross-run contamination the
  cache's determinism checks exist to catch, except here it happens
  before anything is fingerprinted.

* **EXC001** — bare ``except:`` clauses.  A bare except swallows
  ``KeyboardInterrupt``/``SystemExit``, which turns Ctrl-C during a
  sweep into a hung pool; catch ``Exception`` (or something
  narrower) instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis import astutil
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["MutableDefaults", "BareExcept"]

_MUTABLE_DISPLAYS = (ast.Dict, ast.List, ast.Set)
_MUTABLE_CALLS = frozenset({"dict", "list", "set"})


class MutableDefaults(Rule):
    id = "DEF001"
    title = "mutable default argument"
    severity = "error"
    hint = "default to None and create the container inside the function"

    def check_module(self, module, project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for qualname, func in astutil.function_defs(module.tree):
            args = func.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]
            for default in defaults:
                mutable = isinstance(default, _MUTABLE_DISPLAYS)
                if not mutable and isinstance(default, ast.Call):
                    mutable = astutil.dotted_name(default) in _MUTABLE_CALLS
                if mutable:
                    findings.append(self.finding(
                        module, default.lineno, default.col_offset,
                        qualname,
                        f"mutable default argument in {qualname}() is "
                        f"shared across every call"))
        return findings


class BareExcept(Rule):
    id = "EXC001"
    title = "bare except clause"
    severity = "error"
    hint = "catch Exception (or narrower); bare except eats Ctrl-C"

    def check_module(self, module, project) -> Iterable[Finding]:
        findings: List[Finding] = []
        symbols = astutil.qualname_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    symbols.get(id(node), ""),
                    "bare except: also catches KeyboardInterrupt and "
                    "SystemExit"))
        return findings
