"""Rule base class and registry.

A rule is a class with a unique ``id`` (``DET001``-style), a severity,
a one-line ``title``, and a ``hint`` telling the author how to fix a
violation.  Rules hook in at two granularities:

* :meth:`Rule.check_module` — called once per parsed module; the
  workhorse for local (single-file) invariants.
* :meth:`Rule.check_project` — called once with the whole project;
  for cross-file invariants (tier parity).

Subclassing with an ``id`` registers the rule; ``deact check`` runs
every registered rule unless filtered with ``--rule``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Type

from repro.analysis.findings import SEVERITIES, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import ModuleInfo, Project

__all__ = ["Rule", "all_rules", "get_rule"]

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class; subclasses with an ``id`` auto-register."""

    id: str = ""
    title: str = ""
    severity: str = "error"
    hint: str = ""

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.id:
            return  # abstract intermediate base
        if cls.severity not in SEVERITIES:
            raise ValueError(
                f"rule {cls.id}: unknown severity {cls.severity!r}")
        existing = _REGISTRY.get(cls.id)
        if existing is not None and existing is not cls:
            raise ValueError(f"duplicate rule id {cls.id!r}")
        _REGISTRY[cls.id] = cls

    # -- hooks -----------------------------------------------------------
    def check_module(self, module: "ModuleInfo",
                     project: "Project") -> Iterable[Finding]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        return ()

    # -- helpers ---------------------------------------------------------
    def finding(self, module: "ModuleInfo", line: int, col: int,
                symbol: str, message: str) -> Finding:
        """A finding of this rule at a node location in ``module``.

        ``col`` is the 0-based AST column; stored 1-based.
        """
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.rel,
            line=line,
            col=col + 1,
            symbol=symbol,
            message=message,
            hint=self.hint,
        )


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown rule {rule_id!r}; registered rules: {known}") from None
