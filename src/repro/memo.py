"""A small bounded LRU memo used by the hot-path caches.

PR 2 introduced two pure memoization layers on the simulation hot
path: the per-geometry decoded-trace cache on :class:`Trace` and the
per-VPN page-walk decomposition memo on :class:`FourLevelPageTable`.
Both were unbounded — harmless for a single run, but a long
many-trace sweep (or a sweep over many page/block geometries) keeps
every entry alive for the life of the process.  :class:`BoundedMemo`
caps them: an ``OrderedDict`` in least- to most-recently-used order,
evicting the coldest entry when full.

This is a *memo*, not a simulated structure: eviction only costs a
recompute and can never change simulation results (everything stored
here is a pure function of its key).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator, Optional

from repro.errors import ConfigError

__all__ = ["BoundedMemo"]


class BoundedMemo:
    """An LRU-bounded mapping with dict-like ``get`` / ``put`` / ``pop``."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(
                f"memo capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the memoized value (refreshing its recency), or
        ``default`` when absent."""
        entries = self._entries
        value = entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        entries.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``, evicting the LRU entry if full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
        entries[key] = value

    def pop(self, key: Any, default: Any = None) -> Any:
        """Drop ``key`` (memo invalidation), returning its value."""
        return self._entries.pop(key, default)

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedMemo({len(self._entries)}/{self.capacity} "
                f"entries)")


#: Unique sentinel so ``None`` values memoize cleanly.
_MISSING: Optional[object] = object()
