"""The ``deact`` command-line interface.

Three subcommands:

* ``deact run`` — run one benchmark on one architecture and print the
  headline metrics.
* ``deact compare`` — run a benchmark on every architecture and print
  a normalized comparison (a one-row Figure 12).
* ``deact figures`` — delegate to the experiment harness
  (``python -m repro.experiments``).

Examples::

    deact run --benchmark mcf --arch deact-n
    deact compare --benchmark canl --events 40000
    deact figures --figure 12
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.presets import default_config
from repro.core.architectures import ARCHITECTURES
from repro.core.system import FamSystem
from repro.workloads.catalog import benchmark_names, get_profile

__all__ = ["main"]


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", required=True,
                        choices=benchmark_names())
    parser.add_argument("--events", type=int, default=100_000,
                        help="trace events (default 100000)")
    parser.add_argument("--footprint-scale", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nodes", type=int, default=1)


def _build(args) -> tuple:
    config = default_config(nodes=args.nodes)
    profile = get_profile(args.benchmark)
    traces = [profile.build_trace(args.events,
                                  seed=args.seed + 1009 * node,
                                  footprint_scale=args.footprint_scale)
              for node in range(args.nodes)]
    return config, traces


def _cmd_run(args) -> int:
    config, traces = _build(args)
    system = FamSystem(config, args.arch)
    result = system.run(traces, benchmark=args.benchmark)
    print(f"benchmark           : {result.benchmark}")
    print(f"architecture        : {result.architecture}")
    print(f"IPC                 : {result.ipc:.4f}")
    print(f"runtime             : {result.runtime_ns / 1e6:.3f} ms")
    print(f"measured MPKI       : {result.mpki:.1f}")
    print(f"AT share at FAM     : {100 * result.fam_at_fraction:.2f} %")
    print(f"translation hit rate: {100 * result.translation_hit_rate:.2f} %")
    print(f"ACM hit rate        : {100 * result.acm_hit_rate:.2f} %")
    return 0


def _cmd_compare(args) -> int:
    config, traces = _build(args)
    results = {}
    for arch in ARCHITECTURES:
        system = FamSystem(config, arch)
        results[arch] = system.run(traces, benchmark=args.benchmark)
    efam = results["e-fam"]
    print(f"{args.benchmark}: performance normalized to E-FAM")
    for arch, result in results.items():
        norm = result.normalized_performance(efam)
        speedup = result.speedup_over(results["i-fam"])
        print(f"  {arch:<8} norm={norm:6.3f}  vs I-FAM={speedup:6.3f}x  "
              f"AT@FAM={100 * result.fam_at_fraction:5.1f}%")
    return 0


def _cmd_figures(args, extra: Sequence[str]) -> int:
    from repro.experiments.__main__ import main as figures_main
    return figures_main(list(extra))


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # ``figures`` forwards everything after it verbatim; argparse's
    # REMAINDER chokes on leading flags inside a subparser, so split
    # before parsing.
    if argv and argv[0] == "figures":
        return _cmd_figures(None, argv[1:])

    parser = argparse.ArgumentParser(
        prog="deact",
        description="DeACT (HPCA 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one benchmark/architecture")
    _add_trace_args(run_parser)
    run_parser.add_argument("--arch", default="deact-n",
                            choices=sorted(ARCHITECTURES))

    compare_parser = sub.add_parser(
        "compare", help="run one benchmark on all architectures")
    _add_trace_args(compare_parser)

    sub.add_parser(
        "figures", help="regenerate paper figures (forwards arguments "
                        "to python -m repro.experiments)")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
