"""The ``deact`` command-line interface.

Eight subcommands:

* ``deact run`` — run one benchmark on one architecture and print the
  headline metrics.
* ``deact compare`` — run a benchmark on every architecture and print
  a normalized comparison (a one-row Figure 12).
* ``deact sweep`` — expand a (benchmark × architecture × axis) cross
  product and run it on a worker pool, merging results into the
  shared JSON cache; ``--shard I/N`` runs one cross-host partition
  into a per-shard cache plus manifest.
* ``deact cache`` — ``merge`` shard caches into the canonical cache
  (conflict-aware), ``validate`` a cache against a sweep spec, and
  report coverage ``status``.
* ``deact bench`` — measure the three execution tiers (reference /
  scalar-fast / batch) and *append* a provenance-stamped entry to the
  machine-readable perf trajectory (``BENCH_core_loop.json``);
  ``deact bench compare`` diffs two trajectories per (benchmark,
  architecture, tier) cell and exits non-zero on regression.
* ``deact profile`` — cProfile one job and print the hottest
  functions (hot-path regression triage without ad-hoc scripts).
* ``deact check`` — statically verify the source tree's determinism,
  hot-path, tier-parity, pickle-safety, and config invariants
  (:mod:`repro.analysis`); exits 1 on findings, 2 on internal error,
  so CI can gate on it (``docs/static-analysis.md``).
* ``deact figures`` — delegate to the experiment harness
  (``python -m repro.experiments``).

Examples::

    deact run --benchmark mcf --arch deact-n
    deact compare --benchmark canl --events 40000 --jobs 4
    deact sweep --benchmark mcf --benchmark canl --arch i-fam \\
        --arch deact-n --axis stu-entries=256,1024 --jobs 4
    deact sweep --benchmark mcf --cache results.json --shard 1/2
    deact cache merge --cache results.json
    deact cache validate --cache results.json --benchmark mcf
    deact bench --events 8000 --out BENCH_core_loop.json
    deact bench compare old.json new.json --tolerance batch=0.3
    deact bench compare --against-baseline /tmp/candidate.json
    deact profile --benchmark lu --arch deact-n --mode batch --limit 15
    deact check --json
    deact check --rule HOT001 --fix-hints
    deact figures --figure 12 --jobs 4
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.config.presets import default_config
from repro.core.architectures import ARCHITECTURES
from repro.errors import ConfigError
from repro.workloads.catalog import benchmark_names

__all__ = ["main"]


def _add_trace_args(parser: argparse.ArgumentParser,
                    benchmark_required: bool = True) -> None:
    parser.add_argument("--benchmark", required=benchmark_required,
                        choices=benchmark_names())
    parser.add_argument("--events", type=int, default=100_000,
                        help="trace events (default 100000)")
    parser.add_argument("--footprint-scale", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nodes", type=int, default=1)


def _settings(args):
    from repro.experiments.runner import RunSettings

    return RunSettings(n_events=args.events,
                       footprint_scale=args.footprint_scale,
                       seed=args.seed)


def _default_jobs() -> int:
    """``--jobs`` default: ``REPRO_SWEEP_JOBS`` when set and sane.

    The same env var the benches honor (``benchmarks/conftest.py``),
    so one exported setting parallelizes both worlds.  Garbage values
    fall back to serial rather than breaking every invocation.
    """
    raw = os.environ.get("REPRO_SWEEP_JOBS", "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def _add_sweep_spec_args(parser: argparse.ArgumentParser) -> None:
    """The flags that define a sweep spec + trace-scale settings.

    Shared verbatim by ``deact sweep`` and ``deact cache
    validate``/``status`` so a cache can be validated with exactly the
    flags that produced it.
    """
    parser.add_argument("--benchmark", action="append", default=[],
                        choices=benchmark_names(),
                        help="benchmark (repeatable; default all)")
    parser.add_argument("--arch", action="append", default=[],
                        choices=sorted(ARCHITECTURES),
                        help="architecture (repeatable; default all)")
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=V1[,V2,...]",
                        help="config axis to sweep (repeatable); "
                             "e.g. stu-entries=256,1024")
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--footprint-scale", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nodes", type=int, default=1)


def _spec_from_args(args, parser: argparse.ArgumentParser):
    """Build (SweepSpec, RunSettings) from :func:`_add_sweep_spec_args`
    flags, converting config errors to argparse errors."""
    from repro.experiments.sweep import SweepSpec

    axes = _parse_axes(parser, args.axis)
    settings = _settings(args)
    try:
        spec = SweepSpec.build(
            benchmarks=args.benchmark or None,
            architectures=args.arch or None,
            axes=axes or None,
            base_config=default_config(nodes=args.nodes))
    except ConfigError as exc:
        parser.error(str(exc))
    return spec, settings


def _cmd_run(args) -> int:
    # All commands (run / compare / sweep / figures) execute through
    # the harness runner, so their numbers agree for equal settings.
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(_settings(args))
    result = runner.run(args.benchmark, args.arch,
                        default_config(nodes=args.nodes))
    print(f"benchmark           : {result.benchmark}")
    print(f"architecture        : {result.architecture}")
    print(f"IPC                 : {result.ipc:.4f}")
    print(f"runtime             : {result.runtime_ns / 1e6:.3f} ms")
    print(f"measured MPKI       : {result.mpki:.1f}")
    print(f"AT share at FAM     : {100 * result.fam_at_fraction:.2f} %")
    print(f"translation hit rate: {100 * result.translation_hit_rate:.2f} %")
    print(f"ACM hit rate        : {100 * result.acm_hit_rate:.2f} %")
    if result.telemetry:
        telemetry = result.telemetry
        print(f"harness wall time   : {telemetry['wall_s'] * 1e3:.1f} ms "
              f"({telemetry['events_per_sec']:,.0f} events/s, "
              f"{telemetry.get('probes_per_event', 0.0):.2f} "
              f"tag probes/event)")
    return 0


def _cmd_compare(args) -> int:
    # One code path for any worker count: route through the harness
    # runner so ``--jobs N`` output is bit-identical to ``--jobs 1``.
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(_settings(args), jobs=args.jobs)
    matrix = runner.run_matrix([args.benchmark], list(ARCHITECTURES),
                               default_config(nodes=args.nodes))
    results = {arch: matrix[(args.benchmark, arch)]
               for arch in ARCHITECTURES}
    efam = results["e-fam"]
    print(f"{args.benchmark}: performance normalized to E-FAM")
    for arch, result in results.items():
        norm = result.normalized_performance(efam)
        speedup = result.speedup_over(results["i-fam"])
        print(f"  {arch:<8} norm={norm:6.3f}  vs I-FAM={speedup:6.3f}x  "
              f"AT@FAM={100 * result.fam_at_fraction:5.1f}%")
    return 0


def _parse_axes(parser: argparse.ArgumentParser, specs) -> dict:
    """``--axis name=v1,v2`` arguments into an axes mapping."""
    axes = {}
    for spec in specs or []:
        name, sep, values = spec.partition("=")
        if not sep or not values:
            parser.error(f"--axis expects NAME=V1[,V2,...], got {spec!r}")
        parsed = [v for v in values.split(",") if v]
        if not parsed:
            parser.error(f"--axis {name!r} lists no values")
        # Repeating an axis accumulates values: --axis stu-entries=256
        # --axis stu-entries=512 sweeps both.
        axes.setdefault(name, []).extend(parsed)
    return axes


def _cmd_sweep(args, parser: argparse.ArgumentParser) -> int:
    from repro.experiments import faults
    from repro.experiments.shardfile import manifest_path, shard_cache_path
    from repro.experiments.supervisor import SupervisorConfig
    from repro.experiments.sweep import (
        SweepEngine,
        SweepProgress,
        parse_shard,
    )

    spec, settings = _spec_from_args(args, parser)
    shard = None
    cache_path = args.cache
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ConfigError as exc:
            parser.error(str(exc))
        if not cache_path:
            parser.error("--shard requires --cache: each shard writes a "
                         "per-shard cache for 'deact cache merge'")
        cache_path = shard_cache_path(cache_path, *shard)
    from repro.errors import CacheError, SweepFailure, SweepInterrupted

    try:
        plan = faults.load_fault_plan(args.inject_faults) \
            if args.inject_faults else faults.plan_from_env()
    except ConfigError as exc:
        parser.error(str(exc))
    if plan is not None:
        # Activating (not just passing the plan down) also arms the
        # torn-write hook in *this* process, which performs the cache
        # merges the write faults target.
        faults.activate(plan)
    supervisor = SupervisorConfig(job_timeout_s=args.job_timeout,
                                  retries=args.retries,
                                  fail_fast=args.fail_fast)
    try:
        engine = SweepEngine(settings, cache_path=cache_path,
                             jobs=args.jobs, progress=SweepProgress())
        results = engine.run(spec, shard=shard, supervisor=supervisor,
                             fault_plan=plan,
                             checkpoint_every=args.checkpoint_every or None)
    except ConfigError as exc:
        parser.error(str(exc))
    except SweepInterrupted as exc:
        # Completed cells were flushed to the cache by the engine; a
        # re-run recalls them and finishes the rest.
        print(f"interrupted: {exc} (completed results saved"
              f"{' to ' + cache_path if cache_path else ''}; re-run to "
              f"resume)", file=sys.stderr)
        return 130
    except SweepFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CacheError as exc:
        # E.g. the end-of-sweep merge timed out on a wedged cache
        # lock: report cleanly instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if shard is not None:
        print(f"shard {shard[0]}/{shard[1]}: {len(results)} of "
              f"{len(spec)} cells, jobs={args.jobs}")
        print(f"shard cache   : {cache_path}")
        print(f"shard manifest: {manifest_path(cache_path)}")
    else:
        print(f"{len(results)} runs "
              f"({len(spec.benchmarks)} benchmarks x "
              f"{len(spec.architectures)} architectures x "
              f"{len(spec.variants)} variants), jobs={args.jobs}")
    header = (f"{'benchmark':<10} {'arch':<8} {'variant':<28} "
              f"{'IPC':>8} {'runtime_ms':>11} {'AT@FAM%':>8}")
    print(header)
    print("-" * len(header))
    for (bench, arch, variant), result in results.items():
        print(f"{bench:<10} {arch:<8} {variant:<28} "
              f"{result.ipc:>8.4f} {result.runtime_ns / 1e6:>11.3f} "
              f"{100 * result.fam_at_fraction:>8.2f}")
    if engine.failures:
        # Quarantined jobs under the default keep-going policy: the
        # completed cells above are real and cached, but the sweep as
        # a whole is incomplete — exit nonzero so scripts notice.
        print(engine.failures.render(), file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args, parser: argparse.ArgumentParser) -> int:
    from repro.errors import CacheError
    from repro.experiments import shardfile
    from repro.experiments.cachefile import load_cache

    if args.cache_command == "merge":
        try:
            merged, manifests, shard_list = shardfile.merge_shards(
                args.cache, args.shards or None, strict=not args.force)
        except CacheError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"merged {len(shard_list)} shard cache(s) into {args.cache} "
              f"({len(merged)} entries)")
        for path, manifest in sorted(manifests.items()):
            print(f"  {path}: shard {manifest.index}/{manifest.count}, "
                  f"{len(manifest.cell_keys)} cell key(s), host "
                  f"{manifest.hostname}, fingerprint "
                  f"{manifest.fingerprint[:12]}...")
        return 0

    # validate / status both score the cache against a spec rebuilt
    # from the same flags that drove the sweep.
    spec, settings = _spec_from_args(args, parser)
    if getattr(args, "repair", False):
        try:
            repair = shardfile.repair_cache(args.cache, spec, settings)
        except CacheError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(repair.render())
        print()
    try:
        report = shardfile.validate_cache(args.cache, spec, settings)
    except CacheError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.cache_command == "status":
        shards = shardfile.discover_shards(args.cache)
        covered = 100.0 * report.present_cells / report.expected_cells \
            if report.expected_cells else 100.0
        print(f"cache   : {args.cache}")
        print(f"coverage: {report.present_cells}/{report.expected_cells} "
              f"cells ({covered:.1f}%), {len(report.orphan_keys)} "
              f"orphan key(s)")
        print(f"shards  : {len(shards)} shard cache(s), "
              f"{len(report.manifest_fingerprints)} manifest(s)")
        for path in shards:
            print(f"  {path}: {len(load_cache(path))} entries")
        return 0
    print(report.render(strict=args.strict))
    return 0 if report.passes(strict=args.strict) else 1


def _cmd_bench(args, parser: argparse.ArgumentParser) -> int:
    if getattr(args, "bench_command", None) == "compare":
        return _cmd_bench_compare(args, parser)
    from repro.errors import BenchError
    from repro.experiments.bench import (
        HOT_BENCH,
        default_json_path,
        measure_core_loop,
        render_census,
    )
    from repro.experiments.runner import RunSettings
    from repro.experiments.trajectory import append_entry, describe_entry

    settings = RunSettings(n_events=args.events,
                           footprint_scale=args.footprint_scale,
                           seed=args.seed)
    benchmarks = args.benchmark or [HOT_BENCH, "hotspot", "lu",
                                    "bc"]
    architectures = args.arch or sorted(ARCHITECTURES)
    payload = measure_core_loop(settings, benchmarks, architectures,
                                repeats=args.repeats)
    print(render_census(payload))
    diverged = [row for row in payload["rows"]
                if not row["identical_to_first_tier"]]
    if diverged and not args.no_verify:
        # A diverged tier means a fast-but-wrong loop: its timings are
        # not a valid trajectory point, so nothing is appended.
        print(f"ERROR: {len(diverged)} cell(s) diverged from the "
              f"reference tier (see census above); not appending to "
              f"the trajectory (--no-verify records it anyway)",
              file=sys.stderr)
        return 1
    path = args.out or default_json_path()
    try:
        entry = append_entry(path, payload)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"appended entry to {path} ({describe_entry(entry)})")
    if diverged:
        print(f"WARNING: {len(diverged)} diverged cell(s) recorded "
              f"under --no-verify", file=sys.stderr)
    return 0


def _parse_tolerances(parser: argparse.ArgumentParser, specs) -> dict:
    """``--tolerance [tier=]fraction`` flags into a tier mapping."""
    tolerances = {}
    for spec in specs or []:
        tier, sep, value = spec.partition("=")
        if not sep:
            tier, value = "default", spec
        try:
            fraction = float(value)
        except ValueError:
            parser.error(f"--tolerance expects [TIER=]FRACTION, "
                         f"got {spec!r}")
        if not 0.0 <= fraction < 1.0:
            parser.error(f"--tolerance must be in [0, 1), got {fraction}")
        tolerances[tier] = fraction
    return tolerances


def _parse_batch_floors(parser: argparse.ArgumentParser, specs) -> dict:
    """``--require-batch-floor BENCH[=MIN]`` flags into a mapping."""
    floors = {}
    for spec in specs or []:
        benchmark, sep, value = spec.partition("=")
        minimum = 1.0
        if sep:
            try:
                minimum = float(value)
            except ValueError:
                parser.error(f"--require-batch-floor expects "
                             f"BENCH[=MIN], got {spec!r}")
        if not benchmark or minimum <= 0:
            parser.error(f"--require-batch-floor expects a benchmark "
                         f"and a positive floor, got {spec!r}")
        floors[benchmark] = minimum
    return floors


def _cmd_bench_compare(args, parser: argparse.ArgumentParser) -> int:
    from repro.errors import BenchError
    from repro.experiments.bench import default_json_path
    from repro.experiments.trajectory import (
        batch_floor_verdicts,
        compare_entries,
        latest_entry,
        load_trajectory,
        runner_pinned,
        select_comparable,
    )

    tolerances = _parse_tolerances(parser, args.tolerance)
    floors = _parse_batch_floors(parser, args.require_batch_floor)
    unpinned_tolerance = args.tolerance_unpinned
    if unpinned_tolerance is not None \
            and not 0.0 <= unpinned_tolerance < 1.0:
        parser.error(f"--tolerance-unpinned must be in [0, 1), "
                     f"got {unpinned_tolerance}")
    if unpinned_tolerance is not None and not args.against_baseline:
        parser.error("--tolerance-unpinned only applies with "
                     "--against-baseline (it keys off the baseline "
                     "trajectory's runner provenance)")
    if args.against_baseline and len(args.paths) != 1:
        parser.error("bench compare --against-baseline takes exactly one "
                     "candidate trajectory")
    if not args.against_baseline and len(args.paths) != 2:
        parser.error("bench compare takes BASELINE CANDIDATE (or one "
                     "candidate with --against-baseline)")
    pinned_note = None
    try:
        if args.against_baseline:
            candidate_path = args.paths[0]
            baseline_path = args.baseline or default_json_path()
            candidate = latest_entry(load_trajectory(candidate_path))
            if candidate is None:
                raise BenchError(f"{candidate_path} has no entries")
            baseline_trajectory = load_trajectory(baseline_path)
            baseline = select_comparable(baseline_trajectory,
                                         candidate, baseline_path)
            if unpinned_tolerance is not None:
                # Runner pinning: once this host has repeatable
                # same-regime history in the baseline trajectory, the
                # honest per-tier defaults gate; until then the loose
                # cross-host fallback applies.
                if runner_pinned(baseline_trajectory, candidate):
                    pinned_note = ("baseline runner-pinned (>=2 "
                                   "same-host entries): per-tier "
                                   "default tolerances apply")
                else:
                    tolerances.setdefault("default", unpinned_tolerance)
                    pinned_note = (f"baseline not runner-pinned on "
                                   f"this host: cross-host tolerance "
                                   f"{unpinned_tolerance} applies")
        else:
            baseline_path, candidate_path = args.paths
            baseline = latest_entry(load_trajectory(baseline_path))
            candidate = latest_entry(load_trajectory(candidate_path))
            if baseline is None:
                raise BenchError(f"{baseline_path} has no entries")
            if candidate is None:
                raise BenchError(f"{candidate_path} has no entries")
        report = compare_entries(baseline, candidate,
                                 tolerances=tolerances)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline : {baseline_path}")
    print(f"candidate: {candidate_path}")
    if pinned_note:
        print(pinned_note)
    print(report.render())
    floors_ok = True
    if floors:
        print("batch-over-fast floors (candidate, absolute):")
        for verdict in batch_floor_verdicts(candidate, floors):
            print(f"  {verdict.render()}")
            floors_ok = floors_ok and verdict.ok
    return 0 if report.ok and floors_ok else 1


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    from repro.config.presets import default_config
    from repro.core.system import FamSystem
    from repro.experiments.bench import HOT_BENCH, build_bench_traces
    from repro.experiments.runner import RunSettings

    settings = RunSettings(n_events=args.events,
                           footprint_scale=args.footprint_scale,
                           seed=args.seed)
    # Traces are built outside the profiled region: the subject is the
    # simulation hot path, not the NumPy trace generator.
    if args.benchmark == HOT_BENCH:
        traces = build_bench_traces(args.benchmark, settings)
        if args.nodes != 1:
            traces = traces * args.nodes
    else:
        from repro.experiments.runner import build_traces
        traces = build_traces(args.benchmark, args.nodes, settings)
    config = default_config(nodes=args.nodes)
    system = FamSystem(config, args.arch, seed=settings.seed * 31 + 5)
    segment_timing = args.mode != "reference" and not args.no_segments
    profiler = cProfile.Profile()
    profiler.enable()
    system.run(traces, benchmark=args.benchmark, mode=args.mode,
               segment_timing=segment_timing)
    profiler.disable()
    print(f"profile: {args.benchmark} on {args.arch} "
          f"({args.events} events, {args.mode} tier)")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if segment_timing and system.segment_stats is not None:
        # Per-segment-kind census: how the run-plan layer classified
        # the trace, and where the wall clock went — a miss-heavy
        # workload regressing shows up here as scalar-segment
        # dominance before any pstats spelunking.
        print("segment census (per kind, with run-length histograms):")
        print(system.segment_stats.render())
    return 0


def _cmd_check(args, parser: argparse.ArgumentParser) -> int:
    import json

    from repro.analysis import (
        default_baseline_path,
        get_rule,
        load_baseline,
        run_check,
        write_baseline,
    )
    from repro.errors import AnalysisError

    rules = None
    if args.rule:
        try:
            rules = [get_rule(rule_id) for rule_id in args.rule]
        except KeyError as exc:
            parser.error(str(exc.args[0]))

    baseline_path = args.baseline or default_baseline_path()
    try:
        if args.write_baseline:
            # Grandfather the *current* findings: run without any
            # suppression so the written file covers everything live.
            report = run_check(root=args.root, rules=rules)
            write_baseline(baseline_path, report.findings)
            print(f"wrote {len(report.findings)} suppression(s) to "
                  f"{baseline_path}")
            return 0
        baseline = load_baseline(baseline_path)
        report = run_check(root=args.root, rules=rules, baseline=baseline)
    except AnalysisError as exc:
        print(f"deact check: internal error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_table(fix_hints=args.fix_hints))
    return report.exit_code


def _cmd_figures(args, extra: Sequence[str]) -> int:
    from repro.experiments.__main__ import main as figures_main
    return figures_main(list(extra))


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # ``figures`` forwards everything after it verbatim; argparse's
    # REMAINDER chokes on leading flags inside a subparser, so split
    # before parsing.
    if argv and argv[0] == "figures":
        return _cmd_figures(None, argv[1:])

    parser = argparse.ArgumentParser(
        prog="deact",
        description="DeACT (HPCA 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one benchmark/architecture")
    _add_trace_args(run_parser)
    run_parser.add_argument("--arch", default="deact-n",
                            choices=sorted(ARCHITECTURES))

    compare_parser = sub.add_parser(
        "compare", help="run one benchmark on all architectures")
    _add_trace_args(compare_parser)
    compare_parser.add_argument("--jobs", type=int, default=1,
                                help="worker processes (default 1)")

    sweep_parser = sub.add_parser(
        "sweep", help="run a benchmark x architecture x axis cross "
                      "product on a worker pool")
    _add_sweep_spec_args(sweep_parser)
    sweep_parser.add_argument("--jobs", type=int, default=_default_jobs(),
                              help="worker processes (default "
                                   "$REPRO_SWEEP_JOBS or 1)")
    sweep_parser.add_argument("--cache", default=None,
                              help="JSON file memoizing run results "
                                   "(lock-safe across processes)")
    sweep_parser.add_argument("--shard", default=None, metavar="I/N",
                              help="run shard I of N (1-based) into a "
                                   "per-shard cache CACHE.shard-I-of-N"
                                   ".json plus manifest; requires "
                                   "--cache")
    sweep_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="wall-clock limit per job; a worker "
                                   "past it is killed and the job "
                                   "retried (default: unlimited)")
    sweep_parser.add_argument("--retries", type=int, default=2,
                              help="re-executions per failed job before "
                                   "quarantine (default 2)")
    sweep_parser.add_argument("--fail-fast", action="store_true",
                              help="abort the whole sweep on the first "
                                   "permanently failed job (default: "
                                   "keep going, report quarantined "
                                   "jobs, exit 1)")
    sweep_parser.add_argument("--checkpoint-every", type=int, default=25,
                              metavar="N",
                              help="merge completed results into "
                                   "--cache every N jobs so a killed "
                                   "sweep resumes from disk (default "
                                   "25; 0 disables)")
    sweep_parser.add_argument("--inject-faults", default=None,
                              metavar="PLAN",
                              help="chaos testing: a fault-plan JSON "
                                   "file (or inline JSON) making "
                                   "chosen jobs crash/hang/corrupt or "
                                   "tearing cache writes; also read "
                                   "from $REPRO_FAULT_PLAN")

    cache_parser = sub.add_parser(
        "cache", help="merge, validate, and inspect sharded result "
                      "caches")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    merge_parser = cache_sub.add_parser(
        "merge", help="merge shard caches into the canonical cache, "
                      "refusing conflicting payloads")
    merge_parser.add_argument("--cache", required=True,
                              help="canonical cache to merge into")
    merge_parser.add_argument("shards", nargs="*", metavar="SHARD",
                              help="shard cache files (default: discover "
                                   "CACHE.shard-*-of-*.json)")
    merge_parser.add_argument("--force", action="store_true",
                              help="demote merge conflicts, missing/"
                                   "unreadable manifests, fingerprint "
                                   "mismatches, and incomplete shards "
                                   "from errors to warnings (first "
                                   "payload wins)")
    validate_parser = cache_sub.add_parser(
        "validate", help="check a cache against a sweep spec: missing "
                         "cells, orphan keys, manifest fingerprints")
    validate_parser.add_argument("--cache", required=True)
    validate_parser.add_argument("--strict", action="store_true",
                                 help="also fail on keys outside the "
                                      "spec (orphans)")
    validate_parser.add_argument("--repair", action="store_true",
                                 help="quarantine corrupt/orphan cells "
                                      "to CACHE.quarantine.json, sweep "
                                      "dead .tmp files, flag "
                                      "manifestless shards, then "
                                      "re-validate")
    _add_sweep_spec_args(validate_parser)
    status_parser = cache_sub.add_parser(
        "status", help="coverage report for a cache against a sweep "
                       "spec")
    status_parser.add_argument("--cache", required=True)
    _add_sweep_spec_args(status_parser)

    # Literal mirrors of repro.core.system.EXECUTION_MODES and
    # repro.experiments.bench.HOT_BENCH: spelling them out keeps the
    # heavy experiment/bench stack un-imported for the other
    # subcommands (tests pin the CLI choices to the real constants).
    execution_modes = ("batch", "fast", "reference")
    hot_bench = "hot-loop"

    bench_parser = sub.add_parser(
        "bench", help="measure the reference/fast/batch execution "
                      "tiers and append to the BENCH_core_loop.json "
                      "trajectory; 'bench compare' diffs trajectories")
    bench_parser.set_defaults(bench_command=None)
    bench_parser.add_argument("--benchmark", action="append", default=[],
                              choices=[hot_bench] + benchmark_names(),
                              help=f"workload (repeatable; default "
                                   f"{hot_bench}, hotspot, lu, bc)")
    bench_parser.add_argument("--arch", action="append", default=[],
                              choices=sorted(ARCHITECTURES),
                              help="architecture (repeatable; default all)")
    bench_parser.add_argument("--events", type=int, default=8000)
    bench_parser.add_argument("--footprint-scale", type=float, default=0.06)
    bench_parser.add_argument("--seed", type=int, default=13)
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="best-of-N timing (default 3)")
    bench_parser.add_argument("--out", default=None,
                              help="trajectory JSON path (default "
                                   "BENCH_core_loop.json at the git "
                                   "toplevel, or $REPRO_BENCH_JSON)")
    bench_parser.add_argument("--no-verify", action="store_true",
                              help="append even when a tier diverges "
                                   "from the reference (default: "
                                   "refuse and exit non-zero)")
    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    bench_compare = bench_sub.add_parser(
        "compare", help="diff two trajectories per (benchmark, arch, "
                        "tier) cell and emit a regression verdict")
    bench_compare.add_argument("paths", nargs="+", metavar="TRAJECTORY",
                               help="BASELINE CANDIDATE files, or one "
                                    "candidate with --against-baseline")
    bench_compare.add_argument("--against-baseline", action="store_true",
                               help="compare the candidate's newest "
                                    "entry against the committed "
                                    "baseline trajectory")
    bench_compare.add_argument("--baseline", default=None,
                               help="baseline trajectory for "
                                    "--against-baseline (default "
                                    "BENCH_core_loop.json at the git "
                                    "toplevel, or $REPRO_BENCH_JSON)")
    bench_compare.add_argument("--tolerance", action="append", default=[],
                               metavar="[TIER=]FRACTION",
                               help="allowed fractional throughput loss "
                                    "before a cell regresses "
                                    "(repeatable; per-tier defaults "
                                    "reference=0.20 fast=0.25 "
                                    "batch=0.30)")
    bench_compare.add_argument("--tolerance-unpinned", type=float,
                               default=None, metavar="FRACTION",
                               help="with --against-baseline: fallback "
                                    "default tolerance applied only "
                                    "while the baseline lacks >=2 "
                                    "same-host entries for the "
                                    "candidate's regime; once "
                                    "runner-pinned, the per-tier "
                                    "defaults gate instead")
    bench_compare.add_argument("--require-batch-floor", action="append",
                               default=[], metavar="BENCH[=MIN]",
                               help="require the candidate's batch tier "
                                    "to be at least MIN times the fast "
                                    "tier on BENCH (repeatable; MIN "
                                    "defaults to 1.0)")

    profile_parser = sub.add_parser(
        "profile", help="cProfile one job and print the hottest "
                        "functions")
    profile_parser.add_argument("--benchmark", required=True,
                                choices=[hot_bench] + benchmark_names())
    profile_parser.add_argument("--arch", default="deact-n",
                                choices=sorted(ARCHITECTURES))
    profile_parser.add_argument("--events", type=int, default=20_000)
    profile_parser.add_argument("--footprint-scale", type=float,
                                default=0.06)
    profile_parser.add_argument("--seed", type=int, default=13)
    profile_parser.add_argument("--nodes", type=int, default=1)
    profile_parser.add_argument("--mode", default="batch",
                                choices=execution_modes,
                                help="execution tier to profile "
                                     "(default batch)")
    profile_parser.add_argument("--sort", default="cumulative",
                                help="pstats sort key (default "
                                     "cumulative)")
    profile_parser.add_argument("--limit", type=int, default=25,
                                help="rows to print (default 25)")
    profile_parser.add_argument("--no-segments", action="store_true",
                                help="skip the per-segment-kind census "
                                     "(and its per-segment timing "
                                     "overhead)")

    check_parser = sub.add_parser(
        "check", help="run the static invariant checker over src/repro")
    check_parser.add_argument("--json", action="store_true",
                              help="machine-readable report on stdout")
    check_parser.add_argument("--fix-hints", action="store_true",
                              help="append per-rule fix hints to the "
                                   "table")
    check_parser.add_argument("--rule", action="append", default=[],
                              metavar="ID",
                              help="run only this rule (repeatable)")
    check_parser.add_argument("--root", default=None, metavar="DIR",
                              help="package root to scan (default: the "
                                   "installed repro package)")
    check_parser.add_argument("--baseline", default=None, metavar="FILE",
                              help="suppression file (default: "
                                   "analysis-baseline.toml at the repo "
                                   "root)")
    check_parser.add_argument("--write-baseline", action="store_true",
                              help="grandfather all current findings "
                                   "into the baseline file and exit 0")

    sub.add_parser(
        "figures", help="regenerate paper figures (forwards arguments "
                        "to python -m repro.experiments)")

    args = parser.parse_args(argv)
    if hasattr(args, "jobs"):
        # The worker-count rule lives in one place
        # (runner.require_jobs); the CLI only translates its
        # ConfigError into the usual argparse exit.
        from repro.experiments.runner import require_jobs

        try:
            require_jobs(args.jobs, flag="--jobs")
        except ConfigError as exc:
            parser.error(str(exc))
    if getattr(args, "repeats", 1) < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")
    if getattr(args, "retries", 0) < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if getattr(args, "job_timeout", None) is not None \
            and args.job_timeout <= 0:
        parser.error(f"--job-timeout must be > 0, got {args.job_timeout}")
    if getattr(args, "checkpoint_every", 0) < 0:
        parser.error(f"--checkpoint-every must be >= 0, got "
                     f"{args.checkpoint_every}")
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "cache":
        return _cmd_cache(args, parser)
    if args.command == "bench":
        return _cmd_bench(args, parser)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "check":
        return _cmd_check(args, parser)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
