"""The ``deact`` command-line interface.

Six subcommands:

* ``deact run`` — run one benchmark on one architecture and print the
  headline metrics.
* ``deact compare`` — run a benchmark on every architecture and print
  a normalized comparison (a one-row Figure 12).
* ``deact sweep`` — expand a (benchmark × architecture × axis) cross
  product and run it on a worker pool, merging results into the
  shared JSON cache.
* ``deact bench`` — measure the three execution tiers (reference /
  scalar-fast / batch) and write the machine-readable perf trajectory
  (``BENCH_core_loop.json``).
* ``deact profile`` — cProfile one job and print the hottest
  functions (hot-path regression triage without ad-hoc scripts).
* ``deact figures`` — delegate to the experiment harness
  (``python -m repro.experiments``).

Examples::

    deact run --benchmark mcf --arch deact-n
    deact compare --benchmark canl --events 40000 --jobs 4
    deact sweep --benchmark mcf --benchmark canl --arch i-fam \\
        --arch deact-n --axis stu-entries=256,1024 --jobs 4
    deact bench --events 8000 --out BENCH_core_loop.json
    deact profile --benchmark lu --arch deact-n --mode batch --limit 15
    deact figures --figure 12 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.presets import default_config
from repro.core.architectures import ARCHITECTURES
from repro.errors import ConfigError
from repro.workloads.catalog import benchmark_names

__all__ = ["main"]


def _add_trace_args(parser: argparse.ArgumentParser,
                    benchmark_required: bool = True) -> None:
    parser.add_argument("--benchmark", required=benchmark_required,
                        choices=benchmark_names())
    parser.add_argument("--events", type=int, default=100_000,
                        help="trace events (default 100000)")
    parser.add_argument("--footprint-scale", type=float, default=0.12)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nodes", type=int, default=1)


def _settings(args):
    from repro.experiments.runner import RunSettings

    return RunSettings(n_events=args.events,
                       footprint_scale=args.footprint_scale,
                       seed=args.seed)


def _cmd_run(args) -> int:
    # All commands (run / compare / sweep / figures) execute through
    # the harness runner, so their numbers agree for equal settings.
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(_settings(args))
    result = runner.run(args.benchmark, args.arch,
                        default_config(nodes=args.nodes))
    print(f"benchmark           : {result.benchmark}")
    print(f"architecture        : {result.architecture}")
    print(f"IPC                 : {result.ipc:.4f}")
    print(f"runtime             : {result.runtime_ns / 1e6:.3f} ms")
    print(f"measured MPKI       : {result.mpki:.1f}")
    print(f"AT share at FAM     : {100 * result.fam_at_fraction:.2f} %")
    print(f"translation hit rate: {100 * result.translation_hit_rate:.2f} %")
    print(f"ACM hit rate        : {100 * result.acm_hit_rate:.2f} %")
    if result.telemetry:
        telemetry = result.telemetry
        print(f"harness wall time   : {telemetry['wall_s'] * 1e3:.1f} ms "
              f"({telemetry['events_per_sec']:,.0f} events/s, "
              f"{telemetry.get('probes_per_event', 0.0):.2f} "
              f"tag probes/event)")
    return 0


def _cmd_compare(args) -> int:
    # One code path for any worker count: route through the harness
    # runner so ``--jobs N`` output is bit-identical to ``--jobs 1``.
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(_settings(args), jobs=args.jobs)
    matrix = runner.run_matrix([args.benchmark], list(ARCHITECTURES),
                               default_config(nodes=args.nodes))
    results = {arch: matrix[(args.benchmark, arch)]
               for arch in ARCHITECTURES}
    efam = results["e-fam"]
    print(f"{args.benchmark}: performance normalized to E-FAM")
    for arch, result in results.items():
        norm = result.normalized_performance(efam)
        speedup = result.speedup_over(results["i-fam"])
        print(f"  {arch:<8} norm={norm:6.3f}  vs I-FAM={speedup:6.3f}x  "
              f"AT@FAM={100 * result.fam_at_fraction:5.1f}%")
    return 0


def _parse_axes(parser: argparse.ArgumentParser, specs) -> dict:
    """``--axis name=v1,v2`` arguments into an axes mapping."""
    axes = {}
    for spec in specs or []:
        name, sep, values = spec.partition("=")
        if not sep or not values:
            parser.error(f"--axis expects NAME=V1[,V2,...], got {spec!r}")
        parsed = [v for v in values.split(",") if v]
        if not parsed:
            parser.error(f"--axis {name!r} lists no values")
        # Repeating an axis accumulates values: --axis stu-entries=256
        # --axis stu-entries=512 sweeps both.
        axes.setdefault(name, []).extend(parsed)
    return axes


def _cmd_sweep(args, parser: argparse.ArgumentParser) -> int:
    from repro.experiments.sweep import SweepEngine, SweepProgress, SweepSpec

    axes = _parse_axes(parser, args.axis)
    settings = _settings(args)
    try:
        spec = SweepSpec.build(
            benchmarks=args.benchmark or None,
            architectures=args.arch or None,
            axes=axes or None,
            base_config=default_config(nodes=args.nodes))
        engine = SweepEngine(settings, cache_path=args.cache,
                             jobs=args.jobs, progress=SweepProgress())
        results = engine.run(spec)
    except ConfigError as exc:
        parser.error(str(exc))
    print(f"{len(results)} runs "
          f"({len(spec.benchmarks)} benchmarks x "
          f"{len(spec.architectures)} architectures x "
          f"{len(spec.variants)} variants), jobs={args.jobs}")
    header = (f"{'benchmark':<10} {'arch':<8} {'variant':<28} "
              f"{'IPC':>8} {'runtime_ms':>11} {'AT@FAM%':>8}")
    print(header)
    print("-" * len(header))
    for (bench, arch, variant), result in results.items():
        print(f"{bench:<10} {arch:<8} {variant:<28} "
              f"{result.ipc:>8.4f} {result.runtime_ns / 1e6:>11.3f} "
              f"{100 * result.fam_at_fraction:>8.2f}")
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments.bench import (
        HOT_BENCH,
        measure_core_loop,
        render_census,
        write_bench_json,
    )
    from repro.experiments.runner import RunSettings

    settings = RunSettings(n_events=args.events,
                           footprint_scale=args.footprint_scale,
                           seed=args.seed)
    benchmarks = args.benchmark or [HOT_BENCH, "lu", "bc"]
    architectures = args.arch or sorted(ARCHITECTURES)
    payload = measure_core_loop(settings, benchmarks, architectures,
                                repeats=args.repeats)
    print(render_census(payload))
    path = write_bench_json(payload, args.out)
    print(f"wrote {path}")
    if any(not row["identical_to_first_tier"] for row in payload["rows"]):
        print("ERROR: tier results diverged (see census above)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    from repro.config.presets import default_config
    from repro.core.system import FamSystem
    from repro.experiments.bench import HOT_BENCH, build_bench_traces
    from repro.experiments.runner import RunSettings

    settings = RunSettings(n_events=args.events,
                           footprint_scale=args.footprint_scale,
                           seed=args.seed)
    # Traces are built outside the profiled region: the subject is the
    # simulation hot path, not the NumPy trace generator.
    if args.benchmark == HOT_BENCH:
        traces = build_bench_traces(args.benchmark, settings)
        if args.nodes != 1:
            traces = traces * args.nodes
    else:
        from repro.experiments.runner import build_traces
        traces = build_traces(args.benchmark, args.nodes, settings)
    config = default_config(nodes=args.nodes)
    system = FamSystem(config, args.arch, seed=settings.seed * 31 + 5)
    profiler = cProfile.Profile()
    profiler.enable()
    system.run(traces, benchmark=args.benchmark, mode=args.mode)
    profiler.disable()
    print(f"profile: {args.benchmark} on {args.arch} "
          f"({args.events} events, {args.mode} tier)")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


def _cmd_figures(args, extra: Sequence[str]) -> int:
    from repro.experiments.__main__ import main as figures_main
    return figures_main(list(extra))


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # ``figures`` forwards everything after it verbatim; argparse's
    # REMAINDER chokes on leading flags inside a subparser, so split
    # before parsing.
    if argv and argv[0] == "figures":
        return _cmd_figures(None, argv[1:])

    parser = argparse.ArgumentParser(
        prog="deact",
        description="DeACT (HPCA 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one benchmark/architecture")
    _add_trace_args(run_parser)
    run_parser.add_argument("--arch", default="deact-n",
                            choices=sorted(ARCHITECTURES))

    compare_parser = sub.add_parser(
        "compare", help="run one benchmark on all architectures")
    _add_trace_args(compare_parser)
    compare_parser.add_argument("--jobs", type=int, default=1,
                                help="worker processes (default 1)")

    sweep_parser = sub.add_parser(
        "sweep", help="run a benchmark x architecture x axis cross "
                      "product on a worker pool")
    sweep_parser.add_argument("--benchmark", action="append", default=[],
                              choices=benchmark_names(),
                              help="benchmark (repeatable; default all)")
    sweep_parser.add_argument("--arch", action="append", default=[],
                              choices=sorted(ARCHITECTURES),
                              help="architecture (repeatable; default all)")
    sweep_parser.add_argument("--axis", action="append", default=[],
                              metavar="NAME=V1[,V2,...]",
                              help="config axis to sweep (repeatable); "
                                   "e.g. stu-entries=256,1024")
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes (default 1)")
    sweep_parser.add_argument("--events", type=int, default=100_000)
    sweep_parser.add_argument("--footprint-scale", type=float, default=0.12)
    sweep_parser.add_argument("--seed", type=int, default=7)
    sweep_parser.add_argument("--nodes", type=int, default=1)
    sweep_parser.add_argument("--cache", default=None,
                              help="JSON file memoizing run results "
                                   "(lock-safe across processes)")

    # Literal mirrors of repro.core.system.EXECUTION_MODES and
    # repro.experiments.bench.HOT_BENCH: spelling them out keeps the
    # heavy experiment/bench stack un-imported for the other
    # subcommands (tests pin the CLI choices to the real constants).
    execution_modes = ("batch", "fast", "reference")
    hot_bench = "hot-loop"

    bench_parser = sub.add_parser(
        "bench", help="measure the reference/fast/batch execution "
                      "tiers and write BENCH_core_loop.json")
    bench_parser.add_argument("--benchmark", action="append", default=[],
                              choices=[hot_bench] + benchmark_names(),
                              help=f"workload (repeatable; default "
                                   f"{hot_bench}, lu, bc)")
    bench_parser.add_argument("--arch", action="append", default=[],
                              choices=sorted(ARCHITECTURES),
                              help="architecture (repeatable; default all)")
    bench_parser.add_argument("--events", type=int, default=8000)
    bench_parser.add_argument("--footprint-scale", type=float, default=0.06)
    bench_parser.add_argument("--seed", type=int, default=13)
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="best-of-N timing (default 3)")
    bench_parser.add_argument("--out", default=None,
                              help="output JSON path (default "
                                   "BENCH_core_loop.json at the repo "
                                   "root, or $REPRO_BENCH_JSON)")

    profile_parser = sub.add_parser(
        "profile", help="cProfile one job and print the hottest "
                        "functions")
    profile_parser.add_argument("--benchmark", required=True,
                                choices=[hot_bench] + benchmark_names())
    profile_parser.add_argument("--arch", default="deact-n",
                                choices=sorted(ARCHITECTURES))
    profile_parser.add_argument("--events", type=int, default=20_000)
    profile_parser.add_argument("--footprint-scale", type=float,
                                default=0.06)
    profile_parser.add_argument("--seed", type=int, default=13)
    profile_parser.add_argument("--nodes", type=int, default=1)
    profile_parser.add_argument("--mode", default="batch",
                                choices=execution_modes,
                                help="execution tier to profile "
                                     "(default batch)")
    profile_parser.add_argument("--sort", default="cumulative",
                                help="pstats sort key (default "
                                     "cumulative)")
    profile_parser.add_argument("--limit", type=int, default=25,
                                help="rows to print (default 25)")

    sub.add_parser(
        "figures", help="regenerate paper figures (forwards arguments "
                        "to python -m repro.experiments)")

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if getattr(args, "repeats", 1) < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "profile":
        return _cmd_profile(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
