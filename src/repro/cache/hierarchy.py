"""The node's inclusive three-level data cache hierarchy (Table II).

The hierarchy is probed with *node physical* block addresses.  It
returns which level served the access and the accumulated on-chip
latency; on an LLC miss the caller sends the request down the memory
path (local DRAM or the FAM translation machinery).

Inclusivity is enforced the way the paper assumes ("L1, L2, and L3
caches are inclusive"): an L3 eviction back-invalidates the inner
levels.  Write-backs of dirty LLC victims are surfaced to the caller so
they generate real memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.config.system import CacheConfig
from repro.core.hotpath import hot_path

__all__ = ["CacheHierarchy", "HierarchyResult"]

_NO_WRITEBACKS: Tuple[int, ...] = ()


@dataclass
class HierarchyResult:
    """Outcome of one hierarchy access.

    Attributes
    ----------
    level:
        1, 2 or 3 for the level that hit; 0 when the access missed all
        levels and must go to memory.
    latency_ns:
        On-chip latency spent reaching the serving level (for a full
        miss, the latency of checking all three levels).
    writebacks:
        Block addresses of dirty LLC victims that must be written back
        to memory as a side effect of filling this access.
    """

    level: int
    latency_ns: float
    writebacks: Tuple[int, ...] = _NO_WRITEBACKS

    @property
    def hit(self) -> bool:
        return self.level != 0


class CacheHierarchy:
    """L1 -> L2 -> L3 inclusive lookup with LRU per level."""

    def __init__(self, l1: CacheConfig, l2: CacheConfig, l3: CacheConfig,
                 name: str = "node") -> None:
        self.block_bytes = l1.block_bytes
        self.block_shift = l1.block_bytes.bit_length() - 1
        self.configs = (l1, l2, l3)
        self.levels: List[SetAssociativeCache[bool]] = [
            SetAssociativeCache(f"{name}.{cfg.name}", cfg.n_sets,
                                cfg.associativity, cfg.replacement)
            for cfg in self.configs
        ]
        self._l1, self._l2, self._l3 = self.levels
        self.latencies = tuple(cfg.latency_ns for cfg in self.configs)
        self._lat1 = self.latencies[0]
        self._lat12 = self.latencies[0] + self.latencies[1]
        self._lat123 = sum(self.latencies)

    def block_address(self, addr: int) -> int:
        """Align ``addr`` down to its cache block."""
        return addr // self.block_bytes

    # ------------------------------------------------------------------
    def access(self, addr: int, write: bool = False) -> HierarchyResult:
        """Access ``addr``; fill on miss; report serving level.

        The returned latency is the sum of lookup latencies down to and
        including the serving level (or all levels on a full miss),
        which matches a serial-lookup hierarchy.  Boxed wrapper over
        :meth:`access_fast` for non-hot callers.
        """
        level, latency, writebacks = self.access_fast(
            addr >> self.block_shift, write)
        return HierarchyResult(level, latency, writebacks)

    def access_fast(self, block: int,
                    write: bool) -> Tuple[int, float, Tuple[int, ...]]:
        """Allocation-free probe of a pre-shifted block number.

        Returns ``(level, latency_ns, writebacks)`` with the same
        accounting as :meth:`access` but no result boxing — this is
        the per-event path (one call per trace event plus one per
        surviving page-walk step).  The L1 probe is inlined
        (``get_line``'s body) because most accesses end there.
        """
        l1 = self._l1
        mask = l1._mask
        lines = l1._sets[block & mask if mask >= 0 else block % l1.n_sets]
        line = lines.get(block)
        if line is not None:
            l1.hits += 1
            if write:
                line[1] = True
            if l1._promote_on_hit:
                lines.move_to_end(block)
            return 1, self._lat1, _NO_WRITEBACKS
        l1.misses += 1
        return self.access_after_l1_miss(block, write)

    @hot_path
    def access_after_l1_miss(
            self, block: int,
            write: bool) -> Tuple[int, float, Tuple[int, ...]]:
        """:meth:`access_fast` continuation for callers that probed
        (and counted) L1 themselves — the fully inlined single-node
        loop.  L2 onward is accounted here identically."""
        if self._l2.get_line(block, write) is not None:
            self._l1.fill_line(block, True, write)
            return 2, self._lat12, _NO_WRITEBACKS
        if self._l3.get_line(block, write) is not None:
            self._l2.fill_line(block, True, write)
            self._l1.fill_line(block, True, write)
            return 3, self._lat123, _NO_WRITEBACKS
        return 0, self._lat123, self._fill_all(block, write)

    def _fill_all(self, block: int, write: bool) -> Tuple[int, ...]:
        """Fill every level after a full miss; collect LLC write-backs
        and enforce inclusivity on L3 evictions."""
        writebacks: Tuple[int, ...] = _NO_WRITEBACKS
        l3_evicted = self._l3.fill_line(block, True, write)
        if l3_evicted is not None:
            evicted = l3_evicted[0]
            # Inclusive hierarchy: anything leaving L3 leaves L1/L2 too.
            self._l1.invalidate(evicted)
            self._l2.invalidate(evicted)
            if l3_evicted[2]:
                writebacks = (evicted * self.block_bytes,)
        l2_evicted = self._l2.fill_line(block, True, write)
        if l2_evicted is not None and l2_evicted[2]:
            # Dirty inner victim is absorbed by the next level (it is
            # still resident there under inclusion), not written back.
            self._l3.fill_line(l2_evicted[0], True, True)
        l1_evicted = self._l1.fill_line(block, True, write)
        if l1_evicted is not None and l1_evicted[2]:
            self._l2.fill_line(l1_evicted[0], True, True)
        return writebacks

    def l1_hit_run(self, n_hits: int, blocks_by_last_touch,
                   written_blocks) -> None:
        """Batch-apply a run of ``n_hits`` L1 data-cache hits.

        The batch tier calls this only after proving every event in
        the run hits L1 (membership is invariant during a run: hits
        never fill or evict, so a block resident at the run's start
        stays resident throughout).  Effects replayed:

        * hit count and recency via
          :meth:`~repro.cache.cache.SetAssociativeCache.touch_run`
          (LRU: one promotion per distinct block in last-occurrence
          order; FIFO/random: hits never reorder — see that method's
          per-policy argument);
        * dirty bits for ``written_blocks`` (each distinct block
          written at least once in the run): scalar write hits do the
          idempotent ``line[1] = True``, so order and multiplicity
          within the run are immaterial.

        L2/L3 are untouched, exactly as in the scalar path — an L1
        hit never probes an outer level.
        """
        l1 = self._l1
        l1.touch_run(n_hits, blocks_by_last_touch)
        for block in written_blocks:
            l1._set_for(block)[block][1] = True

    # ------------------------------------------------------------------
    def contains(self, addr: int) -> Optional[int]:
        """Innermost level holding ``addr`` (1-based), or ``None``."""
        block = addr // self.block_bytes
        for index, cache in enumerate(self.levels):
            if block in cache:
                return index + 1
        return None

    @property
    def llc(self) -> SetAssociativeCache[bool]:
        return self._l3

    @property
    def miss_latency_ns(self) -> float:
        """On-chip latency of missing all three levels."""
        return self._lat123

    def llc_miss_count(self) -> int:
        return self._l3.misses

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.reset_stats()
