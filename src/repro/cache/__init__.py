"""Set-associative caches and the node's three-level data hierarchy.

* :mod:`repro.cache.replacement` — LRU / FIFO / seeded-random victim
  selection policies.
* :mod:`repro.cache.cache` — a generic set-associative tag store used
  for data caches, TLBs, PTW caches, and the STU cache organizations.
* :mod:`repro.cache.hierarchy` — the inclusive L1/L2/L3 stack of
  Table II, returning the level that served each access and the on-chip
  latency incurred.
"""

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "SetAssociativeCache",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyResult",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]
