"""Victim-selection policies for set-associative structures.

Policies are stateless with respect to cache contents: the cache hands
them the per-set metadata they maintain (an ordered list of way indices)
and asks for a victim.  This keeps one policy object shareable across
all sets of a cache.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]


class ReplacementPolicy(ABC):
    """Interface: maintain a recency list per set, pick victims from it.

    The cache stores, per set, a list of way indices ordered from
    least-recently-used (front) to most-recently-used (back); the policy
    decides how that order evolves and which way to evict.
    """

    name: str = "abstract"

    @abstractmethod
    def on_access(self, order: List[int], way: int) -> None:
        """Update ``order`` after a hit or fill touches ``way``."""

    @abstractmethod
    def select_victim(self, order: List[int]) -> int:
        """Return the way index to evict (does not modify ``order``)."""

    def on_fill(self, order: List[int], way: int) -> None:
        """Update ``order`` after ``way`` is filled with a new block.

        Defaults to the same treatment as an access.
        """
        self.on_access(order, way)


class LruPolicy(ReplacementPolicy):
    """Least-recently-used (the paper's policy for all node caches)."""

    name = "lru"

    def on_access(self, order: List[int], way: int) -> None:
        try:
            order.remove(way)
        except ValueError:
            pass
        order.append(way)

    def select_victim(self, order: List[int]) -> int:
        return order[0]


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: insertion order only, hits do not promote."""

    name = "fifo"

    def on_access(self, order: List[int], way: int) -> None:
        # Hits do not change FIFO order.
        if way not in order:
            order.append(way)

    def on_fill(self, order: List[int], way: int) -> None:
        try:
            order.remove(way)
        except ValueError:
            pass
        order.append(way)

    def select_victim(self, order: List[int]) -> int:
        return order[0]


class RandomPolicy(ReplacementPolicy):
    """Seeded random victim selection.

    The paper's in-DRAM FAM translation cache replaces a random entry of
    the fetched row (Section III-C, "we randomly selected one of the
    four entries to replace"); determinism comes from the seeded RNG.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_access(self, order: List[int], way: int) -> None:
        if way not in order:
            order.append(way)

    def select_victim(self, order: List[int]) -> int:
        return order[self._rng.randrange(len(order))]


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by configuration name."""
    if name == "lru":
        return LruPolicy()
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        return RandomPolicy(seed)
    raise ValueError(f"unknown replacement policy {name!r}")
