"""Exception hierarchy for the DeACT reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from simulated
protocol-level faults (which model real hardware/firmware conditions such
as access-control violations).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "AllocationError",
    "TranslationFault",
    "AccessViolationError",
    "ProtocolError",
    "TraceError",
    "CacheError",
    "CacheLockTimeout",
    "CacheMergeConflict",
    "FaultInjected",
    "SweepFailure",
    "SweepInterrupted",
    "BenchError",
    "BenchTrajectoryError",
    "BenchSettingsMismatch",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A system configuration is structurally invalid or inconsistent.

    Raised eagerly at configuration-validation time (not mid-simulation)
    so that a bad parameter sweep fails before burning simulation time.
    """


class AllocationError(ReproError):
    """The memory broker or a node allocator ran out of frames.

    This models a real out-of-memory condition in the FAM pool or in the
    node-local DRAM zone; it is not an internal bug.
    """


class TranslationFault(ReproError):
    """An address could not be translated.

    Models a page fault that the simulated OS cannot satisfy: e.g. a node
    physical address with no entry in the system-level (FAM) page table.
    """


class AccessViolationError(ReproError):
    """Access-control verification rejected a FAM access.

    Raised by the STU verification unit when a node presents a FAM
    address whose access-control metadata names a different owner or
    denies the requested permission.  In hardware this would be a fatal
    bus error / machine-check reported to the memory broker.
    """

    def __init__(self, message: str, node_id: int | None = None,
                 fam_addr: int | None = None) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.fam_addr = fam_addr


class ProtocolError(ReproError):
    """A component received a request that violates the fabric protocol.

    Examples: a verified (``V=1``) packet arriving at a unit that cannot
    verify, or a response for an unknown outstanding mapping entry.
    """


class TraceError(ReproError):
    """A workload trace is malformed or a generator was misconfigured."""


class CacheError(ReproError):
    """The on-disk result cache could not be read, locked, or merged."""


class CacheLockTimeout(CacheError):
    """Timed out waiting for a cache lock held by a live process.

    Raised instead of breaking the lock: a live holder past the
    deadline means contention (or a very slow writer), not a crash, and
    stealing the lock would let two writers race the same cache file.
    """


class CacheMergeConflict(CacheError):
    """A cache merge found one run key bound to different payloads.

    Two runs of the same job must serialize identically (telemetry
    aside); a conflict therefore signals nondeterminism, schema drift
    between hosts, or a mislabeled shard — never a condition to paper
    over with a silent overwrite.
    """

    def __init__(self, message: str, keys: tuple = ()) -> None:
        super().__init__(message)
        self.keys = tuple(keys)


class FaultInjected(ReproError):
    """A deterministic injected fault fired (chaos testing, not a bug).

    Raised by :mod:`repro.experiments.faults` when an active fault plan
    selects a job attempt.  The supervised pool treats it exactly like
    any worker exception — retry, then quarantine — which is the point:
    chaos runs exercise the production failure paths, not special ones.
    """


class SweepFailure(ReproError):
    """One or more sweep jobs failed permanently after retries.

    Carries the supervisor's structured ``FailureReport`` plus every
    payload completed before the abort (``payloads``, keyed by job
    index), so a fail-fast caller can still salvage finished cells to
    the cache instead of losing the whole batch.
    """

    def __init__(self, message: str, report: object = None,
                 payloads: dict | None = None) -> None:
        super().__init__(message)
        self.report = report
        self.payloads = dict(payloads or {})


class SweepInterrupted(ReproError):
    """A sweep was interrupted (Ctrl-C / SIGTERM) before completing.

    The supervisor terminates its workers, then raises this carrying
    every completed payload (``payloads``, keyed by job index) so the
    engine can flush finished work to the on-disk cache before the
    interrupt propagates — an interrupted sweep must lose at most the
    in-flight jobs, never the completed batch.
    """

    def __init__(self, message: str, payloads: dict | None = None) -> None:
        super().__init__(message)
        self.payloads = dict(payloads or {})


class BenchError(ReproError):
    """The perf-trajectory machinery could not do what was asked."""


class BenchTrajectoryError(BenchError):
    """A bench trajectory file is unreadable or structurally invalid.

    Unlike the result cache (whose entries can always be recomputed),
    the committed trajectory is an irreplaceable historical record —
    a corrupt file is an error to surface, never something to
    silently treat as empty and then overwrite on append.
    """


class BenchSettingsMismatch(BenchError):
    """Two bench entries were measured under different settings.

    Comparing them would be meaningless: e.g. the hot-loop workload
    halves its footprint below 8000 events, so events/s across
    different ``--events`` values measure different regimes, not a
    regression.  The compare path refuses rather than reporting a
    bogus verdict.
    """


class AnalysisError(ReproError):
    """The static checker (``deact check``) could not run.

    An *internal* failure — an unreadable source tree, a syntactically
    invalid module, a corrupt baseline file — as opposed to findings,
    which are the checker's normal output.  The CLI maps this to exit
    code 2 so CI can tell "the gate failed" from "the gate found
    violations" (exit 1).
    """

