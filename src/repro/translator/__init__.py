"""The node-side FAM translator (Section III-C, Figures 6 and 7).

DeACT moves system-level translation *into* the node: a FAM-translator
unit in the memory controller consults a large FAM translation cache
resident in local DRAM (1 MB, four-way, four 104-bit entries per 64 B
row) and rewrites node physical addresses into FAM addresses before
they leave the node.  Because the node is untrusted, these cached
translations are *unverified* — the STU still checks access control on
every FAM access.

* :mod:`repro.translator.translation_cache` — the in-DRAM cache
  contents and geometry.
* :mod:`repro.translator.outstanding` — the outstanding-mapping list
  that converts FAM-addressed responses back to node addresses.
* :mod:`repro.translator.fam_translator` — the unit itself with its
  DRAM-access timing.
"""

from repro.translator.fam_translator import FamTranslator, TranslatorLookup
from repro.translator.outstanding import OutstandingMappingList
from repro.translator.translation_cache import TranslationCache

__all__ = [
    "TranslationCache",
    "OutstandingMappingList",
    "FamTranslator",
    "TranslatorLookup",
]
