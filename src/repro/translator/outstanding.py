"""The outstanding mapping list (Figure 7, element c).

FAM responses carry FAM addresses, but the node's caches and core only
understand node addresses.  For every request expecting a response, the
FAM translator records ``fam_addr -> node_addr`` here and uses the
entry to re-address the response.  In I-FAM this list lives in the STU;
DeACT moves it into the node because the STU no longer understands node
addresses.

Capacity matches the outstanding-request bound (128 in Table II);
overflow indicates a protocol bug upstream and is reported loudly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ProtocolError

__all__ = ["OutstandingMappingList"]


class OutstandingMappingList:
    """Bounded ``request_id -> (fam_addr, node_addr)`` tracking."""

    def __init__(self, capacity: int = 128,
                 name: str = "outstanding") -> None:
        self.capacity = capacity
        self.name = name
        self._entries: Dict[int, Tuple[int, int]] = {}
        self.peak_occupancy = 0
        self.registered = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def register(self, request_id: int, fam_addr: int,
                 node_addr: int) -> None:
        """Record a request awaiting a FAM response.

        Raises
        ------
        ProtocolError
            On overflow or duplicate ids — both mean the issue logic
            upstream stopped respecting the outstanding bound.
        """
        if self.is_full:
            raise ProtocolError(
                f"{self.name}: overflow beyond {self.capacity} entries")
        if request_id in self._entries:
            raise ProtocolError(
                f"{self.name}: duplicate request id {request_id}")
        self._entries[request_id] = (fam_addr, node_addr)
        self.registered += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def resolve(self, request_id: int) -> Tuple[int, int]:
        """Consume an entry when its response arrives; returns
        ``(fam_addr, node_addr)``."""
        entry = self._entries.pop(request_id, None)
        if entry is None:
            raise ProtocolError(
                f"{self.name}: response for unknown request {request_id}")
        return entry

    def node_address_of(self, request_id: int) -> int:
        """Peek at the node address without consuming the entry."""
        entry = self._entries.get(request_id)
        if entry is None:
            raise ProtocolError(
                f"{self.name}: unknown request {request_id}")
        return entry[1]
