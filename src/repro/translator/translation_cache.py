"""The in-DRAM FAM translation cache contents.

Geometry per Section III-C: a 64-byte DRAM row holds four mapping
entries of 104 bits each (52-bit node-page tag + 52-bit FAM page), so
the cache is naturally four-way set associative with the set selected
by ``node_page % n_sets``.  Replacement within a fetched row is random
— the paper rejects smarter policies because their status bits would
cost extra DRAM writes per FAM access.

This class models the *contents*; DRAM timing for lookups and updates
is charged by :class:`~repro.translator.fam_translator.FamTranslator`.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.config.system import TranslationCacheConfig
from repro.sim.stats import Stats

__all__ = ["TranslationCache"]


class TranslationCache:
    """Node-page -> FAM-page mappings resident in local DRAM."""

    def __init__(self, config: TranslationCacheConfig,
                 name: str = "tcache", seed: int = 0) -> None:
        self.config = config
        self.name = name
        self._cache: SetAssociativeCache[int] = SetAssociativeCache(
            name, config.n_sets, config.associativity,
            replacement=config.replacement, seed=seed)
        self.stats = Stats(name)
        self._hits = 0
        self._misses = 0

    @property
    def n_sets(self) -> int:
        return self.config.n_sets

    def set_index(self, node_page: int) -> int:
        """Set (DRAM row) holding ``node_page``'s mapping, obtained by
        'performing a modulus operation on node page number with the
        number of FAM translation cache sets'."""
        return node_page % self.config.n_sets

    def row_offset_bytes(self, node_page: int) -> int:
        """Byte offset of the set's 64 B row inside the cache region."""
        return self.set_index(node_page) * \
            (self.config.entry_bytes * self.config.associativity)

    # ------------------------------------------------------------------
    def lookup(self, node_page: int) -> Optional[int]:
        """Probe for a mapping; the four tags of the fetched row are
        compared concurrently (one cycle of comparators, Figure 7b)."""
        line = self._cache.get_line(node_page)
        if line is not None:
            self._hits += 1
            return line[0]
        self._misses += 1
        return None

    def install(self, node_page: int, fam_page: int) -> None:
        """Write a mapping into its row (random victim within the
        row's four entries)."""
        self._cache.fill_line(node_page, fam_page)
        self.stats.incr("installs")

    def invalidate(self, node_page: int) -> bool:
        """Shoot down one mapping (job migration, Section VI)."""
        dropped = self._cache.invalidate(node_page)
        if dropped:
            self.stats.incr("invalidations")
        return dropped

    def invalidate_all(self) -> int:
        """Full shootdown; returns the number of dropped mappings."""
        dropped = self._cache.invalidate_where(lambda key, value: True)
        self.stats.incr("invalidations", dropped)
        return dropped

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Figure 10's DeACT curve for this node."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    @property
    def probes(self) -> int:
        """Total tag probes (telemetry)."""
        return self._hits + self._misses

    def __len__(self) -> int:
        return len(self._cache)
