"""The FAM translator unit in the node's memory controller.

Responsibilities (Section III-C): fetch a translation row from the
in-DRAM FAM translation cache for every FAM-bound request, match tags,
rewrite hits to FAM addresses (setting the ``V`` flag), forward misses
to the STU unverified, track outstanding mappings so responses can be
re-addressed, and update the cache when mapping responses arrive
(a 64 B read-modify-write of the row).

The translation cache occupies the top of local DRAM; every lookup is
a genuine DRAM access — the cost the paper accepts in exchange for the
cache's capacity ("the local memory is accessed for every FAM access
for the translation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config.system import TranslationCacheConfig
from repro.mem.device import DramDevice
from repro.mem.request import RequestKind
from repro.sim.stats import Stats
from repro.translator.outstanding import OutstandingMappingList
from repro.translator.translation_cache import TranslationCache

__all__ = ["FamTranslator", "TranslatorLookup"]

#: One-cycle concurrent tag match (four comparators + mux, Figure 7b).
_TAG_MATCH_NS = 0.5


@dataclass
class TranslatorLookup:
    """Outcome of a FAM-translator lookup for one FAM-bound request.

    ``fam_page`` is ``None`` on a miss — the caller must forward the
    request to the STU with ``V=0`` for a system-page-table walk.
    """

    node_page: int
    fam_page: Optional[int]
    completion_ns: float

    @property
    def hit(self) -> bool:
        return self.fam_page is not None


class FamTranslator:
    """DeACT's node-resident (but unverified) system translation."""

    def __init__(self, config: TranslationCacheConfig, dram: DramDevice,
                 region_base: int, page_bytes: int = 4096,
                 outstanding_capacity: int = 128,
                 name: str = "fam_translator", seed: int = 0) -> None:
        self.config = config
        self.dram = dram
        self.region_base = region_base
        self.page_bytes = page_bytes
        self.name = name
        self.cache = TranslationCache(config, name=f"{name}.tcache",
                                      seed=seed)
        # Row-address arithmetic memoized off the per-access path.
        self._n_rows = config.n_sets
        self._row_bytes = config.entry_bytes * config.associativity
        self.outstanding = OutstandingMappingList(
            outstanding_capacity, name=f"{name}.outstanding")
        self.stats = Stats(name)
        # Counter dict hoisted off the per-lookup path.
        self._stat_counters = self.stats._counters

    # ------------------------------------------------------------------
    def row_address(self, node_page: int) -> int:
        """DRAM address of the 64 B row holding ``node_page``'s set."""
        return self.region_base + self.cache.row_offset_bytes(node_page)

    # ------------------------------------------------------------------
    def lookup_fast(self, node_page: int,
                    now: float) -> Tuple[Optional[int], float]:
        """Allocation-free lookup: ``(fam_page_or_None, completion_ns)``.

        Same DRAM row fetch, tag match and accounting as
        :meth:`lookup`, without the :class:`TranslatorLookup` box —
        this runs once per FAM-bound request on the hot path.
        """
        row = self.region_base + (node_page % self._n_rows) * self._row_bytes
        served = self.dram.access(row, now, is_write=False,
                                  kind=RequestKind.NODE_PTW)
        t = served + _TAG_MATCH_NS
        fam_page = self.cache.lookup(node_page)
        if fam_page is None:
            self._stat_counters["misses"] += 1.0
        else:
            self._stat_counters["hits"] += 1.0
        return fam_page, t

    def lookup(self, node_page: int, now: float) -> TranslatorLookup:
        """Translate ``node_page``: one DRAM row fetch + tag match."""
        fam_page, t = self.lookup_fast(node_page, now)
        return TranslatorLookup(node_page=node_page, fam_page=fam_page,
                                completion_ns=t)

    def install(self, node_page: int, fam_page: int, now: float) -> float:
        """Apply a mapping response: read-modify-write of the row.

        Returns the completion time of the write-back; callers may
        treat it as off the critical path (the pending request was
        already forwarded by the STU), but the DRAM bank time is real
        and contends with demand traffic.
        """
        row = self.row_address(node_page)
        read_done = self.dram.access(row, now, is_write=False,
                                     kind=RequestKind.NODE_PTW)
        write_done = self.dram.access(row, read_done, is_write=True,
                                      kind=RequestKind.NODE_PTW)
        self.cache.install(node_page, fam_page)
        self.stats.incr("updates")
        return write_done

    # ------------------------------------------------------------------
    def register_response_mapping(self, request_id: int, fam_addr: int,
                                  node_addr: int) -> None:
        """Track a response-expecting request (Figure 7c)."""
        self.outstanding.register(request_id, fam_addr, node_addr)

    def readdress_response(self, request_id: int) -> int:
        """Convert a FAM-addressed response back to its node address."""
        _fam_addr, node_addr = self.outstanding.resolve(request_id)
        return node_addr

    # ------------------------------------------------------------------
    def shootdown(self, node_page: int, now: float) -> float:
        """Invalidate one mapping (job migration): a DRAM row write."""
        self.cache.invalidate(node_page)
        self.stats.incr("shootdowns")
        return self.dram.access(self.row_address(node_page), now,
                                is_write=True, kind=RequestKind.NODE_PTW)

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate
