"""Shared-page bitmaps.

Sharing is tracked at 1 GB granularity (Section III-A): each 1 GB
physical region owns a 64 Kbit bitmap in the FAM metadata area.  With
up to 16383 nodes that budget works out to 4 bits per node, which we
spend as ``valid | perm_code``: a valid bit plus the node's 2-bit
permission class.  This realizes the paper's "mixed access permissions
for nodes sharing a page" (some nodes read-write, others read-only).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.acm.metadata import Permission, perm_code_allows
from repro.errors import ConfigError

__all__ = ["SharedPageBitmap"]

_MAX_NODE_BITS = 14


class SharedPageBitmap:
    """Per-region record of which nodes may access a shared page.

    The simulator stores the logical content (node id -> perm code);
    the physical 8 KB placement is handled by
    :class:`~repro.acm.layout.FamLayout`.
    """

    def __init__(self, region: int) -> None:
        self.region = region
        self._grants: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._grants)

    def grant(self, node_id: int, perm_code: int) -> None:
        """Allow ``node_id`` to access the region's shared page."""
        if node_id < 0 or node_id >= (1 << _MAX_NODE_BITS) - 1:
            raise ConfigError(f"node id {node_id} out of bitmap range")
        if not 0 <= perm_code <= 3:
            raise ConfigError(f"perm code {perm_code} out of range")
        self._grants[node_id] = perm_code

    def revoke(self, node_id: int) -> bool:
        """Remove a node's grant; returns whether one existed."""
        return self._grants.pop(node_id, None) is not None

    def perm_code_of(self, node_id: int) -> Optional[int]:
        """The node's permission class, or ``None`` if not granted."""
        return self._grants.get(node_id)

    def allows(self, node_id: int, needed: Permission) -> bool:
        """Whether ``node_id`` holds every right in ``needed``."""
        code = self._grants.get(node_id)
        if code is None:
            return False
        return perm_code_allows(code, needed)

    def nodes(self) -> frozenset:
        """Ids of all granted nodes."""
        return frozenset(self._grants)
