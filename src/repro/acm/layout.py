"""FAM address-space layout: usable memory, metadata, bitmaps.

Figure 5 carves the global memory into three regions.  The key property
the STU relies on is that *the metadata address of any FAM page is
derivable from the FAM address alone*: for 16-bit entries, the 64-byte
block at ``MTAdd + page/32 * 64`` covers pages ``32k .. 32k+31``.  The
same derivation generalizes to 8- and 32-bit entries (128 and 16 pages
per block respectively).

The per-1GB shared-page bitmaps live in their own region: 64 Kbits
(8 KB) per 1 GB of FAM regardless of whether the region currently backs
a shared large page ("to enable easier indexing of metadata, we
dedicate a bitmap for each 1 GB physical region").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.system import BLOCK_BYTES, GIB, PAGE_BYTES
from repro.errors import ConfigError

__all__ = ["FamLayout"]

_BITMAP_BYTES_PER_REGION = 8 * 1024  # 64 Kbits
_REGION_BYTES = GIB


@dataclass(frozen=True)
class FamLayout:
    """Derived carve-out of a FAM module's physical address space.

    Layout (low to high): usable pages, then ACM entries, then shared
    bitmaps.  All boundaries are page aligned.
    """

    capacity_bytes: int
    acm_bits: int = 16
    page_bytes: int = PAGE_BYTES
    block_bytes: int = BLOCK_BYTES

    # Derived geometry, computed once (these sit on the verification
    # hot path; recomputing them per access dominated early profiles).
    total_pages: int = field(init=False, repr=False, default=0)
    pages_per_block: int = field(init=False, repr=False, default=0)
    metadata_bytes: int = field(init=False, repr=False, default=0)
    n_regions: int = field(init=False, repr=False, default=0)
    bitmap_bytes: int = field(init=False, repr=False, default=0)
    metadata_base: int = field(init=False, repr=False, default=0)
    bitmap_base: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("FAM capacity must be positive")
        if self.acm_bits not in (8, 16, 32):
            raise ConfigError(f"unsupported ACM width {self.acm_bits}")
        if self.capacity_bytes % self.page_bytes:
            raise ConfigError("FAM capacity must be page aligned")
        set_field = object.__setattr__  # frozen dataclass
        set_field(self, "total_pages", self.capacity_bytes // self.page_bytes)
        # 4 KB pages whose ACM shares one 64 B metadata block (32 for
        # 16-bit entries — the paper's spatial-locality unit).
        set_field(self, "pages_per_block",
                  (self.block_bytes * 8) // self.acm_bits)
        raw = (self.total_pages * self.acm_bits + 7) // 8
        set_field(self, "metadata_bytes", _round_up(raw, self.page_bytes))
        set_field(self, "n_regions",
                  (self.capacity_bytes + _REGION_BYTES - 1) // _REGION_BYTES)
        set_field(self, "bitmap_bytes",
                  _round_up(self.n_regions * _BITMAP_BYTES_PER_REGION,
                            self.page_bytes))
        set_field(self, "metadata_base",
                  self.capacity_bytes - self.metadata_bytes -
                  self.bitmap_bytes)
        set_field(self, "bitmap_base",
                  self.capacity_bytes - self.bitmap_bytes)
        if self.usable_bytes <= 0:
            raise ConfigError("FAM too small to hold its own metadata")

    # ------------------------------------------------------------------
    # Region geometry
    # ------------------------------------------------------------------
    @property
    def usable_bytes(self) -> int:
        """Bytes available for application pages (``MTAdd``/
        ``metadata_base`` is the first non-usable byte)."""
        return self.metadata_base

    @property
    def usable_pages(self) -> int:
        return self.usable_bytes // self.page_bytes

    @property
    def overhead_fraction(self) -> float:
        """Metadata + bitmap overhead as a fraction of capacity (the
        paper calls the bitmap share 'negligible, less than 0.0001%'
        — of the bitmap alone relative to region size)."""
        return (self.metadata_bytes + self.bitmap_bytes) / self.capacity_bytes

    # ------------------------------------------------------------------
    # Address derivation (what the STU computes in hardware)
    # ------------------------------------------------------------------
    def page_number(self, fam_addr: int) -> int:
        self._check_usable(fam_addr)
        return fam_addr // self.page_bytes

    def acm_entry_addr(self, fam_addr: int) -> int:
        """Byte address of the ACM entry governing ``fam_addr``."""
        page = self.page_number(fam_addr)
        return self.metadata_base + (page * self.acm_bits) // 8

    def acm_block_addr(self, fam_addr: int) -> int:
        """Address of the 64 B metadata block covering ``fam_addr``'s
        page — the unit the STU fetches and caches."""
        entry = self.acm_entry_addr(fam_addr)
        return entry - (entry % self.block_bytes)

    def acm_block_key(self, fam_addr: int) -> int:
        """Stable key identifying the metadata block (block index)."""
        return self.page_number(fam_addr) // self.pages_per_block

    def region_of(self, fam_addr: int) -> int:
        """1 GB region index of ``fam_addr``."""
        self._check_usable(fam_addr)
        return fam_addr // _REGION_BYTES

    def bitmap_block_addr(self, fam_addr: int, node_id: int) -> int:
        """Address of the 64 B bitmap block holding ``node_id``'s bits
        for ``fam_addr``'s region (4 bits per node)."""
        region_base = self.bitmap_base + self.region_of(fam_addr) * \
            _BITMAP_BYTES_PER_REGION
        byte = (node_id * 4) // 8
        addr = region_base + byte
        return addr - (addr % self.block_bytes)

    def _check_usable(self, fam_addr: int) -> None:
        if not 0 <= fam_addr < self.metadata_base:
            raise ConfigError(
                f"FAM address {fam_addr:#x} outside usable region "
                f"[0, {self.metadata_base:#x})")

    def is_metadata_address(self, fam_addr: int) -> bool:
        """Whether ``fam_addr`` falls inside the protected regions."""
        return self.metadata_base <= fam_addr < self.capacity_bytes


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
