"""The authoritative access-control metadata contents.

:class:`AcmStore` models what actually sits in the FAM's metadata
region: one :class:`~repro.acm.metadata.AcmEntry` per 4 KB page plus
the per-1GB :class:`~repro.acm.bitmap.SharedPageBitmap` objects.  The
memory broker writes it when granting/revoking pages; the STU
verification unit reads it (charging FAM accesses for the block
fetches, which the caller times).

The store enforces the threat model's invariant at the lowest level:
a page with no entry belongs to nobody and every access to it fails
verification.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.acm.bitmap import SharedPageBitmap
from repro.acm.layout import FamLayout
from repro.acm.metadata import (
    AcmEntry,
    Permission,
    perm_code_allows,
    shared_owner_marker,
)
from repro.errors import AccessViolationError

__all__ = ["AcmStore"]


class AcmStore:
    """Owner/permission truth for every allocated FAM page."""

    def __init__(self, layout: FamLayout) -> None:
        self.layout = layout
        self._entries: Dict[int, AcmEntry] = {}
        self._bitmaps: Dict[int, SharedPageBitmap] = {}

    # ------------------------------------------------------------------
    # Broker-side mutation
    # ------------------------------------------------------------------
    def set_owner(self, fam_page: int, node_id: int,
                  perm_code: int) -> None:
        """Record ``fam_page`` as exclusively owned by ``node_id``."""
        self._entries[fam_page] = AcmEntry(owner=node_id,
                                           perm_code=perm_code)

    def clear(self, fam_page: int) -> None:
        """Mark ``fam_page`` unallocated (all accesses will fail)."""
        self._entries.pop(fam_page, None)

    def mark_shared(self, fam_page: int) -> None:
        """Flip a page's owner field to the shared marker.

        The paper sets *all* 4 KB sub-page entries of a shared 1 GB
        page to the marker; callers iterate the page range.
        """
        marker = shared_owner_marker(self.layout.acm_bits)
        current = self._entries.get(fam_page)
        perm = current.perm_code if current else 0
        self._entries[fam_page] = AcmEntry(owner=marker, perm_code=perm)

    def bitmap_for_region(self, region: int) -> SharedPageBitmap:
        """The region's bitmap, created lazily (the physical 8 KB is
        dedicated whether used or not)."""
        bitmap = self._bitmaps.get(region)
        if bitmap is None:
            bitmap = SharedPageBitmap(region)
            self._bitmaps[region] = bitmap
        return bitmap

    # ------------------------------------------------------------------
    # STU-side reads
    # ------------------------------------------------------------------
    def entry_of(self, fam_page: int) -> Optional[AcmEntry]:
        return self._entries.get(fam_page)

    def read_block(self, fam_page: int) -> Dict[int, AcmEntry]:
        """All entries in the 64 B metadata block covering
        ``fam_page`` — the unit an ACM fetch brings into the STU cache
        (32 pages for 16-bit entries: the spatial locality DeACT-W
        banks on)."""
        per_block = self.layout.pages_per_block
        first = (fam_page // per_block) * per_block
        block = {}
        for page in range(first, first + per_block):
            entry = self._entries.get(page)
            if entry is not None:
                block[page] = entry
        return block

    # ------------------------------------------------------------------
    # Verification (the actual access-control decision)
    # ------------------------------------------------------------------
    def check(self, node_id: int, fam_addr: int,
              needed: Permission) -> Tuple[bool, bool]:
        """Verify an access without raising.

        Returns ``(allowed, consulted_bitmap)`` — the second element
        tells the timing model whether a bitmap block fetch was needed
        (only for shared pages).
        """
        fam_page = self.layout.page_number(fam_addr)
        entry = self._entries.get(fam_page)
        if entry is None:
            return False, False
        if entry.is_shared(self.layout.acm_bits):
            region = self.layout.region_of(fam_addr)
            bitmap = self.bitmap_for_region(region)
            return bitmap.allows(node_id, needed), True
        if entry.owner != node_id:
            return False, False
        return perm_code_allows(entry.perm_code, needed), False

    def verify(self, node_id: int, fam_addr: int,
               needed: Permission) -> bool:
        """Like :meth:`check` but raises on denial.

        Raises
        ------
        AccessViolationError
            When the page is unallocated, owned by another node, or
            the permission class denies the requested rights.
        """
        allowed, consulted_bitmap = self.check(node_id, fam_addr, needed)
        if not allowed:
            raise AccessViolationError(
                f"node {node_id} denied {needed!r} at FAM {fam_addr:#x}",
                node_id=node_id, fam_addr=fam_addr)
        return consulted_bitmap

    # ------------------------------------------------------------------
    @property
    def allocated_pages(self) -> int:
        return len(self._entries)
