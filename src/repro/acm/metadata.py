"""Per-page access-control metadata entries.

The paper's 16-bit entry (Figure 5) holds a 14-bit owner node id and a
2-bit permission field; all owner bits set to one marks the page as
shared (the bitmap then arbitrates).  We generalize the same split —
``acm_bits - 2`` owner bits + 2 permission bits — to the 8- and 32-bit
widths explored in Figure 14.

The 2-bit permission field encodes one of four permission *classes*
(the paper folds read, write and execute into two bits):

====  ==================
code  meaning
====  ==================
0     read-only
1     read + write
2     read + execute
3     read + write + execute
====  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntFlag

from repro.errors import ConfigError

__all__ = [
    "Permission",
    "AcmEntry",
    "shared_owner_marker",
    "perm_code_allows",
    "PERM_RO",
    "PERM_RW",
    "PERM_RX",
    "PERM_RWX",
]


class Permission(IntFlag):
    """Individual access rights."""

    READ = 1
    WRITE = 2
    EXEC = 4


PERM_RO = 0
PERM_RW = 1
PERM_RX = 2
PERM_RWX = 3

_CODE_TO_PERMS = {
    PERM_RO: Permission.READ,
    PERM_RW: Permission.READ | Permission.WRITE,
    PERM_RX: Permission.READ | Permission.EXEC,
    PERM_RWX: Permission.READ | Permission.WRITE | Permission.EXEC,
}


#: Per-class granted-rights bitmasks as plain ints: IntFlag ``&`` runs
#: through enum ``__and__`` on every call, which showed up in
#: verification-path profiles.
_CODE_TO_MASK = [int(_CODE_TO_PERMS[code]) for code in range(4)]


def perm_code_allows(code: int, needed: Permission) -> bool:
    """Whether permission class ``code`` grants every right in
    ``needed``."""
    needed_mask = needed.value
    return (_CODE_TO_MASK[code & 0x3] & needed_mask) == needed_mask


def owner_bits(acm_bits: int) -> int:
    """Owner-id field width for a given entry width."""
    if acm_bits not in (8, 16, 32):
        raise ConfigError(f"ACM width must be 8, 16 or 32, got {acm_bits}")
    return acm_bits - 2


def shared_owner_marker(acm_bits: int) -> int:
    """The all-ones owner value that marks a shared page.

    For the paper's 16-bit entries this is 0x3FFF (14 ones), limiting
    the system to 16383 real node ids.
    """
    return (1 << owner_bits(acm_bits)) - 1


def max_nodes(acm_bits: int) -> int:
    """Largest usable node id + 1 (the marker value is reserved)."""
    return shared_owner_marker(acm_bits)


@dataclass(frozen=True)
class AcmEntry:
    """One page's access-control metadata.

    ``owner`` equal to :func:`shared_owner_marker` means "consult the
    shared-page bitmap"; otherwise only ``owner`` may touch the page,
    with rights given by ``perm_code``.
    """

    owner: int
    perm_code: int = PERM_RW

    def is_shared(self, acm_bits: int) -> bool:
        return self.owner == shared_owner_marker(acm_bits)

    # ------------------------------------------------------------------
    # Wire encoding (what actually sits in the FAM metadata region)
    # ------------------------------------------------------------------
    def encode(self, acm_bits: int) -> int:
        """Pack into an ``acm_bits``-wide integer (owner high, perms
        low, per Figure 5)."""
        bits = owner_bits(acm_bits)
        if not 0 <= self.owner <= (1 << bits) - 1:
            raise ConfigError(
                f"owner {self.owner} does not fit in {bits} bits")
        if not 0 <= self.perm_code <= 3:
            raise ConfigError(f"perm code {self.perm_code} out of range")
        return (self.owner << 2) | self.perm_code

    @classmethod
    def decode(cls, raw: int, acm_bits: int) -> "AcmEntry":
        """Unpack an ``acm_bits``-wide integer."""
        bits = owner_bits(acm_bits)
        if not 0 <= raw < (1 << acm_bits):
            raise ConfigError(f"raw ACM {raw:#x} out of {acm_bits}-bit range")
        return cls(owner=(raw >> 2) & ((1 << bits) - 1),
                   perm_code=raw & 0x3)

    def allows(self, node_id: int, needed: Permission, acm_bits: int) -> bool:
        """Owner-based check (non-shared pages only).

        Shared pages must be arbitrated through the bitmap; calling
        this on one returns False for every real node id because the
        marker never equals a valid id.
        """
        if self.owner != node_id:
            return False
        return perm_code_allows(self.perm_code, needed)
