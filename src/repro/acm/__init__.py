"""Access-control metadata (ACM) for shared FAM pools.

Implements Section III-A and Figure 5:

* :mod:`repro.acm.metadata` — per-4KB-page ACM entries (owner node id
  + 2-bit permission class; the all-ones owner marks a shared page),
  in 8/16/32-bit widths for the Figure 14 sweep.
* :mod:`repro.acm.layout` — the FAM address-space carve-out: usable
  memory, the derived metadata region (``MTAdd + page/32 * 64`` for
  16-bit ACM), and the per-1GB shared-page bitmaps.
* :mod:`repro.acm.bitmap` — 64 Kbit-per-1GB-region bitmaps recording
  which nodes may touch a shared large page (4 bits per node: valid +
  permission class, enabling the paper's mixed per-node permissions).
* :mod:`repro.acm.store` — the authoritative in-FAM metadata contents
  the broker writes and the STU verification unit reads.
"""

from repro.acm.metadata import AcmEntry, Permission, perm_code_allows, shared_owner_marker
from repro.acm.layout import FamLayout
from repro.acm.bitmap import SharedPageBitmap
from repro.acm.store import AcmStore

__all__ = [
    "AcmEntry",
    "Permission",
    "perm_code_allows",
    "shared_owner_marker",
    "FamLayout",
    "SharedPageBitmap",
    "AcmStore",
]
