"""Deterministic simulation substrate.

This package contains the timing machinery shared by every architectural
component in the reproduction:

* :mod:`repro.sim.clock` — frequency/cycle/nanosecond conversions.
* :mod:`repro.sim.resource` — busy-until reservation resources (single
  server, banked, and bounded outstanding-request windows).  These model
  queueing at DRAM/NVM banks, fabric ports and miss-handling registers
  without a full event calendar per request.
* :mod:`repro.sim.engine` — a small event loop used to interleave
  multiple nodes' access streams in global time order.
* :mod:`repro.sim.stats` — counter/histogram registries every component
  reports into.

All times in the library are expressed in **nanoseconds** as floats;
:class:`~repro.sim.clock.Clock` converts to core cycles where needed.
"""

from repro.sim.clock import Clock
from repro.sim.engine import EventLoop
from repro.sim.resource import BankedResource, OutstandingWindow, TimedResource
from repro.sim.stats import Histogram, Stats

__all__ = [
    "Clock",
    "EventLoop",
    "TimedResource",
    "BankedResource",
    "OutstandingWindow",
    "Stats",
    "Histogram",
]
