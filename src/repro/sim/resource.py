"""Busy-until reservation resources.

Instead of enqueueing an event per request on a global calendar, each
contended hardware resource (a DRAM bank, an NVM bank, the FAM-side
fabric port) keeps the time at which it next becomes free.  A request
arriving at ``now`` starts service at ``max(now, busy_until)`` and the
resource's horizon advances by the service time.  This models FIFO
queueing delay exactly for single-server resources while keeping the
simulator fast enough to run the paper's full benchmark matrix in
Python.

Three flavours are provided:

* :class:`TimedResource` — one FIFO server.
* :class:`BankedResource` — N servers selected by address interleaving
  (models DRAM/NVM banks).
* :class:`OutstandingWindow` — a bounded set of in-flight completions
  (models miss-status registers / a core's outstanding-request limit).
"""

from __future__ import annotations

import heapq
from typing import List

from repro.errors import ConfigError

__all__ = ["TimedResource", "BankedResource", "OutstandingWindow"]


class TimedResource:
    """A single FIFO server with busy-until reservation semantics."""

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self._busy_until = 0.0
        self.reservations = 0
        self.busy_time = 0.0

    @property
    def busy_until(self) -> float:
        """Earliest time at which a new request could begin service."""
        return self._busy_until

    def reserve(self, now: float, service_ns: float) -> float:
        """Reserve the resource for ``service_ns`` starting no earlier
        than ``now``.

        Returns the *completion* time.  Queueing delay is implicit:
        service begins at ``max(now, busy_until)``.
        """
        if service_ns < 0:
            raise ConfigError(f"negative service time {service_ns} on {self.name}")
        start = now if now > self._busy_until else self._busy_until
        end = start + service_ns
        self._busy_until = end
        self.reservations += 1
        self.busy_time += service_ns
        return end

    def peek_completion(self, now: float, service_ns: float) -> float:
        """Completion time a :meth:`reserve` call would return, without
        actually reserving."""
        start = now if now > self._busy_until else self._busy_until
        return start + service_ns

    def reset(self) -> None:
        """Forget all reservations (used between independent runs)."""
        self._busy_until = 0.0
        self.reservations = 0
        self.busy_time = 0.0


class BankedResource:
    """``n_banks`` independent FIFO servers selected by address.

    Addresses are interleaved across banks at ``interleave_bytes``
    granularity, matching row-buffer-free bank parallelism: two accesses
    to different banks overlap fully, two to the same bank serialize.
    """

    def __init__(self, name: str, n_banks: int,
                 interleave_bytes: int = 64) -> None:
        if n_banks <= 0:
            raise ConfigError(f"{name}: bank count must be positive, got {n_banks}")
        if interleave_bytes <= 0 or interleave_bytes & (interleave_bytes - 1):
            raise ConfigError(
                f"{name}: interleave must be a positive power of two, "
                f"got {interleave_bytes}"
            )
        self.name = name
        self.n_banks = n_banks
        self.interleave_bytes = interleave_bytes
        self._banks: List[TimedResource] = [
            TimedResource(f"{name}.bank{i}") for i in range(n_banks)
        ]
        # Memoized index arithmetic for the per-access hot path
        # (interleave is a validated power of two; the bank count
        # usually is — fall back to a modulo when it is not).
        self._interleave_shift = interleave_bytes.bit_length() - 1
        self._bank_mask = (n_banks - 1
                           if (n_banks & (n_banks - 1)) == 0 else -1)

    def bank_index(self, addr: int) -> int:
        """Bank servicing ``addr`` under the interleaving scheme."""
        mask = self._bank_mask
        block = addr >> self._interleave_shift
        return block & mask if mask >= 0 else block % self.n_banks

    def reserve(self, addr: int, now: float, service_ns: float) -> float:
        """Reserve the bank owning ``addr``; returns completion time."""
        mask = self._bank_mask
        block = addr >> self._interleave_shift
        bank = self._banks[block & mask if mask >= 0 else
                           block % self.n_banks]
        return bank.reserve(now, service_ns)

    def bank(self, index: int) -> TimedResource:
        """Direct access to a bank (mainly for tests/introspection)."""
        return self._banks[index]

    @property
    def total_reservations(self) -> int:
        return sum(b.reservations for b in self._banks)

    @property
    def total_busy_time(self) -> float:
        return sum(b.busy_time for b in self._banks)

    def reset(self) -> None:
        for bank in self._banks:
            bank.reset()


class OutstandingWindow:
    """A bounded pool of in-flight request completion times.

    Models structures that limit memory-level parallelism: the core's
    32-outstanding-request limit and the FAM's 128-outstanding limit
    (Table II).  ``admit`` blocks (in simulated time) until a slot is
    free; ``complete_before`` drains entries that have finished.
    """

    def __init__(self, capacity: int, name: str = "window") -> None:
        if capacity <= 0:
            raise ConfigError(f"{name}: capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._completions: List[float] = []  # min-heap of completion times
        self.admissions = 0
        self.stall_time = 0.0

    def __len__(self) -> int:
        return len(self._completions)

    @property
    def is_full(self) -> bool:
        return len(self._completions) >= self.capacity

    def drain(self, now: float) -> None:
        """Retire every request that completed at or before ``now``."""
        heap = self._completions
        while heap and heap[0] <= now:
            heapq.heappop(heap)

    def admit(self, now: float) -> float:
        """Admit a new request, returning the (possibly delayed) time at
        which the request can actually issue.

        If the window is full even after draining, the request waits for
        the earliest outstanding completion.  (:meth:`drain` is inlined
        — this runs once per trace event and once per FAM access.)
        """
        heap = self._completions
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        issue = now
        while len(heap) >= self.capacity:
            earliest = heapq.heappop(heap)
            if earliest > issue:
                self.stall_time += earliest - issue
                issue = earliest
        self.admissions += 1
        return issue

    def record(self, completion_ns: float) -> None:
        """Record the completion time of an admitted request."""
        heapq.heappush(self._completions, completion_ns)

    def earliest_completion(self) -> float:
        """Completion time of the oldest in-flight request (or 0.0)."""
        return self._completions[0] if self._completions else 0.0

    def latest_completion(self) -> float:
        """Completion time of the last-finishing in-flight request."""
        return max(self._completions) if self._completions else 0.0

    def reset(self) -> None:
        self._completions.clear()
        self.admissions = 0
        self.stall_time = 0.0
