"""Clock and time-unit conversion helpers.

The simulator keeps all timestamps in nanoseconds (floats).  Components
that are naturally specified in core cycles (pipeline latencies, cache
hit times quoted in cycles) use a :class:`Clock` to convert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["Clock"]


@dataclass(frozen=True)
class Clock:
    """A fixed-frequency clock.

    Parameters
    ----------
    frequency_ghz:
        Clock frequency in GHz.  The paper's cores run at 2 GHz
        (Table II), i.e. 0.5 ns per cycle.
    """

    frequency_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigError(
                f"clock frequency must be positive, got {self.frequency_ghz}"
            )

    @property
    def period_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> float:
        """Convert nanoseconds to (fractional) cycles."""
        return ns * self.frequency_ghz

    def ns_to_whole_cycles(self, ns: float) -> int:
        """Convert nanoseconds to a whole number of cycles, rounding up.

        Useful when reporting cycle counts for IPC: a partial cycle still
        occupies the pipeline for a full cycle.
        """
        cycles = self.ns_to_cycles(ns)
        whole = int(cycles)
        return whole if whole == cycles else whole + 1
