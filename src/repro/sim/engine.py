"""A minimal deterministic event loop.

The library mostly composes latencies synchronously through busy-until
resources, but the multi-node driver (Figure 16) needs to interleave
several nodes' access streams in global time order so that contention on
the shared fabric and FAM banks is applied in the order real hardware
would see it.  :class:`EventLoop` provides exactly that: a stable
min-heap of ``(time, sequence, callback)`` entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["EventLoop"]


class EventLoop:
    """Deterministic discrete-event loop.

    Events scheduled for the same timestamp fire in scheduling order
    (FIFO), which keeps multi-node runs reproducible regardless of dict
    ordering or hash seeds.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[float], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time: the most recently fired event, or
        the end of the last exhausted ``run(until=...)`` window."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Schedule ``callback(when)`` to fire at time ``when``.

        Scheduling in the past (before the currently firing event) is a
        logic error in a component and is rejected.
        """
        if when < self._now:
            raise ConfigError(
                f"cannot schedule event at {when} ns; current time is {self._now} ns"
            )
        heapq.heappush(self._heap, (when, next(self._sequence), callback))

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Fire events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time.
            When every event in the window has fired, the clock
            advances to ``until`` itself — so a subsequent
            ``schedule`` before ``until`` is rejected and back-to-back
            windowed runs cannot mis-order zero-latency events
            scheduled between the last fired event and the window end.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns the final simulated time.
        """
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and fired >= max_events:
                break
            when, _seq, callback = heapq.heappop(self._heap)
            self._now = when
            callback(when)
            fired += 1
            self.events_fired += 1
        if until is not None and until > self._now and (
                not self._heap or self._heap[0][0] > until):
            # The window is exhausted (not a max_events stop with work
            # still pending inside it): advance to the window end.
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire a single event; returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _seq, callback = heapq.heappop(self._heap)
        self._now = when
        callback(when)
        self.events_fired += 1
        return True
