"""Statistics registries.

Every architectural component reports into a :class:`Stats` object:
plain named counters plus derived ratios.  :class:`Histogram` offers
fixed-bin latency distributions for the few places where a mean hides
too much (e.g. FAM access latency under contention).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["Stats", "Histogram", "geometric_mean"]


class Stats:
    """A named bag of additive counters.

    Counters spring into existence at zero on first use, so components
    never need to pre-declare them, and merging run shards is a simple
    elementwise addition.
    """

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    def incr(self, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``key``."""
        self._counters[key] += amount

    def get(self, key: str, default: float = 0.0) -> float:
        """Current value of ``key`` (0.0 if never incremented)."""
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterable[str]:
        return self._counters.keys()

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with a 0/0 -> 0.0 convention."""
        den = self._counters.get(denominator, 0.0)
        if den == 0.0:
            return 0.0
        return self._counters.get(numerator, 0.0) / den

    def hit_rate(self, prefix: str) -> float:
        """Hit rate for a component that counts ``<prefix>.hits`` and
        ``<prefix>.misses``."""
        hits = self._counters.get(f"{prefix}.hits", 0.0)
        misses = self._counters.get(f"{prefix}.misses", 0.0)
        total = hits + misses
        return hits / total if total else 0.0

    def merge(self, other: "Stats") -> "Stats":
        """Add ``other``'s counters into this object (returns self)."""
        for key, value in other._counters.items():
            self._counters[key] += value
        return self

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of all counters."""
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"Stats({self.name}: {body})"


class Histogram:
    """Fixed-width-bin histogram with overflow bin.

    Bins cover ``[lo, hi)`` in ``n_bins`` equal slices; samples below
    ``lo`` land in bin 0, samples at or above ``hi`` land in the final
    (overflow) bin.
    """

    def __init__(self, lo: float, hi: float, n_bins: int = 32,
                 name: str = "histogram") -> None:
        if hi <= lo:
            raise ValueError(f"{name}: hi ({hi}) must exceed lo ({lo})")
        if n_bins <= 0:
            raise ValueError(f"{name}: need at least one bin")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.n_bins = n_bins
        self._width = (hi - lo) / n_bins
        self.counts: List[int] = [0] * (n_bins + 1)
        self.total = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf

    def add(self, sample: float) -> None:
        """Record one sample."""
        if sample < self.lo:
            index = 0
        elif sample >= self.hi:
            index = self.n_bins
        else:
            index = int((sample - self.lo) / self._width)
        self.counts[index] += 1
        self.total += 1
        self.sum += sample
        if sample < self.min_seen:
            self.min_seen = sample
        if sample > self.max_seen:
            self.max_seen = sample

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0..100) via bin midpoints."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return 0.0
        target = self.total * p / 100.0
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index == self.n_bins:
                    return self.hi
                return self.lo + (index + 0.5) * self._width
        return self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name}: n={self.total}, mean={self.mean:.1f}, "
                f"range=[{self.min_seen:g}, {self.max_seen:g}])")


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence.

    The paper reports group geomeans for the sensitivity studies
    (Figures 13-15); zeros/negatives are rejected because a speedup of
    zero is always a harness bug.
    """
    if not values:
        return 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
    return math.exp(sum(math.log(v) for v in values) / len(values))
