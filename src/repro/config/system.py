"""Configuration dataclasses for every simulated hardware block.

All sizes are bytes, all latencies nanoseconds, all counts plain ints.
Each dataclass validates itself in ``__post_init__`` so a bad sweep
parameter fails before any simulation time is spent
(:class:`~repro.errors.ConfigError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigError

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "TlbConfig",
    "PtwConfig",
    "LocalMemoryConfig",
    "FamConfig",
    "FabricConfig",
    "StuConfig",
    "TranslationCacheConfig",
    "AllocationConfig",
    "SystemConfig",
    "KIB",
    "MIB",
    "GIB",
    "PAGE_BYTES",
    "BLOCK_BYTES",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Base page size assumed throughout the paper (4 KB).
PAGE_BYTES = 4096
#: Memory access granularity (cache block) assumed throughout (64 B).
BLOCK_BYTES = 64


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """One level of the on-chip data cache hierarchy."""

    name: str
    size_bytes: int
    associativity: int
    latency_ns: float
    block_bytes: int = BLOCK_BYTES
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, f"{self.name}: size must be positive")
        _require(_power_of_two(self.block_bytes),
                 f"{self.name}: block size must be a power of two")
        _require(self.associativity > 0,
                 f"{self.name}: associativity must be positive")
        _require(self.latency_ns >= 0, f"{self.name}: negative latency")
        _require(self.size_bytes % (self.block_bytes * self.associativity) == 0,
                 f"{self.name}: size not divisible into "
                 f"{self.associativity}-way sets of {self.block_bytes}B blocks")
        _require(self.replacement in ("lru", "fifo", "random"),
                 f"{self.name}: unknown replacement policy {self.replacement!r}")

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.associativity


@dataclass(frozen=True)
class CoreConfig:
    """The node's processing element (Table II: 4 OoO cores, 2 GHz,
    2 issues/cycle, 32 max outstanding requests).

    The simulator models one aggregate access stream per node; the core
    count scales the non-memory instruction throughput.
    """

    cores: int = 4
    frequency_ghz: float = 2.0
    issue_width: int = 2
    max_outstanding: int = 32

    def __post_init__(self) -> None:
        _require(self.cores > 0, "core count must be positive")
        _require(self.frequency_ghz > 0, "frequency must be positive")
        _require(self.issue_width > 0, "issue width must be positive")
        _require(self.max_outstanding > 0, "outstanding limit must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class TlbConfig:
    """Two-level TLB (Table II: L1 32 entries, L2 256 entries)."""

    l1_entries: int = 32
    l2_entries: int = 256
    l1_associativity: int = 4
    l2_associativity: int = 8
    l2_latency_ns: float = 3.5  # 7 cycles at 2 GHz, Haswell-like
    page_bytes: int = PAGE_BYTES

    def __post_init__(self) -> None:
        _require(self.l1_entries > 0 and self.l2_entries > 0,
                 "TLB levels need at least one entry")
        _require(self.l1_associativity > 0 and self.l2_associativity > 0,
                 "TLB associativity must be positive")
        _require(self.l1_entries % self.l1_associativity == 0,
                 "L1 TLB entries must divide into ways")
        _require(self.l2_entries % self.l2_associativity == 0,
                 "L2 TLB entries must divide into ways")
        _require(_power_of_two(self.page_bytes), "page size must be a power of two")


@dataclass(frozen=True)
class PtwConfig:
    """Page-table-walker caches for intermediate levels (32 entries,
    after Bhargava et al. [8] as configured in the paper)."""

    cache_entries: int = 32
    lookup_ns: float = 0.5  # one cycle

    def __post_init__(self) -> None:
        _require(self.cache_entries >= 0, "PTW cache entries cannot be negative")
        _require(self.lookup_ns >= 0, "negative PTW lookup latency")


@dataclass(frozen=True)
class LocalMemoryConfig:
    """Node-local DRAM (Table II: 1 GB)."""

    size_bytes: int = 1 * GIB
    access_ns: float = 50.0
    banks: int = 8
    interleave_bytes: int = BLOCK_BYTES

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "local memory size must be positive")
        _require(self.access_ns >= 0, "negative DRAM latency")
        _require(self.banks > 0, "DRAM bank count must be positive")


@dataclass(frozen=True)
class FamConfig:
    """Fabric-attached memory (Table II: 16 GB NVM, 60/150 ns read/write,
    32 banks, 128 outstanding requests)."""

    capacity_bytes: int = 16 * GIB
    read_ns: float = 60.0
    write_ns: float = 150.0
    banks: int = 32
    max_outstanding: int = 128
    interleave_bytes: int = BLOCK_BYTES

    def __post_init__(self) -> None:
        _require(self.capacity_bytes > 0, "FAM capacity must be positive")
        _require(self.read_ns >= 0 and self.write_ns >= 0, "negative FAM latency")
        _require(self.banks > 0, "FAM bank count must be positive")
        _require(self.max_outstanding > 0, "FAM outstanding limit must be positive")


@dataclass(frozen=True)
class FabricConfig:
    """The system interconnect (Table II: 500 ns network latency).

    The one-way node-to-FAM latency is split into a short node-to-router
    hop (the STU sits in the first router, Section III-A) and a longer
    router-to-FAM hop.  ``port_occupancy_ns`` is the serialization time a
    message occupies the shared FAM-side port, which is what creates
    contention when several nodes share the fabric (Figure 16).
    """

    node_to_stu_ns: float = 100.0
    stu_to_fam_ns: float = 400.0
    port_occupancy_ns: float = 20.0

    def __post_init__(self) -> None:
        _require(self.node_to_stu_ns >= 0, "negative node-to-STU latency")
        _require(self.stu_to_fam_ns >= 0, "negative STU-to-FAM latency")
        _require(self.port_occupancy_ns >= 0, "negative port occupancy")

    @property
    def total_latency_ns(self) -> float:
        """One-way node-to-FAM latency (the paper's headline number)."""
        return self.node_to_stu_ns + self.stu_to_fam_ns

    @classmethod
    def with_total_latency(cls, total_ns: float,
                           port_occupancy_ns: float = 20.0) -> "FabricConfig":
        """Build a fabric whose one-way latency is ``total_ns``, keeping
        the paper's 1:4 split between the node-router and router-FAM hops."""
        _require(total_ns >= 0, "negative fabric latency")
        return cls(node_to_stu_ns=total_ns * 0.2,
                   stu_to_fam_ns=total_ns * 0.8,
                   port_occupancy_ns=port_occupancy_ns)


@dataclass(frozen=True)
class StuConfig:
    """System Translation Unit (Table II: 1024 entries, 128 sets,
    8-way; modelled after a Haswell Xeon L2 TLB)."""

    entries: int = 1024
    associativity: int = 8
    lookup_ns: float = 2.0
    acm_bits: int = 16
    #: Section III-A aside: with per-node memory encryption keys,
    #: read verification can be skipped entirely — stolen ciphertext is
    #: useless without the key, and writes are still vetted.  Off by
    #: default (the paper leaves it as future work).
    encrypted_memory_mode: bool = False
    #: Walk-cache entries for the STU's FAM page-table walker.  The
    #: default of 0 makes every system-table walk cost the full four
    #: serial FAM reads, matching the paper's accounting ("considering
    #: four memory accesses during PTW", Section III-B); the node MMU
    #: keeps the paper's 32-entry Bhargava-style caches (PtwConfig).
    walk_cache_entries: int = 0
    #: DeACT-N only: how many {tag, ACM} sub-way pairs fit per physical
    #: way.  The paper's default is 2 with 44-bit tags; the Figure 14
    #: ablation explores 1 and 3.
    subways_per_way: int = 2

    def __post_init__(self) -> None:
        _require(self.entries > 0, "STU entries must be positive")
        _require(self.associativity > 0, "STU associativity must be positive")
        _require(self.entries % self.associativity == 0,
                 "STU entries must divide into ways")
        _require(self.acm_bits in (8, 16, 32),
                 f"ACM width must be 8, 16 or 32 bits, got {self.acm_bits}")
        _require(self.subways_per_way in (1, 2, 3),
                 "DeACT-N supports 1..3 sub-way pairs per way")
        _require(self.lookup_ns >= 0, "negative STU lookup latency")
        _require(self.walk_cache_entries >= 0,
                 "STU walk-cache entries cannot be negative")

    @property
    def n_sets(self) -> int:
        return self.entries // self.associativity

    @property
    def contiguous_pages_per_way(self) -> int:
        """DeACT-W: pages whose ACM shares one way (52 bits freed by
        dropping the FAM page address, Section III-D / Figure 14)."""
        return max(1, 52 // self.acm_bits)


@dataclass(frozen=True)
class TranslationCacheConfig:
    """The in-DRAM FAM translation cache (Section III-C; 1 MB, 4-way,
    four 104-bit entries per 64-byte row, random replacement)."""

    size_bytes: int = 1 * MIB
    associativity: int = 4
    entry_bytes: int = 16  # 104 bits padded to 16 B so 4 fit a 64 B row
    replacement: str = "random"

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "translation cache size must be positive")
        _require(self.associativity > 0, "associativity must be positive")
        _require(self.entry_bytes > 0, "entry size must be positive")
        _require(self.replacement in ("random", "lru"),
                 f"unknown replacement {self.replacement!r}")
        _require(self.size_bytes % (self.entry_bytes * self.associativity) == 0,
                 "translation cache size must divide into sets")

    @property
    def n_entries(self) -> int:
        return self.size_bytes // self.entry_bytes

    @property
    def n_sets(self) -> int:
        return self.n_entries // self.associativity


@dataclass(frozen=True)
class AllocationConfig:
    """Memory placement policy (paper footnote 3: ~20 % of application
    memory from local DRAM, ~80 % from FAM; FAM frames are handed out
    randomly because the pool is shared by many nodes)."""

    local_fraction: float = 0.2
    fam_policy: str = "random"
    seed: int = 0xDEAC7

    def __post_init__(self) -> None:
        _require(0.0 <= self.local_fraction <= 1.0,
                 "local fraction must be within [0, 1]")
        _require(self.fam_policy in ("random", "contiguous"),
                 f"unknown FAM allocation policy {self.fam_policy!r}")


@dataclass(frozen=True)
class SystemConfig:
    """Complete system: Table II defaults unless overridden."""

    nodes: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1", 32 * KIB, associativity=8, latency_ns=2.0))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", 256 * KIB, associativity=8, latency_ns=6.0))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L3", 1 * MIB, associativity=16, latency_ns=20.0))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    ptw: PtwConfig = field(default_factory=PtwConfig)
    local_memory: LocalMemoryConfig = field(default_factory=LocalMemoryConfig)
    fam: FamConfig = field(default_factory=FamConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    stu: StuConfig = field(default_factory=StuConfig)
    translation_cache: TranslationCacheConfig = field(
        default_factory=TranslationCacheConfig)
    allocation: AllocationConfig = field(default_factory=AllocationConfig)

    def __post_init__(self) -> None:
        _require(self.nodes > 0, "need at least one node")
        _require(self.l1.block_bytes == self.l2.block_bytes == self.l3.block_bytes,
                 "cache hierarchy must share one block size")

    @property
    def page_bytes(self) -> int:
        return self.tlb.page_bytes

    @property
    def block_bytes(self) -> int:
        return self.l1.block_bytes

    def replace(self, **changes: object) -> "SystemConfig":
        """A copy of this configuration with top-level fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def describe(self) -> Dict[str, str]:
        """A flat human-readable summary (used by Table II harness)."""
        return {
            "CPU": (f"{self.core.cores} OoO cores, {self.core.frequency_ghz:g}GHz, "
                    f"{self.core.issue_width} issues/cycle, "
                    f"{self.core.max_outstanding} max outstanding requests"),
            "TLB": (f"2 levels, L1 size: {self.tlb.l1_entries} entries, "
                    f"L2 size: {self.tlb.l2_entries} entries"),
            "L1": f"Private, {self.l1.block_bytes}B blocks, {self.l1.size_bytes // KIB}KB, LRU",
            "L2": f"Private, {self.l2.block_bytes}B blocks, {self.l2.size_bytes // KIB}KB, LRU",
            "L3": f"Shared, {self.l3.block_bytes}B blocks, {self.l3.size_bytes // MIB}MB, LRU",
            "Local memory": f"DRAM, Size: {self.local_memory.size_bytes // GIB}GB",
            "STU cache": (f"Size: {self.stu.entries} entries, "
                          f"associativity: {self.stu.associativity}"),
            "Fabric latency": f"{self.fabric.total_latency_ns:g}ns",
            "FAM": (f"NVM, {self.fam.capacity_bytes // GIB}GB, read "
                    f"{self.fam.read_ns:g}ns, write {self.fam.write_ns:g}ns, "
                    f"{self.fam.banks} banks, "
                    f"{self.fam.max_outstanding} outstanding requests"),
            "Nodes": str(self.nodes),
        }
