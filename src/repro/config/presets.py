"""Named configurations for the paper's experiments.

``default_config`` is Table II verbatim; the ``with_*`` helpers derive
the sensitivity-sweep variants (Figures 13-16) from any base
configuration without mutating it.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.system import FabricConfig, StuConfig, SystemConfig

__all__ = [
    "default_config",
    "small_config",
    "with_encrypted_memory",
    "with_stu_entries",
    "with_stu_associativity",
    "with_acm_bits",
    "with_acm_subways",
    "with_fabric_latency",
    "with_nodes",
    "with_allocation_policy",
]


def default_config(nodes: int = 1) -> SystemConfig:
    """The paper's Table II system configuration."""
    return SystemConfig(nodes=nodes)


def small_config(nodes: int = 1) -> SystemConfig:
    """A scaled-down configuration for fast unit tests.

    Shrinks every cache/TLB so interesting miss behaviour appears within
    a few thousand trace events instead of millions.  Relative
    proportions between structures follow Table II.
    """
    from repro.config.system import CacheConfig, KIB, TlbConfig, \
        TranslationCacheConfig
    base = SystemConfig(
        nodes=nodes,
        l1=CacheConfig("L1", 4 * KIB, associativity=4, latency_ns=2.0),
        l2=CacheConfig("L2", 16 * KIB, associativity=4, latency_ns=6.0),
        l3=CacheConfig("L3", 64 * KIB, associativity=8, latency_ns=20.0),
        tlb=TlbConfig(l1_entries=8, l2_entries=32,
                      l1_associativity=4, l2_associativity=8),
        stu=StuConfig(entries=64, associativity=8),
        translation_cache=TranslationCacheConfig(size_bytes=16 * KIB),
    )
    return base


def with_stu_entries(config: SystemConfig, entries: int) -> SystemConfig:
    """Figure 13: vary STU cache size (256..4096 entries)."""
    stu = replace(config.stu, entries=entries)
    return config.replace(stu=stu)


def with_stu_associativity(config: SystemConfig, associativity: int) -> SystemConfig:
    """Section V-D.1 (text): vary STU associativity (4..64)."""
    stu = replace(config.stu, associativity=associativity)
    return config.replace(stu=stu)


def with_acm_bits(config: SystemConfig, acm_bits: int) -> SystemConfig:
    """Figure 14: vary access-control-metadata width (8/16/32 bits)."""
    stu = replace(config.stu, acm_bits=acm_bits)
    return config.replace(stu=stu)


def with_acm_subways(config: SystemConfig, subways: int) -> SystemConfig:
    """Figure 14 (DeACT-N pairs-per-way study): 1..3 {tag, ACM} pairs."""
    stu = replace(config.stu, subways_per_way=subways)
    return config.replace(stu=stu)


def with_fabric_latency(config: SystemConfig, total_ns: float) -> SystemConfig:
    """Figure 15: vary one-way fabric latency (100 ns .. 6 us)."""
    fabric = FabricConfig.with_total_latency(
        total_ns, port_occupancy_ns=config.fabric.port_occupancy_ns)
    return config.replace(fabric=fabric)


def with_nodes(config: SystemConfig, nodes: int) -> SystemConfig:
    """Figure 16: vary the number of nodes sharing fabric and FAM."""
    return config.replace(nodes=nodes)


def with_allocation_policy(config: SystemConfig, policy: str) -> SystemConfig:
    """Ablation: contiguous vs random FAM frame placement."""
    allocation = replace(config.allocation, fam_policy=policy)
    return config.replace(allocation=allocation)


def with_encrypted_memory(config: SystemConfig,
                          enabled: bool = True) -> SystemConfig:
    """Extension (Section III-A aside): per-node encryption keys make
    read verification unnecessary; only writes are vetted."""
    stu = replace(config.stu, encrypted_memory_mode=enabled)
    return config.replace(stu=stu)
