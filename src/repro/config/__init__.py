"""System configuration.

:mod:`repro.config.system` defines one dataclass per hardware block and
a top-level :class:`~repro.config.system.SystemConfig` aggregating them;
:mod:`repro.config.presets` provides the paper's Table II configuration
and named variants for every sensitivity sweep.
"""

from repro.config.system import (
    AllocationConfig,
    CacheConfig,
    CoreConfig,
    FabricConfig,
    FamConfig,
    LocalMemoryConfig,
    PtwConfig,
    StuConfig,
    SystemConfig,
    TlbConfig,
    TranslationCacheConfig,
)
from repro.config.presets import (
    default_config,
    with_acm_bits,
    with_fabric_latency,
    with_nodes,
    with_stu_associativity,
    with_stu_entries,
)

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "TlbConfig",
    "PtwConfig",
    "LocalMemoryConfig",
    "FamConfig",
    "FabricConfig",
    "StuConfig",
    "TranslationCacheConfig",
    "AllocationConfig",
    "SystemConfig",
    "default_config",
    "with_stu_entries",
    "with_stu_associativity",
    "with_acm_bits",
    "with_fabric_latency",
    "with_nodes",
]
