"""Hierarchical (x86-64-style, four-level) page tables and walkers.

Two instances of the same machinery appear in a FAM system:

* Each node's OS keeps a **node page table** mapping virtual pages to
  node physical frames (walked by the node MMU on TLB misses,
  Figure 1a).
* The memory broker keeps a per-node **system (FAM) page table**
  mapping node physical pages to FAM frames (walked by the STU on
  translation misses, Section III-C).

Table pages are real frames obtained from an allocator callback, so
walks generate genuine memory traffic to wherever those frames live
(local DRAM or FAM) — this is what makes address-translation requests
show up at the FAM in Figures 4 and 11.
"""

from repro.pagetable.entry import PageTableEntry, PTE_PRESENT, PTE_WRITE, PTE_EXEC
from repro.pagetable.x86 import FourLevelPageTable, LEVEL_NAMES, WalkStep
from repro.pagetable.walker import PageTableWalker, WalkResult

__all__ = [
    "PageTableEntry",
    "PTE_PRESENT",
    "PTE_WRITE",
    "PTE_EXEC",
    "FourLevelPageTable",
    "WalkStep",
    "LEVEL_NAMES",
    "PageTableWalker",
    "WalkResult",
]
