"""A hardware page-table walker with page-walk caches.

On a TLB miss the MMU walks the four-level table.  Walk caches
(Bhargava et al. [8], configured at 32 entries in the paper) hold the
*interior* entries — PGD, PUD, PMD — keyed by the upper virtual-address
bits, letting a walk skip straight to the deepest cached level.  The
PTE level is never walk-cached (that is the TLB's job), so a best-case
cached walk still performs exactly one memory access, matching the
paper's model where DeACT is applied "only to the last level of the
page table".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cache.cache import SetAssociativeCache
from repro.pagetable.x86 import FourLevelPageTable, WalkStep

__all__ = ["PageTableWalker", "WalkResult"]

_BITS_PER_LEVEL = 9


@dataclass
class WalkResult:
    """Memory accesses a walk must perform after walk-cache filtering.

    Attributes
    ----------
    steps:
        The :class:`WalkStep` levels that must actually touch memory,
        ordered root-to-leaf.  Always ends with the PTE-level step.
    skipped_levels:
        Number of interior levels served by walk caches (0..3).
    frame:
        The translated physical frame number.
    """

    steps: List[WalkStep]
    skipped_levels: int
    frame: int
    entry_flags: int = 0

    @property
    def memory_accesses(self) -> int:
        return len(self.steps)


@dataclass
class _WalkCacheLevel:
    """One walk cache: maps a VPN prefix to 'this subtree is resolved'."""

    cache: SetAssociativeCache
    prefix_shift: int = 0


class PageTableWalker:
    """Walks a :class:`FourLevelPageTable` through walk caches.

    One walker instance fronts one page table.  ``cache_entries`` is
    split evenly across the three interior levels (paper: 32 entries
    total), with at least one entry each when caching is enabled.
    """

    def __init__(self, table: FourLevelPageTable, cache_entries: int = 32,
                 name: str = "ptw") -> None:
        self.table = table
        self.name = name
        self.walks = 0
        self.memory_accesses = 0
        self._levels: List[_WalkCacheLevel] = []
        if cache_entries > 0:
            per_level = max(1, cache_entries // 3)
            for depth in range(1, 4):
                # depth 1: caches PGD entries (prefix = top 9 bits), ...
                shift = _BITS_PER_LEVEL * (3 - (depth - 1)) - _BITS_PER_LEVEL * 0
                cache = SetAssociativeCache(
                    f"{name}.wc{depth}", n_sets=max(1, per_level // 4),
                    associativity=min(4, per_level), replacement="lru")
                self._levels.append(_WalkCacheLevel(cache, shift))

    # ------------------------------------------------------------------
    def _prefix(self, vpn: int, depth: int) -> int:
        """VPN prefix identifying the subtree resolved at ``depth``
        interior levels (depth 1 == PGD entry known, etc.)."""
        return vpn >> (_BITS_PER_LEVEL * (4 - depth) - _BITS_PER_LEVEL)

    def walk(self, vpn: int) -> WalkResult:
        """Resolve ``vpn``, returning only the steps that touch memory.

        Walk caches are probed deepest-first; every interior level the
        walk does traverse is installed into its cache.
        """
        self.walks += 1
        all_steps, entry = self.table.walk_entries_cached(vpn)

        skipped = 0
        if self._levels:
            # Deepest interior level first: PMD (depth 3) lets us jump
            # straight to the PTE access.
            for depth in (3, 2, 1):
                key = vpn >> (_BITS_PER_LEVEL * (4 - depth))
                if self._levels[depth - 1].cache.get_line(key) is not None:
                    skipped = depth
                    break
        needed = all_steps[skipped:]
        # Install the interior levels we traversed.
        if self._levels:
            for step in needed[:-1]:
                depth = step.level + 1  # completing level L resolves depth L+1
                key = vpn >> (_BITS_PER_LEVEL * (4 - depth))
                self._levels[depth - 1].cache.fill_line(key, True)
        self.memory_accesses += len(needed)
        entry.touch(write=False)
        return WalkResult(steps=needed, skipped_levels=skipped,
                          frame=entry.frame, entry_flags=entry.flags)

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Flush all walk caches (TLB-shootdown side effect)."""
        for level in self._levels:
            level.cache.clear()

    @property
    def average_accesses_per_walk(self) -> float:
        return self.memory_accesses / self.walks if self.walks else 0.0

    @property
    def cache_probes(self) -> int:
        """Total walk-cache tag probes (telemetry)."""
        return sum(level.cache.accesses for level in self._levels)
