"""A four-level hierarchical page table (PGD/PUD/PMD/PTE, Figure 1a).

The table mirrors x86-64 radix paging: a 48-bit virtual address is
split into a 12-bit page offset and four 9-bit level indices.  Interior
tables are allocated lazily from a frame-allocator callback, so the
*addresses* of the entries touched during a walk are real simulated
physical addresses — the walker charges memory accesses against them.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import TranslationFault
from repro.memo import BoundedMemo
from repro.pagetable.entry import PageTableEntry, PTE_PRESENT, PTE_WRITE

__all__ = ["FourLevelPageTable", "WalkStep", "LEVEL_NAMES",
           "WALK_MEMO_CAP"]

#: Cap on the per-table walk-decomposition memo.  One entry per warm
#: VPN; 64 Ki entries cover a 256 MB working set of 4 KB pages — far
#: beyond any scaled harness trace — while bounding what a long
#: many-trace sweep can pin (each entry is ~5 small objects).
WALK_MEMO_CAP = 1 << 16

#: Names of the levels from root to leaf, as in the paper's Figure 1.
LEVEL_NAMES = ("PGD", "PUD", "PMD", "PTE")

_BITS_PER_LEVEL = 9
_ENTRIES_PER_TABLE = 1 << _BITS_PER_LEVEL
_ENTRY_BYTES = 8
_PAGE_SHIFT = 12

#: Derived shift/mask constants for the unrolled hot-path VPN split —
#: pinned to _BITS_PER_LEVEL so a level-geometry change cannot desync
#: the fast decomposition from walk_entries and the walker's keys.
_INDEX_MASK = _ENTRIES_PER_TABLE - 1
_SHIFT_L0 = 3 * _BITS_PER_LEVEL
_SHIFT_L1 = 2 * _BITS_PER_LEVEL
_SHIFT_L2 = _BITS_PER_LEVEL


class WalkStep(NamedTuple):
    """One level of a page walk.

    Attributes
    ----------
    level:
        0 (PGD) .. 3 (PTE).
    entry_addr:
        Physical address of the 8-byte entry read at this level.
    table_base:
        Physical base address of the table page being indexed.
    """

    level: int
    entry_addr: int
    table_base: int

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]


class _Table:
    """One 4 KB table page: 512 slots pointing at child tables or PTEs."""

    __slots__ = ("base_addr", "slots")

    def __init__(self, base_addr: int) -> None:
        self.base_addr = base_addr
        self.slots: Dict[int, object] = {}

    def entry_addr(self, index: int) -> int:
        return self.base_addr + index * _ENTRY_BYTES


class FourLevelPageTable:
    """A radix page table whose table pages occupy simulated frames.

    Parameters
    ----------
    frame_allocator:
        Zero-argument callable returning the physical base address of a
        fresh 4 KB frame each time an interior table page is needed.
        Wiring this to the node's allocator means page-table pages land
        in local DRAM or FAM according to the allocation policy —
        exactly the effect behind the E-FAM AT traffic in Figure 4.
    name:
        Label for diagnostics.
    """

    def __init__(self, frame_allocator: Callable[[], int],
                 name: str = "pagetable") -> None:
        self.name = name
        self._allocate_frame = frame_allocator
        self._root = _Table(self._allocate_frame())
        self.mapped_pages = 0
        self.table_pages = 1
        # Per-VPN memo of (walk steps, leaf entry): the radix descent
        # for a VPN is invariant until that VPN is remapped/unmapped
        # (interior tables are never freed), so the hot walker resolves
        # warm VPNs with one dict probe.  Invalidated per-VPN by
        # map()/unmap(); LRU-bounded so long many-trace sweeps cannot
        # grow it without limit (eviction only costs a re-walk).
        self._walk_memo: BoundedMemo = BoundedMemo(WALK_MEMO_CAP)

    # ------------------------------------------------------------------
    # Index math
    # ------------------------------------------------------------------
    @staticmethod
    def split_vpn(vpn: int) -> List[int]:
        """Split a virtual page number into the four level indices."""
        # Unrolled: this runs once per page walk on the hot path.
        return [(vpn >> _SHIFT_L0) & _INDEX_MASK,
                (vpn >> _SHIFT_L1) & _INDEX_MASK,
                (vpn >> _SHIFT_L2) & _INDEX_MASK,
                vpn & _INDEX_MASK]

    @property
    def root_base(self) -> int:
        """Physical address of the root table (the CR3 contents)."""
        return self._root.base_addr

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map(self, vpn: int, frame: int,
            flags: int = PTE_PRESENT | PTE_WRITE) -> PageTableEntry:
        """Install ``vpn -> frame``; builds interior tables on demand.

        Returns the installed :class:`PageTableEntry`.  Remapping an
        existing page replaces its entry (as an OS would on COW etc.).
        """
        indices = self.split_vpn(vpn)
        table = self._root
        for level in range(3):
            child = table.slots.get(indices[level])
            if child is None:
                child = _Table(self._allocate_frame())
                table.slots[indices[level]] = child
                self.table_pages += 1
            assert isinstance(child, _Table)
            table = child
        leaf_index = indices[3]
        if leaf_index not in table.slots:
            self.mapped_pages += 1
        entry = PageTableEntry(frame=frame, flags=flags)
        table.slots[leaf_index] = entry
        self._walk_memo.pop(vpn, None)
        return entry

    def unmap(self, vpn: int) -> bool:
        """Remove the mapping for ``vpn``; returns whether it existed.

        Interior tables are retained (real OSes rarely free them
        either); only the leaf entry is dropped.
        """
        indices = self.split_vpn(vpn)
        table = self._root
        for level in range(3):
            child = table.slots.get(indices[level])
            if not isinstance(child, _Table):
                return False
            table = child
        if indices[3] in table.slots:
            del table.slots[indices[3]]
            self.mapped_pages -= 1
            self._walk_memo.pop(vpn, None)
            return True
        return False

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        """The leaf entry for ``vpn``, or ``None`` when unmapped."""
        indices = self.split_vpn(vpn)
        table = self._root
        for level in range(3):
            child = table.slots.get(indices[level])
            if not isinstance(child, _Table):
                return None
            table = child
        entry = table.slots.get(indices[3])
        return entry if isinstance(entry, PageTableEntry) else None

    def __contains__(self, vpn: int) -> bool:
        return self.lookup(vpn) is not None

    # ------------------------------------------------------------------
    # Walking
    # ------------------------------------------------------------------
    def walk(self, vpn: int) -> List[WalkStep]:
        """The four :class:`WalkStep` reads a hardware walker performs.

        Raises
        ------
        TranslationFault
            If any level is unmapped (a page fault the simulated OS
            failed to resolve before the access).
        """
        indices = self.split_vpn(vpn)
        steps: List[WalkStep] = []
        table = self._root
        for level in range(3):
            steps.append(WalkStep(level, table.entry_addr(indices[level]),
                                  table.base_addr))
            child = table.slots.get(indices[level])
            if not isinstance(child, _Table):
                raise TranslationFault(
                    f"{self.name}: vpn {vpn:#x} unmapped at level "
                    f"{LEVEL_NAMES[level]}")
            table = child
        steps.append(WalkStep(3, table.entry_addr(indices[3]),
                              table.base_addr))
        if indices[3] not in table.slots:
            raise TranslationFault(f"{self.name}: vpn {vpn:#x} has no PTE")
        return steps

    def walk_entries_cached(
            self, vpn: int) -> Tuple[List[WalkStep], PageTableEntry]:
        """Memoized :meth:`walk_entries` (the hot walker's entry point).

        Callers must not mutate the returned step list.
        """
        hit = self._walk_memo.get(vpn)
        if hit is None:
            hit = self.walk_entries(vpn)
            self._walk_memo.put(vpn, hit)
        return hit

    def walk_entries(self, vpn: int) -> Tuple[List[WalkStep], PageTableEntry]:
        """One-pass variant of :meth:`walk` that also returns the leaf
        entry (avoids a second traversal)."""
        indices = self.split_vpn(vpn)
        steps: List[WalkStep] = []
        table = self._root
        for level in range(3):
            steps.append(WalkStep(level, table.entry_addr(indices[level]),
                                  table.base_addr))
            child = table.slots.get(indices[level])
            if not isinstance(child, _Table):
                raise TranslationFault(
                    f"{self.name}: vpn {vpn:#x} unmapped at level "
                    f"{LEVEL_NAMES[level]}")
            table = child
        steps.append(WalkStep(3, table.entry_addr(indices[3]),
                              table.base_addr))
        entry = table.slots.get(indices[3])
        if not isinstance(entry, PageTableEntry):
            raise TranslationFault(f"{self.name}: vpn {vpn:#x} has no PTE")
        return steps, entry

    def translate(self, vpn: int) -> int:
        """Frame number for ``vpn`` (raises on unmapped)."""
        entry = self.lookup(vpn)
        if entry is None or not entry.present:
            raise TranslationFault(f"{self.name}: vpn {vpn:#x} not present")
        return entry.frame

    # ------------------------------------------------------------------
    def iter_mappings(self) -> Iterator[tuple]:
        """Yield every ``(vpn, PageTableEntry)`` pair (test helper)."""
        def _recurse(table: _Table, prefix: int, level: int):
            for index, slot in table.slots.items():
                vpn_part = (prefix << _BITS_PER_LEVEL) | index
                if level == 3:
                    if isinstance(slot, PageTableEntry):
                        yield vpn_part, slot
                elif isinstance(slot, _Table):
                    yield from _recurse(slot, vpn_part, level + 1)
        yield from _recurse(self._root, 0, 0)
