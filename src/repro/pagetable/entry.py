"""Page-table entries.

Entries carry the mapped frame number plus a small flag set.  Only the
flags the simulation consults are modelled; hardware-reserved bits are
out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PageTableEntry", "PTE_PRESENT", "PTE_WRITE", "PTE_EXEC"]

PTE_PRESENT = 0x1
PTE_WRITE = 0x2
PTE_EXEC = 0x4


@dataclass
class PageTableEntry:
    """A leaf (PTE-level) translation entry.

    Attributes
    ----------
    frame:
        Physical frame number the page maps to.
    flags:
        OR of ``PTE_PRESENT`` / ``PTE_WRITE`` / ``PTE_EXEC``.
    accessed / dirty:
        Reference bits maintained by walks, available to paging-policy
        extensions.
    """

    frame: int
    flags: int = PTE_PRESENT | PTE_WRITE
    accessed: bool = False
    dirty: bool = False

    @property
    def present(self) -> bool:
        return bool(self.flags & PTE_PRESENT)

    @property
    def writable(self) -> bool:
        return bool(self.flags & PTE_WRITE)

    @property
    def executable(self) -> bool:
        return bool(self.flags & PTE_EXEC)

    def touch(self, write: bool) -> None:
        """Update reference bits for an access."""
        self.accessed = True
        if write:
            self.dirty = True
