"""The system-level memory broker (the paper's Opal-equivalent).

A dedicated broker node owns the FAM pool: it grants FAM frames to
compute nodes, maintains each node's *system page table* (node physical
-> FAM address, the table the STU walks), writes access-control
metadata, arbitrates shared pages, and orchestrates job migration
(Section VI).

* :mod:`repro.broker.allocator` — frame allocators for the node-local
  DRAM zone and the FAM pool (random placement by default — the pool is
  shared by many nodes, so consecutive node pages land on scattered FAM
  frames, the effect behind DeACT-W's poor ACM locality).
* :mod:`repro.broker.registry` — node ids and per-job logical node ids.
* :mod:`repro.broker.broker` — the broker itself.
"""

from repro.broker.allocator import FrameAllocator
from repro.broker.broker import MemoryBroker
from repro.broker.registry import NodeRegistry

__all__ = ["FrameAllocator", "MemoryBroker", "NodeRegistry"]
