"""The memory broker: system-level owner of the FAM pool.

The broker is the trusted entity of the threat model.  It

* grants FAM frames to nodes on demand (first touch of a FAM-zone node
  physical page),
* maintains one **system page table per node** — a four-level table
  mapping node page numbers to FAM frames, whose table pages themselves
  occupy FAM frames (so STU walks generate real FAM traffic),
* writes the access-control metadata the STU verifies against,
* builds shared segments (1 GB-granularity sharing with per-node
  permission classes via the region bitmaps), and
* migrates jobs between nodes (Section VI), reporting the shootdown
  work the paper enumerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.acm.layout import FamLayout
from repro.acm.metadata import PERM_RW
from repro.acm.store import AcmStore
from repro.broker.allocator import FrameAllocator
from repro.broker.registry import NodeRegistry
from repro.config.system import AllocationConfig, FamConfig, PAGE_BYTES
from repro.errors import ConfigError, TranslationFault
from repro.pagetable.x86 import FourLevelPageTable
from repro.sim.stats import Stats

__all__ = ["MemoryBroker", "SharedSegment", "MigrationReport"]


@dataclass(frozen=True)
class SharedSegment:
    """A broker-built shared memory segment.

    ``fam_pages`` are the (physically contiguous) FAM page numbers;
    ``regions`` the 1 GB regions whose bitmaps hold the grants.
    """

    fam_pages: tuple
    regions: tuple
    grants: tuple  # (node_id, perm_code) pairs


@dataclass
class MigrationReport:
    """Work performed by a job migration (the Section VI overhead).

    Every field is a count of metadata updates that would hit memory:
    the paper's "overhead of system-level mapping shootdown".
    """

    pages_moved: int = 0
    acm_writes: int = 0
    table_updates: int = 0
    stu_invalidations: int = 0
    translation_cache_invalidations: int = 0


class MemoryBroker:
    """Centralized FAM manager (the Opal role in the paper's setup)."""

    def __init__(self, fam_config: FamConfig,
                 allocation: AllocationConfig,
                 acm_bits: int = 16,
                 name: str = "broker") -> None:
        self.name = name
        self.layout = FamLayout(fam_config.capacity_bytes, acm_bits=acm_bits)
        self.acm = AcmStore(self.layout)
        self.registry = NodeRegistry(acm_bits)
        self.fam_allocator = FrameAllocator(
            base=0, n_frames=self.layout.usable_pages,
            page_bytes=PAGE_BYTES, policy=allocation.fam_policy,
            seed=allocation.seed, name=f"{name}.fam")
        self._tables: Dict[int, FourLevelPageTable] = {}
        self.stats = Stats(name)

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def register_node(self, node_id: int) -> None:
        """Admit a node: gives it an empty system page table."""
        self.registry.register_node(node_id)
        self._tables[node_id] = FourLevelPageTable(
            self._allocate_table_frame, name=f"{self.name}.spt{node_id}")
        self.stats.incr("nodes_registered")

    def _allocate_table_frame(self) -> int:
        """Frames backing system-page-table pages live in FAM."""
        self.stats.incr("table_frames")
        return self.fam_allocator.allocate()

    def system_table(self, node_id: int) -> FourLevelPageTable:
        """The node's system page table (raises for unknown nodes)."""
        table = self._tables.get(node_id)
        if table is None:
            raise ConfigError(f"node {node_id} not registered with broker")
        return table

    # ------------------------------------------------------------------
    # Page grants
    # ------------------------------------------------------------------
    def allocate_for_node(self, node_id: int, node_page: int,
                          perm_code: int = PERM_RW) -> int:
        """Back a node physical page with a fresh FAM frame.

        Installs the system-table mapping and the ACM entry; returns
        the FAM page number.
        """
        table = self.system_table(node_id)
        if node_page in table:
            raise ConfigError(
                f"node {node_id} page {node_page:#x} already backed")
        frame_addr = self.fam_allocator.allocate()
        fam_page = frame_addr // PAGE_BYTES
        table.map(node_page, fam_page)
        self.acm.set_owner(fam_page, node_id, perm_code)
        self.stats.incr("pages_granted")
        return fam_page

    def ensure_mapped(self, node_id: int, node_page: int,
                      perm_code: int = PERM_RW) -> int:
        """Idempotent grant: return the existing FAM page or allocate."""
        table = self.system_table(node_id)
        entry = table.lookup(node_page)
        if entry is not None:
            return entry.frame
        return self.allocate_for_node(node_id, node_page, perm_code)

    def translate(self, node_id: int, node_page: int) -> int:
        """System-level translation (functional view, no timing)."""
        table = self.system_table(node_id)
        entry = table.lookup(node_page)
        if entry is None:
            raise TranslationFault(
                f"node {node_id} page {node_page:#x} not FAM-backed")
        return entry.frame

    def release_page(self, node_id: int, node_page: int) -> None:
        """Return a page to the pool and scrub its metadata."""
        table = self.system_table(node_id)
        entry = table.lookup(node_page)
        if entry is None:
            raise TranslationFault(
                f"node {node_id} page {node_page:#x} not mapped")
        table.unmap(node_page)
        self.acm.clear(entry.frame)
        self.fam_allocator.free(entry.frame * PAGE_BYTES)
        self.stats.incr("pages_released")

    # ------------------------------------------------------------------
    # Shared segments (Section III-A / VI)
    # ------------------------------------------------------------------
    def create_shared_segment(self, grants: Dict[int, int],
                              n_pages: int) -> SharedSegment:
        """Build a shared segment visible to several nodes.

        Parameters
        ----------
        grants:
            ``node_id -> perm_code`` — per-node permission classes
            (the paper's mixed-permission sharing).
        n_pages:
            Physically contiguous 4 KB pages to reserve (sharing is
            tracked at 1 GB granularity; small segments still work,
            they just dedicate their region's bitmap).
        """
        if not grants:
            raise ConfigError("shared segment needs at least one grantee")
        for node_id in grants:
            if not self.registry.is_registered(node_id):
                raise ConfigError(f"grantee node {node_id} not registered")
        frames = self.fam_allocator.allocate_contiguous_run(n_pages)
        fam_pages = tuple(addr // PAGE_BYTES for addr in frames)
        regions = []
        for fam_page in fam_pages:
            self.acm.mark_shared(fam_page)
            region = self.layout.region_of(fam_page * PAGE_BYTES)
            if region not in regions:
                regions.append(region)
        for region in regions:
            bitmap = self.acm.bitmap_for_region(region)
            for node_id, perm_code in grants.items():
                bitmap.grant(node_id, perm_code)
        self.stats.incr("shared_segments")
        self.stats.incr("shared_pages", n_pages)
        return SharedSegment(fam_pages=fam_pages, regions=tuple(regions),
                             grants=tuple(sorted(grants.items())))

    def map_shared_into_node(self, node_id: int, node_page_start: int,
                             segment: SharedSegment) -> None:
        """Install a shared segment into a node's system table."""
        if node_id not in {n for n, _ in segment.grants}:
            raise ConfigError(
                f"node {node_id} holds no grant on this segment")
        table = self.system_table(node_id)
        for offset, fam_page in enumerate(segment.fam_pages):
            table.map(node_page_start + offset, fam_page)

    # ------------------------------------------------------------------
    # Job migration (Section VI)
    # ------------------------------------------------------------------
    def migrate_node_pages(
            self, from_node: int, to_node: int,
            on_invalidate: Optional[Callable[[int, int], None]] = None,
    ) -> MigrationReport:
        """Move every page owned by ``from_node`` to ``to_node``.

        Performs the three shootdown steps the paper lists: update the
        in-FAM translation state (system table), update ACM owners at
        global memory, and notify the node so it can invalidate its
        translation caches (``on_invalidate(node_page, fam_page)``).
        """
        src = self.system_table(from_node)
        dst = self.system_table(to_node)
        report = MigrationReport()
        mappings = list(src.iter_mappings())
        marker_shared = self.layout.acm_bits
        for node_page, entry in mappings:
            acm_entry = self.acm.entry_of(entry.frame)
            if acm_entry is not None and acm_entry.is_shared(marker_shared):
                continue  # shared pages are not owned; they stay put
            src.unmap(node_page)
            dst.map(node_page, entry.frame)
            report.table_updates += 2
            perm = acm_entry.perm_code if acm_entry else PERM_RW
            self.acm.set_owner(entry.frame, to_node, perm)
            report.acm_writes += 1
            report.pages_moved += 1
            if on_invalidate is not None:
                on_invalidate(node_page, entry.frame)
                report.translation_cache_invalidations += 1
                report.stu_invalidations += 1
        self.stats.incr("migrations")
        return report

    # ------------------------------------------------------------------
    @property
    def fam_utilization(self) -> float:
        return self.fam_allocator.utilization
