"""Node and job identity management.

The broker tracks physical node ids (bounded by the ACM owner-field
width) and, per Section VI, *logical node ids* assigned to jobs so a
job can migrate between physical nodes by re-pointing its logical id
instead of rewriting every metadata entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.acm.metadata import max_nodes
from repro.errors import ConfigError

__all__ = ["NodeRegistry", "JobRecord"]


@dataclass
class JobRecord:
    """A scheduled job: a logical node id bound to a physical node."""

    job_name: str
    logical_id: int
    physical_node: int
    migrations: int = 0


class NodeRegistry:
    """Registers physical nodes and assigns logical ids to jobs."""

    def __init__(self, acm_bits: int = 16) -> None:
        self.acm_bits = acm_bits
        self._max_nodes = max_nodes(acm_bits)
        self._nodes: Dict[int, str] = {}
        self._jobs: Dict[str, JobRecord] = {}
        self._next_logical = 0

    # ------------------------------------------------------------------
    # Physical nodes
    # ------------------------------------------------------------------
    def register_node(self, node_id: int, label: str = "") -> None:
        """Admit a physical node to the system."""
        if not 0 <= node_id < self._max_nodes:
            raise ConfigError(
                f"node id {node_id} exceeds the {self.acm_bits}-bit ACM "
                f"limit of {self._max_nodes} nodes")
        if node_id in self._nodes:
            raise ConfigError(f"node id {node_id} already registered")
        self._nodes[node_id] = label or f"node{node_id}"

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def capacity(self) -> int:
        """Maximum nodes the ACM width supports (16383 for 16-bit)."""
        return self._max_nodes

    # ------------------------------------------------------------------
    # Jobs / logical ids (Section VI page-migration support)
    # ------------------------------------------------------------------
    def schedule_job(self, job_name: str, physical_node: int) -> JobRecord:
        """Assign a fresh logical node id to a job on ``physical_node``."""
        if physical_node not in self._nodes:
            raise ConfigError(f"physical node {physical_node} not registered")
        if job_name in self._jobs:
            raise ConfigError(f"job {job_name!r} already scheduled")
        record = JobRecord(job_name=job_name,
                           logical_id=self._next_logical,
                           physical_node=physical_node)
        self._next_logical += 1
        self._jobs[job_name] = record
        return record

    def migrate_job(self, job_name: str, new_physical_node: int) -> JobRecord:
        """Re-point a job's logical id at another physical node.

        This is the cheap path the paper advocates: metadata keyed by
        logical id does not change; only the binding moves.
        """
        record = self._jobs.get(job_name)
        if record is None:
            raise ConfigError(f"unknown job {job_name!r}")
        if new_physical_node not in self._nodes:
            raise ConfigError(f"physical node {new_physical_node} not registered")
        record.physical_node = new_physical_node
        record.migrations += 1
        return record

    def job(self, job_name: str) -> Optional[JobRecord]:
        return self._jobs.get(job_name)

    def physical_node_of(self, logical_id: int) -> Optional[int]:
        """Resolve a logical id to its current physical node."""
        for record in self._jobs.values():
            if record.logical_id == logical_id:
                return record.physical_node
        return None
