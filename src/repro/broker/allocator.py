"""Physical frame allocators.

Two placement policies, selected by
:class:`~repro.config.system.AllocationConfig`:

* ``random`` — frames are handed out in a seeded random order.  This is
  the realistic regime for a shared FAM pool (many nodes allocate
  concurrently) and the reason DeACT-W's contiguous ACM caching
  underperforms (Section III-D).
* ``contiguous`` — strictly ascending frames; used by the ablation
  bench to show how much of the DeACT-N gain comes from allocation
  randomness.

The random policy uses a lazy Fisher-Yates shuffle (a sparse swap map
over the virtual permutation), so constructing an allocator over a
16 GB pool costs O(1) instead of shuffling four million entries up
front.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.errors import AllocationError, ConfigError

__all__ = ["FrameAllocator"]


class FrameAllocator:
    """Allocates fixed-size frames from ``[base, base + n_frames * page)``.

    Frames are returned as byte base addresses.  ``free`` returns a
    frame to the pool; freed frames are preferred for reuse (hot-frame
    reuse, as a real buddy allocator's free lists would behave).
    """

    def __init__(self, base: int, n_frames: int, page_bytes: int = 4096,
                 policy: str = "random", seed: int = 0,
                 name: str = "allocator") -> None:
        if n_frames <= 0:
            raise ConfigError(f"{name}: need at least one frame")
        if base % page_bytes:
            raise ConfigError(f"{name}: base {base:#x} not page aligned")
        if policy not in ("random", "contiguous"):
            raise ConfigError(f"{name}: unknown policy {policy!r}")
        self.name = name
        self.base = base
        self.page_bytes = page_bytes
        self.policy = policy
        self.total_frames = n_frames
        self._rng = random.Random(seed)
        # Virtual permutation state (random policy): indices
        # [0, _remaining) are the not-yet-drawn frames; _swaps patches
        # the identity permutation where draws displaced entries.
        self._remaining = n_frames
        self._swaps: Dict[int, int] = {}
        # Frames returned by free(), reused before fresh draws.
        self._recycled: List[int] = []
        self._allocated: Set[int] = set()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently free frames."""
        return self.total_frames - len(self._allocated)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    @property
    def utilization(self) -> float:
        return len(self._allocated) / self.total_frames

    def frame_address(self, index: int) -> int:
        return self.base + index * self.page_bytes

    # ------------------------------------------------------------------
    def _draw_fresh(self) -> int:
        """Draw a never-allocated frame index per the policy."""
        if self._remaining <= 0:
            raise AllocationError(f"{self.name}: out of frames "
                                  f"({self.total_frames} total)")
        if self.policy == "contiguous":
            # Lowest unused index: the permutation is untouched, so the
            # next fresh frame is simply total - remaining.
            index = self.total_frames - self._remaining
            self._remaining -= 1
            return index
        # Lazy Fisher-Yates: pick a random slot among the remaining,
        # then fill the hole with the (virtual) last remaining slot.
        slot = self._rng.randrange(self._remaining)
        index = self._swaps.pop(slot, slot)
        last = self._remaining - 1
        if slot != last:
            self._swaps[slot] = self._swaps.pop(last, last)
        self._remaining -= 1
        return index

    def allocate(self) -> int:
        """Hand out one frame (byte address).

        Raises
        ------
        AllocationError
            When the pool is exhausted — a genuine out-of-memory.
        """
        if self._recycled:
            index = self._recycled.pop()
        else:
            index = self._draw_fresh()
        self._allocated.add(index)
        return self.frame_address(index)

    def allocate_many(self, count: int) -> List[int]:
        """Allocate ``count`` frames atomically (all or nothing)."""
        if count > len(self):
            raise AllocationError(
                f"{self.name}: requested {count} frames, "
                f"only {len(self)} free")
        return [self.allocate() for _ in range(count)]

    def allocate_contiguous_run(self, count: int) -> List[int]:
        """Allocate ``count`` physically consecutive frames.

        Used for shared 1 GB large pages, which must be physically
        contiguous.  Draws from the high end of the never-allocated
        space, scanning down for a run that avoids allocated frames.
        """
        if count <= 0:
            raise ConfigError(f"{self.name}: run length must be positive")
        if count > len(self):
            raise AllocationError(
                f"{self.name}: no room for a run of {count} frames")
        # Search from the top of the pool: demand allocations are
        # drawn from the permutation over all indices, so verify
        # against the allocated set explicitly.
        end = self.total_frames
        while end >= count:
            run = range(end - count, end)
            if all(i not in self._allocated for i in run):
                chosen = list(run)
                for index in chosen:
                    self._claim_specific(index)
                return [self.frame_address(i) for i in chosen]
            end -= 1
        raise AllocationError(
            f"{self.name}: no contiguous run of {count} frames")

    def _claim_specific(self, index: int) -> None:
        """Claim a specific never-allocated frame index.

        Only correct for indices that are still free; used by the
        contiguous-run allocator.  Records the claim so future random
        draws skip it (lazily, at draw time).
        """
        if index in self._allocated:
            raise AllocationError(
                f"{self.name}: frame index {index} already allocated")
        if index in self._recycled:
            self._recycled.remove(index)
            self._allocated.add(index)
            return
        # Find the slot currently mapping to this index.  The swap map
        # is sparse, so check patches first, then identity.
        slot = index
        for patched_slot, patched_index in self._swaps.items():
            if patched_index == index:
                slot = patched_slot
                break
        else:
            if index >= self._remaining and index not in self._swaps.values():
                # Identity slot already consumed and repatched away;
                # cannot happen for free frames.
                raise AllocationError(
                    f"{self.name}: frame index {index} unavailable")
        self._swaps.pop(slot, None)
        last = self._remaining - 1
        if slot != last:
            self._swaps[slot] = self._swaps.pop(last, last)
        else:
            self._swaps.pop(last, None)
        self._remaining -= 1
        self._allocated.add(index)

    def free(self, frame_addr: int) -> None:
        """Return a frame to the pool.

        Raises
        ------
        AllocationError
            On double-free or a foreign address — both indicate broker
            bugs and must not pass silently.
        """
        offset = frame_addr - self.base
        if offset % self.page_bytes:
            raise AllocationError(
                f"{self.name}: {frame_addr:#x} is not frame aligned")
        index = offset // self.page_bytes
        if index not in self._allocated:
            raise AllocationError(
                f"{self.name}: double free / foreign frame {frame_addr:#x}")
        self._allocated.remove(index)
        self._recycled.append(index)

    def is_allocated(self, frame_addr: int) -> bool:
        offset = frame_addr - self.base
        if offset < 0 or offset % self.page_bytes:
            return False
        return (offset // self.page_bytes) in self._allocated
