"""The system interconnect connecting nodes, STUs, and FAM pools."""

from repro.fabric.network import FabricNetwork

__all__ = ["FabricNetwork"]
