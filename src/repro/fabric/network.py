"""Fabric network timing model.

Topology (Section III-A): each node connects to a first-hop router
where its STU lives, and routers connect over the memory-semantic
fabric to the FAM pool.  The paper's headline parameter is the one-way
node-to-FAM latency (500 ns, swept in Figure 15); we split it into the
two hops and add a shared serialization port on the FAM side so that
adding nodes creates queueing (Figure 16).

All ``*_arrival`` methods take a departure time and return an arrival
time; only the FAM-side port is a contended resource — pure wire
latency does not queue.
"""

from __future__ import annotations

from repro.config.system import FabricConfig
from repro.sim.resource import TimedResource
from repro.sim.stats import Stats

__all__ = ["FabricNetwork"]


class FabricNetwork:
    """Latency + FAM-port serialization model of the system fabric."""

    def __init__(self, config: FabricConfig, name: str = "fabric") -> None:
        self.config = config
        self.name = name
        #: Single serialization point where all nodes' FAM-bound
        #: messages converge (models the FAM module's fabric port).
        self.fam_port = TimedResource(f"{name}.fam_port")
        self.stats = Stats(name)
        # Counter dict and config latencies hoisted off the per-hop
        # path (Stats.incr is a call per hop; the dict add is not).
        self._counters = self.stats._counters
        self._node_to_stu_ns = config.node_to_stu_ns
        self._stu_to_fam_ns = config.stu_to_fam_ns
        self._port_occupancy_ns = config.port_occupancy_ns

    # ------------------------------------------------------------------
    # Hop primitives
    # ------------------------------------------------------------------
    def node_to_stu_arrival(self, depart: float) -> float:
        """Node -> first-hop router (where the STU sits)."""
        self._counters["node_to_stu"] += 1.0
        return depart + self._node_to_stu_ns

    def stu_to_node_arrival(self, depart: float) -> float:
        """Router -> node (responses)."""
        self._counters["stu_to_node"] += 1.0
        return depart + self._node_to_stu_ns

    def stu_to_fam_arrival(self, depart: float) -> float:
        """Router -> FAM, through the shared FAM port.

        The message occupies the port for ``port_occupancy_ns``;
        concurrent messages from other nodes queue behind it, which is
        the contention mechanism of the node-count sweep.
        """
        self._counters["stu_to_fam"] += 1.0
        port_free = self.fam_port.reserve(depart,
                                          self._port_occupancy_ns)
        # Wire latency accrues after the message wins the port.
        return port_free + self._stu_to_fam_ns

    def fam_to_stu_arrival(self, depart: float) -> float:
        """FAM -> router (responses; response path is uncontended)."""
        self._counters["fam_to_stu"] += 1.0
        return depart + self._stu_to_fam_ns

    # ------------------------------------------------------------------
    # Composite paths
    # ------------------------------------------------------------------
    def node_to_fam_arrival(self, depart: float) -> float:
        """Node all the way to FAM (through the STU router)."""
        return self.stu_to_fam_arrival(self.node_to_stu_arrival(depart))

    def fam_to_node_arrival(self, depart: float) -> float:
        """FAM response all the way back to the node."""
        return self.stu_to_node_arrival(self.fam_to_stu_arrival(depart))

    @property
    def one_way_latency_ns(self) -> float:
        """Uncontended node-to-FAM latency (the Table II 500 ns)."""
        return self.config.total_latency_ns

    def reset(self) -> None:
        self.fam_port.reset()
        self.stats.reset()
