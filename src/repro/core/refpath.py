"""The seed per-event simulation path, kept as a frozen reference.

The production hot path (``Trace.decoded`` + ``Node.step_fast`` and
the allocation-free probe entry points underneath it) replaced the
seed implementation, which boxed every intermediate outcome into a
dataclass (``AccessResult`` per fill, ``TlbLookup`` per TLB probe,
``TranslationOutcome`` per translation, ``HierarchyResult`` per cache
access, ``TranslatorLookup`` / ``WalkTiming`` / ``VerificationResult``
per FAM access).  This module preserves that implementation verbatim —
operating on the *same* component instances, so the two paths can be
run against identical state — for two purposes:

* the hot-path equivalence suite (``tests/test_hot_path_equivalence``)
  proves the reworked path produces **bit-identical** run stats;
* the core-loop microbenchmark (``benchmarks/test_bench_core_loop``)
  measures the rework's speedup against the true seed cost profile.

Two deliberate departures from the seed, both accounting *bugfixes*
shipped in the same change and therefore part of the reference
semantics (otherwise the equivalence proof would enshrine the bugs):

* FIFO replace-in-place no longer refreshes insertion age
  (:meth:`~repro.cache.cache.SetAssociativeCache.fill_line`);
* random replacement draws the same ``_randbelow`` deviate whether the
  victim is picked by ``rng.choice(list(...))`` (here, as the seed
  did) or by ``rng.randrange`` + ``islice`` (production).

This module reaches into private attributes of the components it
mirrors (``_sets``, ``_rng``, ``_levels`` ...); that is intentional —
it is a white-box reference, not an API.
"""

from __future__ import annotations

from typing import Tuple

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.config.system import PAGE_BYTES
from repro.core.architectures import (
    EFam,
    IFam,
    _DeactBase,
    _fresh_request_id,
    _last_request_id,
)
from repro.core.node import Node
from repro.errors import AccessViolationError, ProtocolError
from repro.mem.request import RequestKind
from repro.pagetable.walker import PageTableWalker, WalkResult, _BITS_PER_LEVEL
from repro.stu.organizations import DeactNAcmCache, DeactWAcmCache
from repro.stu.stu import Stu, VerificationResult, WalkTiming
from repro.tlb.mmu import Mmu, TranslationOutcome
from repro.tlb.tlb import TlbLookup, TwoLevelTlb
from repro.translator.fam_translator import (
    _TAG_MATCH_NS,
    FamTranslator,
    TranslatorLookup,
)
from repro.workloads.trace import TraceEvent

__all__ = ["reference_step"]

_NO_WRITEBACKS: Tuple[int, ...] = ()


# ----------------------------------------------------------------------
# Tag store (seed fill: one AccessResult per fill)
# ----------------------------------------------------------------------
def _ref_fill(cache: SetAssociativeCache, key: int, value,
              dirty: bool = False) -> AccessResult:
    lines = cache._sets[key % cache.n_sets]
    cache.fills += 1
    line = lines.get(key)
    if line is not None:
        line[0] = value
        line[1] = line[1] or dirty
        # Bugfix semantics: only FIFO skips the move (insertion age);
        # LRU and random keep the seed's unconditional move_to_end.
        if cache._promote_on_hit or cache._random_evict:
            lines.move_to_end(key)
        return AccessResult(hit=True, value=value)
    evicted_key = evicted_value = None
    evicted_dirty = False
    if len(lines) >= cache.associativity:
        if cache._random_evict:
            victim_key = cache._rng.choice(list(lines))
            victim = lines.pop(victim_key)
        else:
            victim_key, victim = lines.popitem(last=False)
        evicted_key, evicted_value = victim_key, victim[0]
        evicted_dirty = victim[1]
        cache.evictions += 1
    lines[key] = [value, dirty]
    return AccessResult(hit=False, value=value,
                        evicted_key=evicted_key,
                        evicted_value=evicted_value,
                        evicted_dirty=evicted_dirty)


# ----------------------------------------------------------------------
# Cache hierarchy (seed access: HierarchyResult + boxed fills)
# ----------------------------------------------------------------------
def _ref_hier_fill_all(hierarchy: CacheHierarchy, block: int,
                       write: bool) -> Tuple[int, ...]:
    writebacks: Tuple[int, ...] = _NO_WRITEBACKS
    l3_result = _ref_fill(hierarchy._l3, block, True, dirty=write)
    if l3_result.evicted_key is not None:
        evicted = l3_result.evicted_key
        hierarchy._l1.invalidate(evicted)
        hierarchy._l2.invalidate(evicted)
        if l3_result.evicted_dirty:
            writebacks = (evicted * hierarchy.block_bytes,)
    l2_result = _ref_fill(hierarchy._l2, block, True, dirty=write)
    if l2_result.evicted_key is not None and l2_result.evicted_dirty:
        _ref_fill(hierarchy._l3, l2_result.evicted_key, True, dirty=True)
    l1_result = _ref_fill(hierarchy._l1, block, True, dirty=write)
    if l1_result.evicted_key is not None and l1_result.evicted_dirty:
        _ref_fill(hierarchy._l2, l1_result.evicted_key, True, dirty=True)
    return writebacks


def _ref_hier_access(hierarchy: CacheHierarchy, addr: int,
                     write: bool) -> HierarchyResult:
    block = addr // hierarchy.block_bytes
    if hierarchy._l1.get_line(block, write) is not None:
        return HierarchyResult(1, hierarchy._lat1)
    if hierarchy._l2.get_line(block, write) is not None:
        _ref_fill(hierarchy._l1, block, True, dirty=write)
        return HierarchyResult(2, hierarchy._lat12)
    if hierarchy._l3.get_line(block, write) is not None:
        _ref_fill(hierarchy._l2, block, True, dirty=write)
        _ref_fill(hierarchy._l1, block, True, dirty=write)
        return HierarchyResult(3, hierarchy._lat123)
    writebacks = _ref_hier_fill_all(hierarchy, block, write)
    return HierarchyResult(0, hierarchy._lat123, writebacks)


# ----------------------------------------------------------------------
# TLB + walker + MMU (seed: TlbLookup / WalkResult / TranslationOutcome)
# ----------------------------------------------------------------------
def _ref_tlb_lookup(tlb: TwoLevelTlb, vpn: int) -> TlbLookup:
    line = tlb.l1.get_line(vpn)
    if line is not None:
        return TlbLookup(level=1, frame=line[0], latency_ns=0.0)
    line = tlb.l2.get_line(vpn)
    if line is not None:
        _ref_fill(tlb.l1, vpn, line[0])
        return TlbLookup(level=2, frame=line[0],
                         latency_ns=tlb.config.l2_latency_ns)
    return TlbLookup(level=0, latency_ns=tlb.config.l2_latency_ns)


def _ref_tlb_install(tlb: TwoLevelTlb, vpn: int, frame: int) -> None:
    _ref_fill(tlb.l2, vpn, frame)
    _ref_fill(tlb.l1, vpn, frame)


def _ref_walker_walk(walker: PageTableWalker, vpn: int) -> WalkResult:
    walker.walks += 1
    all_steps, entry = walker.table.walk_entries(vpn)
    skipped = 0
    if walker._levels:
        for depth in (3, 2, 1):
            key = vpn >> (_BITS_PER_LEVEL * (4 - depth))
            if walker._levels[depth - 1].cache.get_line(key) is not None:
                skipped = depth
                break
    needed = all_steps[skipped:]
    if walker._levels:
        for step in needed[:-1]:
            depth = step.level + 1
            key = vpn >> (_BITS_PER_LEVEL * (4 - depth))
            _ref_fill(walker._levels[depth - 1].cache, key, True)
    walker.memory_accesses += len(needed)
    entry.touch(write=False)
    return WalkResult(steps=needed, skipped_levels=skipped,
                      frame=entry.frame, entry_flags=entry.flags)


def _ref_mmu_translate(mmu: Mmu, vaddr: int) -> TranslationOutcome:
    mmu.translations += 1
    vpn = mmu.vpn_of(vaddr)
    lookup = _ref_tlb_lookup(mmu.tlb, vpn)
    if lookup.hit:
        assert lookup.frame is not None
        return TranslationOutcome(vpn=vpn, frame=lookup.frame,
                                  tlb_level=lookup.level,
                                  tlb_latency_ns=lookup.latency_ns)
    mmu.walks += 1
    walk = _ref_walker_walk(mmu.walker, vpn)
    _ref_tlb_install(mmu.tlb, vpn, walk.frame)
    return TranslationOutcome(vpn=vpn, frame=walk.frame, tlb_level=0,
                              tlb_latency_ns=lookup.latency_ns,
                              walk_steps=walk.steps,
                              walk_cache_skips=walk.skipped_levels)


# ----------------------------------------------------------------------
# FAM translator + STU (seed: boxed lookups, walks, verifications)
# ----------------------------------------------------------------------
def _ref_translator_lookup(translator: FamTranslator, node_page: int,
                           now: float) -> TranslatorLookup:
    served = translator.dram.access(translator.row_address(node_page), now,
                                    is_write=False,
                                    kind=RequestKind.NODE_PTW)
    t = served + _TAG_MATCH_NS
    fam_page = translator.cache.lookup(node_page)
    if fam_page is None:
        translator.stats.incr("misses")
    else:
        translator.stats.incr("hits")
    return TranslatorLookup(node_page=node_page, fam_page=fam_page,
                            completion_ns=t)


def _ref_translator_install(translator: FamTranslator, node_page: int,
                            fam_page: int, now: float) -> float:
    row = translator.row_address(node_page)
    read_done = translator.dram.access(row, now, is_write=False,
                                       kind=RequestKind.NODE_PTW)
    write_done = translator.dram.access(row, read_done, is_write=True,
                                        kind=RequestKind.NODE_PTW)
    _ref_fill(translator.cache._cache, node_page, fam_page)
    translator.cache.stats.incr("installs")
    translator.stats.incr("updates")
    return write_done


def _ref_stu_walk(stu: Stu, node_page: int, now: float) -> WalkTiming:
    result = _ref_walker_walk(stu.walker, node_page)
    t = now if now > stu._ptw_busy_until else stu._ptw_busy_until
    if t > now:
        stu.stats.incr("ptw_queue_time", t - now)
    for step in result.steps:
        depart = stu.fabric.stu_to_fam_arrival(t)
        served = stu.fam.access(step.entry_addr, depart, is_write=False,
                                kind=RequestKind.FAM_PTW,
                                node_id=stu.node_id)
        t = stu.fabric.fam_to_stu_arrival(served)
    stu._ptw_busy_until = t
    stu.stats.incr("walks")
    stu.stats.incr("walk_accesses", len(result.steps))
    return WalkTiming(fam_page=result.frame, completion_ns=t,
                      memory_accesses=len(result.steps),
                      skipped_levels=result.skipped_levels)


def _ref_stu_verify(stu: Stu, fam_addr: int, now: float,
                    needed, enforce: bool = True) -> VerificationResult:
    layout = stu.acm_store.layout
    fam_page = layout.page_number(fam_addr)
    t = now + stu.config.lookup_ns
    organization = stu.organization
    acm_hit = organization.lookup(fam_page)
    if acm_hit:
        stu.stats.incr("acm.hits")
    else:
        stu.stats.incr("acm.misses")
        block_addr = layout.acm_block_addr(fam_addr)
        depart = stu.fabric.stu_to_fam_arrival(t)
        served = stu.fam.access(block_addr, depart, is_write=False,
                                kind=RequestKind.ACM, node_id=stu.node_id)
        t = stu.fabric.fam_to_stu_arrival(served)
        if isinstance(organization, DeactWAcmCache):
            _ref_fill(organization._cache,
                      organization._group(fam_page), True)
        else:
            _ref_fill(organization._cache, fam_page, True)
    allowed, consulted_bitmap = stu.acm_store.check(stu.node_id, fam_addr,
                                                    needed)
    if consulted_bitmap:
        bitmap_addr = layout.bitmap_block_addr(fam_addr, stu.node_id)
        depart = stu.fabric.stu_to_fam_arrival(t)
        served = stu.fam.access(bitmap_addr, depart, is_write=False,
                                kind=RequestKind.ACM, node_id=stu.node_id)
        t = stu.fabric.fam_to_stu_arrival(served)
        stu.stats.incr("bitmap_fetches")
    if not allowed:
        stu.stats.incr("violations")
        if enforce:
            raise AccessViolationError(
                f"{stu.name}: node {stu.node_id} denied {needed!r} "
                f"at FAM {fam_addr:#x}",
                node_id=stu.node_id, fam_addr=fam_addr)
    return VerificationResult(allowed=allowed, completion_ns=t,
                              acm_hit=acm_hit,
                              bitmap_fetched=consulted_bitmap)


def _ref_ifam_translate(stu: Stu, node_page: int,
                        now: float) -> Tuple[int, float, bool]:
    t = now + stu.config.lookup_ns
    fam_page = stu.organization.lookup(node_page)
    if fam_page is not None:
        stu.stats.incr("mapping.hits")
        return fam_page, t, True
    stu.stats.incr("mapping.misses")
    walk = _ref_stu_walk(stu, node_page, t)
    _ref_fill(stu.organization._cache, node_page, walk.fam_page)
    return walk.fam_page, walk.completion_ns, False


# ----------------------------------------------------------------------
# Architecture access procedures (seed bodies)
# ----------------------------------------------------------------------
def _ref_fam_access(node: Node, npa: int, now: float, is_write: bool,
                    kind: RequestKind) -> float:
    architecture = node.architecture
    if isinstance(architecture, EFam):
        fam_addr = architecture._fam_address(node, npa)
        depart = node.fabric.node_to_fam_arrival(now)
        served = node.fam.access(fam_addr, depart, is_write=is_write,
                                 kind=kind, node_id=node.node_id)
        if is_write:
            return served
        return node.fabric.fam_to_node_arrival(served)

    if isinstance(architecture, IFam):
        if node.stu is None:
            raise ProtocolError("I-FAM node has no STU attached")
        node_page = npa // PAGE_BYTES
        t = node.fabric.node_to_stu_arrival(now)
        fam_page, t, hit = _ref_ifam_translate(node.stu, node_page, t)
        node.stats.incr("stu.translation_hits" if hit
                        else "stu.translation_misses")
        fam_addr = fam_page * PAGE_BYTES + (npa % PAGE_BYTES)
        node.broker.acm.verify(node.node_id, fam_addr,
                               architecture._needed_permission(is_write))
        depart = node.fabric.stu_to_fam_arrival(t)
        served = node.fam.access(fam_addr, depart, is_write=is_write,
                                 kind=kind, node_id=node.node_id)
        if is_write:
            return served
        return node.fabric.fam_to_node_arrival(served)

    if not isinstance(architecture, _DeactBase):
        raise ProtocolError(
            f"reference path: unknown architecture {architecture!r}")
    if node.stu is None or node.fam_translator is None:
        raise ProtocolError("DeACT node missing STU or FAM translator")
    translator = node.fam_translator
    node_page = npa // PAGE_BYTES
    offset = npa % PAGE_BYTES
    needed = architecture._needed_permission(is_write)
    skip_verification = (node.stu.config.encrypted_memory_mode
                         and not is_write)
    lookup = _ref_translator_lookup(translator, node_page, now)
    if lookup.hit:
        fam_addr = lookup.fam_page * PAGE_BYTES + offset
        if not is_write:
            translator.register_response_mapping(
                _fresh_request_id(), fam_addr, npa)
        t = node.fabric.node_to_stu_arrival(lookup.completion_ns)
        if skip_verification:
            node.stats.incr("stu.reads_unverified")
        else:
            verification = _ref_stu_verify(node.stu, fam_addr, t,
                                           needed=needed)
            t = verification.completion_ns
    else:
        t = node.fabric.node_to_stu_arrival(lookup.completion_ns)
        walk = _ref_stu_walk(node.stu, node_page, t)
        fam_addr = walk.fam_page * PAGE_BYTES + offset
        if skip_verification:
            node.stats.incr("stu.reads_unverified")
            t = walk.completion_ns
        else:
            verification = _ref_stu_verify(node.stu, fam_addr,
                                           walk.completion_ns,
                                           needed=needed)
            t = verification.completion_ns
        mapping_at_node = node.fabric.stu_to_node_arrival(t)
        _ref_translator_install(translator, node_page, walk.fam_page,
                                mapping_at_node)
        if not is_write:
            translator.register_response_mapping(
                _fresh_request_id(), fam_addr, npa)
    depart = node.fabric.stu_to_fam_arrival(t)
    served = node.fam.access(fam_addr, depart, is_write=is_write,
                             kind=kind, node_id=node.node_id)
    if is_write:
        return served
    arrival = node.fabric.fam_to_node_arrival(served)
    translator.outstanding.resolve(_last_request_id())
    return arrival


# ----------------------------------------------------------------------
# Node memory path + per-event step (seed bodies)
# ----------------------------------------------------------------------
def _ref_memory_access(node: Node, npa: int, now: float, is_write: bool,
                       kind: RequestKind) -> float:
    if npa < node.fam_zone_base:
        node.stats.incr("mem.local")
        return node.dram.access(npa, now, is_write=is_write, kind=kind)
    node.stats.incr("mem.fam")
    if kind == RequestKind.DATA:
        node.stats.incr("mem.fam_data")
    return _ref_fam_access(node, npa, now, is_write, kind)


def _ref_cached_access(node: Node, npa: int, now: float, is_write: bool,
                       kind: RequestKind) -> Tuple[float, int]:
    result = _ref_hier_access(node.caches, npa, is_write)
    t = now + result.latency_ns
    for wb_addr in result.writebacks:
        _ref_memory_access(node, wb_addr, t, True, RequestKind.WRITEBACK)
    if result.hit:
        return t, result.level
    return _ref_memory_access(node, npa, t, is_write, kind), 0


def _ref_node_access(node: Node, vaddr: int, is_write: bool,
                     now: float) -> Tuple[float, int]:
    vpn = node.mmu.vpn_of(vaddr)
    if vpn not in node._mapped_vpns:
        node._handle_page_fault(vpn)
    outcome = _ref_mmu_translate(node.mmu, vaddr)
    t = now + outcome.tlb_latency_ns
    for step in outcome.walk_steps:
        t, _level = _ref_cached_access(node, step.entry_addr, t, False,
                                       RequestKind.NODE_PTW)
    npa = node.mmu.physical_address(outcome.frame, vaddr)
    return _ref_cached_access(node, npa, t, is_write, RequestKind.DATA)


def reference_step(node: Node, event: TraceEvent) -> float:
    """Advance ``node`` over one event through the seed path."""
    gap, vaddr, is_write, dependent = event
    node.instructions += gap + 1
    node.memory_events += 1
    node.core_time_ns += gap * node._slot_ns

    issue = node.window.admit(node.core_time_ns)
    completion, level = _ref_node_access(node, vaddr, is_write, issue)
    if level:
        node.core_time_ns = completion
    else:
        node.window.record(completion)
        if dependent and not is_write:
            node.core_time_ns = max(node.core_time_ns, completion)
        else:
            node.core_time_ns = max(node.core_time_ns,
                                    issue + node._slot_ns)
    return node.core_time_ns
