"""Whole-system assembly and the multi-node run driver.

:class:`FamSystem` builds the broker, fabric, FAM device and nodes for
a configuration + architecture, attaches per-node STUs (with walk
caches over each node's system page table), and runs one trace per
node with all nodes interleaved in global time order — so fabric-port
and FAM-bank contention between nodes is applied in the same order
real hardware would see (the mechanism behind Figure 16).

Since PR 10 the driver is *run-first*: the non-reference tiers consume
typed segment streams (see :mod:`repro.core.runplan`), and the
interleaved multi-node driver schedules whole segments across nodes —
proved runs pop whole (they touch no shared state), and cross-node
serialization happens only at scalar-segment boundaries, one length-1
segment at a time.  The scalar fast tier is the degenerate case where
every segment is scalar.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Union

from repro.broker.broker import MemoryBroker
from repro.config.system import SystemConfig
from repro.core.architectures import Architecture, make_architecture
from repro.core.batch import BatchExecutor, batch_supported
from repro.core.node import Node
from repro.core.results import RunResult
from repro.core.runplan import ScalarExecutor, SegmentStats
from repro.errors import ConfigError
from repro.fabric.network import FabricNetwork
from repro.mem.device import NvmDevice
from repro.pagetable.walker import PageTableWalker
from repro.stu.stu import Stu
from repro.workloads.trace import Trace

__all__ = ["FamSystem", "EXECUTION_MODES", "DEFAULT_EXECUTION_MODE"]

#: The three execution tiers, fastest first.  All are bit-identical
#: (``tests/test_hot_path_equivalence.py``); they differ only in how
#: much Python-level work each trace event costs.
EXECUTION_MODES = ("batch", "fast", "reference")
DEFAULT_EXECUTION_MODE = "batch"


class FamSystem:
    """A complete FAM system instance for one run."""

    def __init__(self, config: SystemConfig,
                 architecture: Union[str, Architecture],
                 seed: int = 0x5EED) -> None:
        self.config = config
        self.architecture = make_architecture(architecture)
        self.broker = MemoryBroker(config.fam, config.allocation,
                                   acm_bits=config.stu.acm_bits)
        self.fabric = FabricNetwork(config.fabric)
        self.fam = NvmDevice(config.fam)
        #: Per-segment-kind census of the last non-reference run
        #: (``None`` after a reference run, which has no plan layer).
        self.segment_stats: Optional[SegmentStats] = None
        self.nodes: List[Node] = []
        for node_id in range(config.nodes):
            self.broker.register_node(node_id)
            node = Node(node_id, config, self.broker, self.fabric,
                        self.fam, self.architecture,
                        seed=seed + node_id * 7919)
            if self.architecture.needs_stu:
                node.stu = self._build_stu(node_id)
            self.nodes.append(node)

    def _build_stu(self, node_id: int) -> Stu:
        """One STU per node, at the node's first-hop router."""
        organization = self.architecture.make_stu_organization(
            self.config.stu)
        walker = PageTableWalker(self.broker.system_table(node_id),
                                 self.config.stu.walk_cache_entries,
                                 name=f"stu{node_id}.ptw")
        return Stu(node_id, self.config.stu, self.broker.acm, walker,
                   self.fabric, self.fam, organization,
                   name=f"stu{node_id}")

    # ------------------------------------------------------------------
    def run(self, traces: Union[Trace, Sequence[Trace]],
            benchmark: Optional[str] = None,
            reference: bool = False,
            mode: Optional[str] = None,
            segment_timing: bool = False) -> RunResult:
        """Run one trace per node to completion.

        A single trace is replicated across nodes with per-node seeds
        already baked in by the caller; passing a sequence assigns
        ``traces[i]`` to node ``i``.

        Nodes advance in global core-time order, so their reservations
        on the shared fabric port and FAM banks interleave
        deterministically.

        ``mode`` selects the execution tier (all bit-identical, proved
        by ``tests/test_hot_path_equivalence.py``):

        * ``"batch"`` (default) — a :class:`~repro.core.runplan
          .RunPlanner` classifies the trace into typed segments
          (proved hit-runs, L2-refill extensions, scalar stretches)
          and :class:`~repro.core.batch.BatchExecutor` charges run
          segments with array arithmetic.  Falls back to ``"fast"``
          wholesale when the architecture or a node's
          policies/geometry fall outside the proved equivalence
          envelope (:func:`~repro.core.batch.batch_supported`).
        * ``"fast"`` — the degenerate segment stream: every segment
          is scalar, drained by the PR-2 allocation-free per-event
          loop (:meth:`~repro.core.node.Node.run_decoded` /
          :meth:`~repro.core.node.Node.step_fast`) via
          :class:`~repro.core.runplan.ScalarExecutor`.
        * ``"reference"`` — the boxed seed path preserved in
          :mod:`repro.core.refpath`, kept for the equivalence proof
          and the core-loop microbenchmark.  ``reference=True`` is the
          backward-compatible alias.  The only tier still consuming
          per-event :class:`TraceEvent` objects.

        Non-reference runs leave a per-segment-kind census in
        :attr:`segment_stats`; ``segment_timing=True`` additionally
        attributes wall clock per kind (``deact profile``), at the
        cost of two ``time.monotonic`` calls per segment.
        """
        if isinstance(traces, Trace):
            traces = [traces] * len(self.nodes)
        if len(traces) != len(self.nodes):
            raise ConfigError(
                f"got {len(traces)} traces for {len(self.nodes)} nodes")
        resolved = "reference" if reference else (
            mode or DEFAULT_EXECUTION_MODE)
        if resolved not in EXECUTION_MODES:
            raise ConfigError(
                f"unknown execution mode {resolved!r}; choose from "
                f"{', '.join(EXECUTION_MODES)}")
        if resolved == "batch" and not self.batch_capable():
            resolved = "fast"

        self.segment_stats = None
        if resolved == "reference":
            self._run_reference(traces)
        else:
            self._run_segments(traces, resolved, segment_timing)
        for node in self.nodes:
            node.drain()

        name = benchmark or (traces[0].name if traces else "unnamed")
        return RunResult(
            architecture=self.architecture.key,
            benchmark=name,
            nodes=[node.metrics() for node in self.nodes],
            fam_counters=self.fam.stats.snapshot(),
            fabric_counters=self.fabric.stats.snapshot(),
        )

    def batch_capable(self) -> bool:
        """Whether every node (and the architecture) sits inside the
        batch tier's proved-equivalence envelope."""
        return (self.architecture.supports_batch_runs
                and all(batch_supported(node) for node in self.nodes))

    def _run_segments(self, traces: Sequence[Trace], tier: str,
                      segment_timing: bool) -> None:
        """Run-first driver shared by the batch and fast tiers: build
        one segment executor per node and consume the streams —
        directly for a single node, through the interleaved scheduler
        otherwise."""
        page_bytes = self.config.page_bytes
        block_bytes = self.config.block_bytes
        executors: List[Union[BatchExecutor, ScalarExecutor]]
        if tier == "batch":
            executors = [
                BatchExecutor(node,
                              trace.decoded(page_bytes, block_bytes),
                              trace.decoded_arrays(page_bytes,
                                                   block_bytes))
                for node, trace in zip(self.nodes, traces)
            ]
        else:
            executors = [
                ScalarExecutor(node,
                               trace.decoded(page_bytes, block_bytes))
                for node, trace in zip(self.nodes, traces)
            ]
        if segment_timing:
            for executor in executors:
                executor.timed = True
        lengths = [len(trace) for trace in traces]
        if len(executors) == 1:
            executors[0].run(0, lengths[0])
        else:
            self._run_interleaved(executors, lengths)
        stats = SegmentStats()
        for executor in executors:
            stats.merge(executor.stats)
        self.segment_stats = stats

    def _run_interleaved(self,
                         executors: Sequence[Union[BatchExecutor,
                                                   ScalarExecutor]],
                         lengths: Sequence[int]) -> None:
        """Segment-scheduling interleaved driver: each heap pop hands
        one node's executor a scheduling step — a whole proved run
        (node-local by construction: hit-runs and their refill
        extensions touch no fabric/FAM/broker state, so collapsing a
        run cannot reorder any shared-resource access across nodes) or
        exactly one scalar event, which re-enters the heap with the
        same ``(core_time, node, cursor)`` key the seed per-event
        driver would use.  Under the fast tier every step is the
        scalar degenerate case, making this the per-event loop the
        seed path defined."""
        frontier = [(self.nodes[index].core_time_ns, index, 0)
                    for index in range(len(executors))
                    if lengths[index]]
        heapq.heapify(frontier)
        push, pop = heapq.heappush, heapq.heappop
        while frontier:
            _t, index, cursor = pop(frontier)
            cursor, node_time = executors[index].advance(cursor,
                                                         lengths[index])
            if cursor < lengths[index]:
                push(frontier, (node_time, index, cursor))

    def _run_reference(self, traces: Sequence[Trace]) -> None:
        """The seed per-event loop: boxed TraceEvents through
        :func:`repro.core.refpath.reference_step` (kept for the
        equivalence proof and the core-loop microbenchmark)."""
        from repro.core.refpath import reference_step  # avoid cycle

        iterators = [iter(trace) for trace in traces]
        frontier = []
        for index, iterator in enumerate(iterators):
            event = next(iterator, None)
            if event is not None:
                frontier.append((self.nodes[index].core_time_ns, index,
                                 event))
        heapq.heapify(frontier)
        while frontier:
            _t, index, event = heapq.heappop(frontier)
            node_time = reference_step(self.nodes[index], event)
            nxt = next(iterators[index], None)
            if nxt is not None:
                heapq.heappush(frontier, (node_time, index, nxt))

    # ------------------------------------------------------------------
    def tag_store_probes(self) -> int:
        """System-wide tag-store probe count (telemetry)."""
        return sum(node.tag_store_probes() for node in self.nodes)

    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]
