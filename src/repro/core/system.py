"""Whole-system assembly and the multi-node run driver.

:class:`FamSystem` builds the broker, fabric, FAM device and nodes for
a configuration + architecture, attaches per-node STUs (with walk
caches over each node's system page table), and runs one trace per
node with all nodes interleaved in global time order — so fabric-port
and FAM-bank contention between nodes is applied in the same order
real hardware would see (the mechanism behind Figure 16).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Union

from repro.broker.broker import MemoryBroker
from repro.config.system import SystemConfig
from repro.core.architectures import Architecture, make_architecture
from repro.core.node import Node
from repro.core.results import RunResult
from repro.errors import ConfigError
from repro.fabric.network import FabricNetwork
from repro.mem.device import NvmDevice
from repro.pagetable.walker import PageTableWalker
from repro.stu.stu import Stu
from repro.workloads.trace import Trace

__all__ = ["FamSystem"]


class FamSystem:
    """A complete FAM system instance for one run."""

    def __init__(self, config: SystemConfig,
                 architecture: Union[str, Architecture],
                 seed: int = 0x5EED) -> None:
        self.config = config
        self.architecture = make_architecture(architecture)
        self.broker = MemoryBroker(config.fam, config.allocation,
                                   acm_bits=config.stu.acm_bits)
        self.fabric = FabricNetwork(config.fabric)
        self.fam = NvmDevice(config.fam)
        self.nodes: List[Node] = []
        for node_id in range(config.nodes):
            self.broker.register_node(node_id)
            node = Node(node_id, config, self.broker, self.fabric,
                        self.fam, self.architecture,
                        seed=seed + node_id * 7919)
            if self.architecture.needs_stu:
                node.stu = self._build_stu(node_id)
            self.nodes.append(node)

    def _build_stu(self, node_id: int) -> Stu:
        """One STU per node, at the node's first-hop router."""
        organization = self.architecture.make_stu_organization(
            self.config.stu)
        walker = PageTableWalker(self.broker.system_table(node_id),
                                 self.config.stu.walk_cache_entries,
                                 name=f"stu{node_id}.ptw")
        return Stu(node_id, self.config.stu, self.broker.acm, walker,
                   self.fabric, self.fam, organization,
                   name=f"stu{node_id}")

    # ------------------------------------------------------------------
    def run(self, traces: Union[Trace, Sequence[Trace]],
            benchmark: Optional[str] = None) -> RunResult:
        """Run one trace per node to completion.

        A single trace is replicated across nodes with per-node seeds
        already baked in by the caller; passing a sequence assigns
        ``traces[i]`` to node ``i``.

        Nodes advance one trace event at a time in global core-time
        order, so their reservations on the shared fabric port and FAM
        banks interleave deterministically.
        """
        if isinstance(traces, Trace):
            traces = [traces] * len(self.nodes)
        if len(traces) != len(self.nodes):
            raise ConfigError(
                f"got {len(traces)} traces for {len(self.nodes)} nodes")

        iterators = [iter(trace) for trace in traces]
        # (core_time, node_index) heap; ties resolve by node index.
        frontier = []
        for index, iterator in enumerate(iterators):
            event = next(iterator, None)
            if event is not None:
                frontier.append((self.nodes[index].core_time_ns, index,
                                 event))
        heapq.heapify(frontier)
        while frontier:
            _t, index, event = heapq.heappop(frontier)
            node_time = self.nodes[index].step(event)
            nxt = next(iterators[index], None)
            if nxt is not None:
                heapq.heappush(frontier, (node_time, index, nxt))
        for node in self.nodes:
            node.drain()

        name = benchmark or (traces[0].name if traces else "unnamed")
        return RunResult(
            architecture=self.architecture.key,
            benchmark=name,
            nodes=[node.metrics() for node in self.nodes],
            fam_counters=self.fam.stats.snapshot(),
            fabric_counters=self.fabric.stats.snapshot(),
        )

    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]
