"""Whole-system assembly and the multi-node run driver.

:class:`FamSystem` builds the broker, fabric, FAM device and nodes for
a configuration + architecture, attaches per-node STUs (with walk
caches over each node's system page table), and runs one trace per
node with all nodes interleaved in global time order — so fabric-port
and FAM-bank contention between nodes is applied in the same order
real hardware would see (the mechanism behind Figure 16).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Union

from repro.broker.broker import MemoryBroker
from repro.config.system import SystemConfig
from repro.core.architectures import Architecture, make_architecture
from repro.core.node import Node
from repro.core.results import RunResult
from repro.errors import ConfigError
from repro.fabric.network import FabricNetwork
from repro.mem.device import NvmDevice
from repro.pagetable.walker import PageTableWalker
from repro.stu.stu import Stu
from repro.workloads.trace import Trace

__all__ = ["FamSystem"]


class FamSystem:
    """A complete FAM system instance for one run."""

    def __init__(self, config: SystemConfig,
                 architecture: Union[str, Architecture],
                 seed: int = 0x5EED) -> None:
        self.config = config
        self.architecture = make_architecture(architecture)
        self.broker = MemoryBroker(config.fam, config.allocation,
                                   acm_bits=config.stu.acm_bits)
        self.fabric = FabricNetwork(config.fabric)
        self.fam = NvmDevice(config.fam)
        self.nodes: List[Node] = []
        for node_id in range(config.nodes):
            self.broker.register_node(node_id)
            node = Node(node_id, config, self.broker, self.fabric,
                        self.fam, self.architecture,
                        seed=seed + node_id * 7919)
            if self.architecture.needs_stu:
                node.stu = self._build_stu(node_id)
            self.nodes.append(node)

    def _build_stu(self, node_id: int) -> Stu:
        """One STU per node, at the node's first-hop router."""
        organization = self.architecture.make_stu_organization(
            self.config.stu)
        walker = PageTableWalker(self.broker.system_table(node_id),
                                 self.config.stu.walk_cache_entries,
                                 name=f"stu{node_id}.ptw")
        return Stu(node_id, self.config.stu, self.broker.acm, walker,
                   self.fabric, self.fam, organization,
                   name=f"stu{node_id}")

    # ------------------------------------------------------------------
    def run(self, traces: Union[Trace, Sequence[Trace]],
            benchmark: Optional[str] = None,
            reference: bool = False) -> RunResult:
        """Run one trace per node to completion.

        A single trace is replicated across nodes with per-node seeds
        already baked in by the caller; passing a sequence assigns
        ``traces[i]`` to node ``i``.

        Nodes advance one trace event at a time in global core-time
        order, so their reservations on the shared fabric port and FAM
        banks interleave deterministically.

        By default events flow through the vectorized front-end
        (:meth:`~repro.workloads.trace.Trace.decoded`) and the
        allocation-free :meth:`~repro.core.node.Node.step_fast` path.
        ``reference=True`` drives the boxed seed path
        (:meth:`~repro.core.node.Node.step`) instead; the two are
        bit-identical (``tests/test_hot_path_equivalence.py``) and the
        reference exists for that proof and the core-loop
        microbenchmark.
        """
        if isinstance(traces, Trace):
            traces = [traces] * len(self.nodes)
        if len(traces) != len(self.nodes):
            raise ConfigError(
                f"got {len(traces)} traces for {len(self.nodes)} nodes")

        if reference:
            self._run_reference(traces)
        elif len(self.nodes) == 1:
            self.nodes[0].run_decoded(
                traces[0].decoded(self.config.page_bytes,
                                  self.config.block_bytes))
        else:
            self._run_interleaved(traces)
        for node in self.nodes:
            node.drain()

        name = benchmark or (traces[0].name if traces else "unnamed")
        return RunResult(
            architecture=self.architecture.key,
            benchmark=name,
            nodes=[node.metrics() for node in self.nodes],
            fam_counters=self.fam.stats.snapshot(),
            fabric_counters=self.fabric.stats.snapshot(),
        )

    def _run_interleaved(self, traces: Sequence[Trace]) -> None:
        """Multi-node fast path: pre-decoded columns consumed through a
        (core_time, node_index, cursor) heap."""
        page_bytes = self.config.page_bytes
        block_bytes = self.config.block_bytes
        decoded = [trace.decoded(page_bytes, block_bytes)
                   for trace in traces]
        # (core_time, node_index, cursor) heap; ties resolve by index.
        frontier = [(self.nodes[index].core_time_ns, index, 0)
                    for index, columns in enumerate(decoded)
                    if len(columns)]
        heapq.heapify(frontier)
        push, pop = heapq.heappush, heapq.heappop
        nodes = self.nodes
        while frontier:
            _t, index, cursor = pop(frontier)
            columns = decoded[index]
            node_time = nodes[index].step_fast(
                columns.gaps[cursor], columns.vpns[cursor],
                columns.offsets[cursor], columns.blocks[cursor],
                columns.writes[cursor], columns.dependents[cursor])
            cursor += 1
            if cursor < len(columns.gaps):
                push(frontier, (node_time, index, cursor))

    def _run_reference(self, traces: Sequence[Trace]) -> None:
        """The seed per-event loop: boxed TraceEvents through
        :func:`repro.core.refpath.reference_step` (kept for the
        equivalence proof and the core-loop microbenchmark)."""
        from repro.core.refpath import reference_step  # avoid cycle

        iterators = [iter(trace) for trace in traces]
        frontier = []
        for index, iterator in enumerate(iterators):
            event = next(iterator, None)
            if event is not None:
                frontier.append((self.nodes[index].core_time_ns, index,
                                 event))
        heapq.heapify(frontier)
        while frontier:
            _t, index, event = heapq.heappop(frontier)
            node_time = reference_step(self.nodes[index], event)
            nxt = next(iterators[index], None)
            if nxt is not None:
                heapq.heappush(frontier, (node_time, index, nxt))

    # ------------------------------------------------------------------
    def tag_store_probes(self) -> int:
        """System-wide tag-store probe count (telemetry)."""
        return sum(node.tag_store_probes() for node in self.nodes)

    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]
