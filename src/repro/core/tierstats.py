"""Compatibility shim: tier prediction moved into the run-plan layer.

PR 10 folded :class:`TierPredictor` into :mod:`repro.core.runplan`,
where tier selection is segment *classification* (the predictor sizes
the scalar segments and scan windows a
:class:`~repro.core.runplan.RunPlanner` emits) rather than a post-hoc
backoff bolted onto the batch executor.  This module re-exports the
public names so existing imports keep resolving; new code should
import from :mod:`repro.core.runplan` directly.
"""

from repro.core.runplan import (ALPHA, ALPHA_FAIL, MAX_SCALAR_STRETCH,
                                MAX_SCAN_WINDOW, MIN_SCALAR_STRETCH,
                                MIN_SCAN_WINDOW, TierPredictor)

__all__ = ["ALPHA", "ALPHA_FAIL", "MAX_SCALAR_STRETCH",
           "MAX_SCAN_WINDOW", "MIN_SCALAR_STRETCH", "MIN_SCAN_WINDOW",
           "TierPredictor"]
