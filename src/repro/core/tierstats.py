"""Stateful scalar-vs-scan tier prediction for the batch engine.

The batch tier's original policy was a pure exponential backoff: every
failed scan doubled a scalar stretch up to a cap, and any success reset
it to the base.  That policy has no memory — a single lucky run in a
miss-heavy phase resets the backoff and buys a fresh round of wasted
scans, while a long hit phase right after a miss phase still pays the
full doubling ladder down.

:class:`TierPredictor` replaces it with two exponentially weighted
moving averages observed per *scan attempt*:

* ``success_ewma`` — the probability that a scan attempt proves a
  chargeable run.  It decides how many events to run through the
  scalar loop before the next attempt: near 1.0 the predictor retries
  almost immediately, near 0.0 it converges on the maximum stretch, so
  a sustained miss phase pays one cheap vectorized scan per ~thousand
  events instead of one per failed backoff rung.
* ``run_len_ewma`` — the observed proved-run length.  It sizes the
  next scan window to about twice the recent run length, so the
  classifier neither scans far past the typical boundary nor grinds
  through many window-doubling passes.

Because the averages decay geometrically, the predictor tracks *trace
phases*: a workload that alternates hit-dominated and miss-heavy
regions re-converges to the right policy within ``~1/ALPHA`` attempts
of each transition.

Determinism: the predictor is pure arithmetic over observation
counts — no wall clock, no RNG — so tier selection never varies
between identical runs (DET001 applies to this module).  Tier choice
affects only wall-clock performance, never simulated results: every
tier is bit-identical by the batch-equivalence contract.
"""

from __future__ import annotations

__all__ = ["TierPredictor", "ALPHA", "ALPHA_FAIL"]

#: EWMA smoothing factor: an observation moves the average 1/8th of
#: the way to its value, so a phase transition is fully absorbed in
#: roughly a dozen scan attempts.
ALPHA = 0.125

#: Failure-side smoothing factor for ``success_ewma``.  Deliberately
#: asymmetric: a failed scan costs real vectorized work, so evidence
#: of a miss phase should push the stretch up quickly (halving the
#: ladder to the maximum stretch), while the *cost* of a pessimistic
#: estimate during a hit phase is tiny — after any successful scan the
#: driver retries immediately, without consulting the stretch at all.
ALPHA_FAIL = 0.25

#: Scalar-stretch bounds (events run scalar between scan attempts).
#: The floor keeps back-to-back attempts from re-scanning the same
#: boundary; the cap bounds how long a newly hit-dominated phase waits
#: before the predictor notices.
MIN_SCALAR_STRETCH = 24
MAX_SCALAR_STRETCH = 4096

#: Scan-window bounds (events classified per vectorized pass).
MIN_SCAN_WINDOW = 64
MAX_SCAN_WINDOW = 1 << 15


class TierPredictor:
    """Per-executor EWMA predictor for scalar-vs-scan decisions."""

    __slots__ = ("success_ewma", "run_len_ewma")

    def __init__(self) -> None:
        # Optimistic start: a fresh trace is scanned immediately, and
        # the first window is the minimum size.
        self.success_ewma = 1.0
        self.run_len_ewma = float(MIN_SCAN_WINDOW)

    def observe_run(self, length: int) -> None:
        """A scan attempt proved (and charged) a run of ``length``."""
        self.success_ewma += ALPHA * (1.0 - self.success_ewma)
        self.run_len_ewma += ALPHA * (length - self.run_len_ewma)

    def observe_failure(self) -> None:
        """A scan attempt found nothing chargeable."""
        self.success_ewma += ALPHA_FAIL * (0.0 - self.success_ewma)

    def scalar_stretch(self) -> int:
        """Events to run through the scalar loop after a failed scan.

        Geometric interpolation between the bounds on the success
        estimate: ``MIN`` at certainty, ``MAX`` at hopelessness.  The
        geometric (not linear) ramp matches the cost model — each
        failed scan costs O(window) vectorized work, so the stretch
        should grow multiplicatively as evidence of a miss phase
        accumulates, which is exactly what the old doubling backoff
        approximated without memory.
        """
        ratio = MAX_SCALAR_STRETCH / MIN_SCALAR_STRETCH
        return int(MIN_SCALAR_STRETCH * ratio ** (1.0 - self.success_ewma))

    def scan_window(self) -> int:
        """Initial classification window for the next scan attempt:
        about twice the recently observed run length, clamped."""
        window = int(2.0 * self.run_len_ewma)
        if window < MIN_SCAN_WINDOW:
            return MIN_SCAN_WINDOW
        if window > MAX_SCAN_WINDOW:
            return MAX_SCAN_WINDOW
        return window
