"""A compute node: core, caches, MMU, local DRAM, and the OS layer.

The node runs an aggregate memory-instruction trace through:

1. the **MMU** — TLB lookup, then a node page walk on a miss whose
   surviving steps are charged through the cache hierarchy and the
   memory path (page-table pages live in local DRAM or the FAM zone
   per the 20/80 placement policy, so walks can reach the FAM);
2. the **cache hierarchy** — inclusive L1/L2/L3;
3. the **memory path** — local DRAM for low node-physical addresses,
   or the architecture's FAM access procedure for the FAM zone.

The core model is an interval/outstanding-window hybrid: non-memory
instructions retire at ``cores x issue_width`` per cycle, on-chip cache
hits block briefly, LLC misses occupy one of ``max_outstanding`` slots
and stall the core only when the trace marks them dependent (pointer
chasing) or the window fills — reproducing memory-level parallelism
without cycle-accurate out-of-order simulation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.broker.broker import MemoryBroker
from repro.cache.hierarchy import CacheHierarchy
from repro.config.system import PAGE_BYTES, SystemConfig
from repro.fabric.network import FabricNetwork
from repro.mem.device import DramDevice, NvmDevice
from repro.mem.request import RequestKind
from repro.pagetable.x86 import FourLevelPageTable
from repro.sim.clock import Clock
from repro.sim.resource import OutstandingWindow
from repro.sim.stats import Stats
from repro.tlb.mmu import Mmu
from repro.translator.fam_translator import FamTranslator
from repro.workloads.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.architectures import Architecture
    from repro.core.results import NodeMetrics
    from repro.stu.stu import Stu

__all__ = ["Node"]


class Node:
    """One compute node attached to the fabric."""

    def __init__(self, node_id: int, config: SystemConfig,
                 broker: MemoryBroker, fabric: FabricNetwork,
                 fam: NvmDevice, architecture: "Architecture",
                 seed: int = 0) -> None:
        self.node_id = node_id
        self.config = config
        self.broker = broker
        self.fabric = fabric
        self.fam = fam
        self.architecture = architecture
        self.name = f"node{node_id}"

        self.clock = Clock(config.core.frequency_ghz)
        self.caches = CacheHierarchy(config.l1, config.l2, config.l3,
                                     name=self.name)
        self.dram = DramDevice(config.local_memory,
                               name=f"{self.name}.dram")
        self.stats = Stats(self.name)

        # --- node physical address map -------------------------------
        # [0, local_usable)            : local DRAM frames
        # [local_usable, local_size)   : FAM translation cache (DeACT)
        # [local_size, ...)            : the FAM NUMA zone
        tcache_bytes = (config.translation_cache.size_bytes
                        if architecture.uses_translator else 0)
        local_usable = config.local_memory.size_bytes - tcache_bytes
        self.fam_zone_base = config.local_memory.size_bytes
        self._local_frames_free = local_usable // PAGE_BYTES
        self._next_local_frame = 0
        self._next_fam_zone_page = self.fam_zone_base // PAGE_BYTES

        # --- OS layer -------------------------------------------------
        self._rng = random.Random(seed)
        self.page_table = FourLevelPageTable(self._allocate_os_frame,
                                             name=f"{self.name}.pt")
        # Mirror of the page table's mapped VPNs for the per-event
        # demand-paging check (O(1) vs a radix traversal).
        self._mapped_vpns = set()
        self.mmu = Mmu(self.page_table, config.tlb, config.ptw,
                       name=f"{self.name}.mmu")

        # --- DeACT attachments (populated per architecture) -----------
        self.fam_translator: Optional[FamTranslator] = None
        if architecture.uses_translator:
            self.fam_translator = FamTranslator(
                config.translation_cache, self.dram,
                region_base=local_usable, page_bytes=PAGE_BYTES,
                outstanding_capacity=config.fam.max_outstanding,
                name=f"{self.name}.translator", seed=seed)
        self.stu: Optional["Stu"] = None  # attached by FamSystem

        # --- core state -----------------------------------------------
        self.window = OutstandingWindow(config.core.max_outstanding,
                                        name=f"{self.name}.window")
        slots_per_cycle = config.core.issue_width * config.core.cores
        self._slot_ns = self.clock.period_ns / slots_per_cycle
        self.core_time_ns = 0.0
        self.instructions = 0
        self.memory_events = 0

    # ------------------------------------------------------------------
    # OS: frame allocation and demand paging
    # ------------------------------------------------------------------
    def _allocate_os_frame(self) -> int:
        """Allocate a node-physical frame (byte address).

        Applies the paper's placement split: ``local_fraction`` of
        pages from node DRAM, the rest from the FAM zone (footnote 3:
        20 % local / 80 % FAM).  FAM-zone pages are backed by the
        broker immediately — the Opal grant that also installs the
        system-page-table entry and the ACM.
        """
        want_local = self._rng.random() < self.config.allocation.local_fraction
        if want_local and self._local_frames_free > 0:
            frame = self._next_local_frame
            self._next_local_frame += 1
            self._local_frames_free -= 1
            self.stats.incr("frames.local")
            return frame * PAGE_BYTES
        node_page = self._next_fam_zone_page
        self._next_fam_zone_page += 1
        self.broker.ensure_mapped(self.node_id, node_page)
        self.stats.incr("frames.fam")
        return node_page * PAGE_BYTES

    def _handle_page_fault(self, vpn: int) -> None:
        """First touch of a virtual page: allocate and map a frame."""
        frame_addr = self._allocate_os_frame()
        self.page_table.map(vpn, frame_addr // PAGE_BYTES)
        self._mapped_vpns.add(vpn)
        self.stats.incr("page_faults")

    # ------------------------------------------------------------------
    # Memory path
    # ------------------------------------------------------------------
    def in_fam_zone(self, npa: int) -> bool:
        return npa >= self.fam_zone_base

    def memory_access(self, npa: int, now: float, is_write: bool,
                      kind: RequestKind) -> float:
        """LLC-miss path: local DRAM or the architecture's FAM access."""
        if npa < self.fam_zone_base:
            self.stats.incr("mem.local")
            return self.dram.access(npa, now, is_write=is_write, kind=kind)
        self.stats.incr("mem.fam")
        if kind == RequestKind.DATA:
            self.stats.incr("mem.fam_data")
        return self.architecture.fam_access(self, npa, now, is_write, kind)

    def cached_access(self, npa: int, now: float, is_write: bool,
                      kind: RequestKind) -> Tuple[float, int]:
        """Access through the cache hierarchy, falling through to the
        memory path on a full miss.

        Returns ``(completion_ns, level)`` with ``level`` 0 on a miss
        (served by memory) and 1..3 for cache hits.  Dirty write-backs
        are charged against memory bandwidth off the critical path.
        """
        result = self.caches.access(npa, write=is_write)
        t = now + result.latency_ns
        for wb_addr in result.writebacks:
            self.memory_access(wb_addr, t, True, RequestKind.WRITEBACK)
        if result.hit:
            return t, result.level
        return self.memory_access(npa, t, is_write, kind), 0

    def access(self, vaddr: int, is_write: bool,
               now: float) -> Tuple[float, int]:
        """One full virtual-address access: translate, then reference.

        Page-walk reads are serial (each level's address depends on
        the previous) and traverse the data caches like any other
        read — the paper's Figure 1 walk behaviour.
        """
        vpn = self.mmu.vpn_of(vaddr)
        if vpn not in self._mapped_vpns:
            self._handle_page_fault(vpn)
        outcome = self.mmu.translate(vaddr)
        t = now + outcome.tlb_latency_ns
        for step in outcome.walk_steps:
            t, _level = self.cached_access(step.entry_addr, t, False,
                                           RequestKind.NODE_PTW)
        npa = self.mmu.physical_address(outcome.frame, vaddr)
        return self.cached_access(npa, t, is_write, RequestKind.DATA)

    # ------------------------------------------------------------------
    # Core timing
    # ------------------------------------------------------------------
    def step(self, event: TraceEvent) -> float:
        """Advance the core over one trace event; returns core time."""
        gap, vaddr, is_write, dependent = event
        self.instructions += gap + 1
        self.memory_events += 1
        self.core_time_ns += gap * self._slot_ns

        issue = self.window.admit(self.core_time_ns)
        completion, level = self.access(vaddr, is_write, issue)
        if level:
            # On-chip hit: a short, effectively blocking latency.
            self.core_time_ns = completion
        else:
            self.window.record(completion)
            if dependent and not is_write:
                self.core_time_ns = max(self.core_time_ns, completion)
            else:
                self.core_time_ns = max(self.core_time_ns,
                                        issue + self._slot_ns)
        return self.core_time_ns

    def drain(self) -> float:
        """Wait for all outstanding requests; returns final time."""
        self.core_time_ns = max(self.core_time_ns,
                                self.window.latest_completion())
        return self.core_time_ns

    # ------------------------------------------------------------------
    def metrics(self) -> "NodeMetrics":
        """Snapshot the node's run outcome."""
        from repro.core.results import NodeMetrics

        end = max(self.core_time_ns, self.window.latest_completion())
        cycles = self.clock.ns_to_cycles(end)
        counters = self.stats.snapshot()
        return NodeMetrics(
            node_id=self.node_id,
            instructions=self.instructions,
            memory_accesses=self.memory_events,
            cycles=cycles,
            runtime_ns=end,
            llc_misses=self.caches.llc_miss_count(),
            fam_data_accesses=int(self.stats.get("mem.fam_data")),
            tlb_hit_rate=self.mmu.tlb.hit_rate,
            node_walks=self.mmu.walks,
            translation_hit_rate=self.architecture.translation_hit_rate(self),
            acm_hit_rate=self.architecture.acm_hit_rate(self),
            counters=counters,
        )
