"""A compute node: core, caches, MMU, local DRAM, and the OS layer.

The node runs an aggregate memory-instruction trace through:

1. the **MMU** — TLB lookup, then a node page walk on a miss whose
   surviving steps are charged through the cache hierarchy and the
   memory path (page-table pages live in local DRAM or the FAM zone
   per the 20/80 placement policy, so walks can reach the FAM);
2. the **cache hierarchy** — inclusive L1/L2/L3;
3. the **memory path** — local DRAM for low node-physical addresses,
   or the architecture's FAM access procedure for the FAM zone.

The core model is an interval/outstanding-window hybrid: non-memory
instructions retire at ``cores x issue_width`` per cycle, on-chip cache
hits block briefly, LLC misses occupy one of ``max_outstanding`` slots
and stall the core only when the trace marks them dependent (pointer
chasing) or the window fills — reproducing memory-level parallelism
without cycle-accurate out-of-order simulation.

In the run-first pipeline (PR 10, :mod:`repro.core.runplan`) this
module is the *scalar-segment drain*: :meth:`Node.step_fast` consumes
a length-1 segment — the degenerate case — and
:meth:`Node.run_decoded` / :meth:`Node.run_events` drain longer scalar
stretches.  Boxed :class:`TraceEvent` objects survive only in
:meth:`Node.step` and the :mod:`repro.core.refpath` oracle.
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.broker.broker import MemoryBroker
from repro.cache.hierarchy import CacheHierarchy
from repro.config.system import PAGE_BYTES, SystemConfig
from repro.core.hotpath import hot_path
from repro.fabric.network import FabricNetwork
from repro.mem.device import DramDevice, NvmDevice
from repro.mem.request import RequestKind
from repro.pagetable.x86 import FourLevelPageTable
from repro.sim.clock import Clock
from repro.sim.resource import OutstandingWindow
from repro.sim.stats import Stats
from repro.tlb.mmu import Mmu
from repro.translator.fam_translator import FamTranslator
from repro.workloads.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.architectures import Architecture
    from repro.core.results import NodeMetrics
    from repro.stu.stu import Stu
    from repro.workloads.trace import DecodedTrace

__all__ = ["Node"]

#: Enum attribute lookups hoisted off the per-event path.
_KIND_DATA = RequestKind.DATA
_KIND_NODE_PTW = RequestKind.NODE_PTW
_KIND_WRITEBACK = RequestKind.WRITEBACK


class Node:
    """One compute node attached to the fabric."""

    def __init__(self, node_id: int, config: SystemConfig,
                 broker: MemoryBroker, fabric: FabricNetwork,
                 fam: NvmDevice, architecture: "Architecture",
                 seed: int = 0) -> None:
        self.node_id = node_id
        self.config = config
        self.broker = broker
        self.fabric = fabric
        self.fam = fam
        self.architecture = architecture
        self.name = f"node{node_id}"

        self.clock = Clock(config.core.frequency_ghz)
        self.caches = CacheHierarchy(config.l1, config.l2, config.l3,
                                     name=self.name)
        self.dram = DramDevice(config.local_memory,
                               name=f"{self.name}.dram")
        self.stats = Stats(self.name)
        # Counter dict hoisted off the per-access path (Stats.incr is
        # a call per counter bump; the dict add is not).
        self._stat_counters = self.stats._counters

        # --- node physical address map -------------------------------
        # [0, local_usable)            : local DRAM frames
        # [local_usable, local_size)   : FAM translation cache (DeACT)
        # [local_size, ...)            : the FAM NUMA zone
        tcache_bytes = (config.translation_cache.size_bytes
                        if architecture.uses_translator else 0)
        local_usable = config.local_memory.size_bytes - tcache_bytes
        self.fam_zone_base = config.local_memory.size_bytes
        self._local_frames_free = local_usable // PAGE_BYTES
        self._next_local_frame = 0
        self._next_fam_zone_page = self.fam_zone_base // PAGE_BYTES

        # --- OS layer -------------------------------------------------
        self._rng = random.Random(seed)
        self.page_table = FourLevelPageTable(self._allocate_os_frame,
                                             name=f"{self.name}.pt")
        # Mirror of the page table's mapped VPNs for the per-event
        # demand-paging check (O(1) vs a radix traversal).
        self._mapped_vpns = set()
        self.mmu = Mmu(self.page_table, config.tlb, config.ptw,
                       name=f"{self.name}.mmu")

        # --- DeACT attachments (populated per architecture) -----------
        self.fam_translator: Optional[FamTranslator] = None
        if architecture.uses_translator:
            self.fam_translator = FamTranslator(
                config.translation_cache, self.dram,
                region_base=local_usable, page_bytes=PAGE_BYTES,
                outstanding_capacity=config.fam.max_outstanding,
                name=f"{self.name}.translator", seed=seed)
        self.stu: Optional["Stu"] = None  # attached by FamSystem

        # --- core state -----------------------------------------------
        self.window = OutstandingWindow(config.core.max_outstanding,
                                        name=f"{self.name}.window")
        slots_per_cycle = config.core.issue_width * config.core.cores
        self._slot_ns = self.clock.period_ns / slots_per_cycle
        self.core_time_ns = 0.0
        self.instructions = 0
        self.memory_events = 0

        # --- hot-path shift memoization -------------------------------
        # Page/block geometry is fixed per run, so the per-event address
        # arithmetic reduces to shifts/ors over pre-decoded trace
        # columns (see Trace.decoded / step_fast).
        self._page_shift = config.tlb.page_bytes.bit_length() - 1
        self._block_shift = self.caches.block_shift
        self._frame_block_shift = self._page_shift - self._block_shift

    # ------------------------------------------------------------------
    # OS: frame allocation and demand paging
    # ------------------------------------------------------------------
    def _allocate_os_frame(self) -> int:
        """Allocate a node-physical frame (byte address).

        Applies the paper's placement split: ``local_fraction`` of
        pages from node DRAM, the rest from the FAM zone (footnote 3:
        20 % local / 80 % FAM).  FAM-zone pages are backed by the
        broker immediately — the Opal grant that also installs the
        system-page-table entry and the ACM.
        """
        want_local = self._rng.random() < self.config.allocation.local_fraction
        if want_local and self._local_frames_free > 0:
            frame = self._next_local_frame
            self._next_local_frame += 1
            self._local_frames_free -= 1
            self.stats.incr("frames.local")
            return frame * PAGE_BYTES
        node_page = self._next_fam_zone_page
        self._next_fam_zone_page += 1
        self.broker.ensure_mapped(self.node_id, node_page)
        self.stats.incr("frames.fam")
        return node_page * PAGE_BYTES

    def _handle_page_fault(self, vpn: int) -> None:
        """First touch of a virtual page: allocate and map a frame."""
        frame_addr = self._allocate_os_frame()
        self.page_table.map(vpn, frame_addr // PAGE_BYTES)
        self._mapped_vpns.add(vpn)
        self.stats.incr("page_faults")

    # ------------------------------------------------------------------
    # Memory path
    # ------------------------------------------------------------------
    def in_fam_zone(self, npa: int) -> bool:
        return npa >= self.fam_zone_base

    def memory_access(self, npa: int, now: float, is_write: bool,
                      kind: RequestKind) -> float:
        """LLC-miss path: local DRAM or the architecture's FAM access."""
        if npa < self.fam_zone_base:
            self.stats.incr("mem.local")
            return self.dram.access(npa, now, is_write=is_write, kind=kind)
        self.stats.incr("mem.fam")
        if kind == RequestKind.DATA:
            self.stats.incr("mem.fam_data")
        return self.architecture.fam_access(self, npa, now, is_write, kind)

    def cached_access(self, npa: int, now: float, is_write: bool,
                      kind: RequestKind) -> Tuple[float, int]:
        """Access through the cache hierarchy, falling through to the
        memory path on a full miss.

        Returns ``(completion_ns, level)`` with ``level`` 0 on a miss
        (served by memory) and 1..3 for cache hits.  Dirty write-backs
        are charged against memory bandwidth off the critical path.
        """
        result = self.caches.access(npa, write=is_write)
        t = now + result.latency_ns
        for wb_addr in result.writebacks:
            self.memory_access(wb_addr, t, True, RequestKind.WRITEBACK)
        if result.hit:
            return t, result.level
        return self.memory_access(npa, t, is_write, kind), 0

    def access(self, vaddr: int, is_write: bool,
               now: float) -> Tuple[float, int]:
        """One full virtual-address access: translate, then reference.

        Page-walk reads are serial (each level's address depends on
        the previous) and traverse the data caches like any other
        read — the paper's Figure 1 walk behaviour.
        """
        vpn = self.mmu.vpn_of(vaddr)
        if vpn not in self._mapped_vpns:
            self._handle_page_fault(vpn)
        outcome = self.mmu.translate(vaddr)
        t = now + outcome.tlb_latency_ns
        for step in outcome.walk_steps:
            t, _level = self.cached_access(step.entry_addr, t, False,
                                           RequestKind.NODE_PTW)
        npa = self.mmu.physical_address(outcome.frame, vaddr)
        return self.cached_access(npa, t, is_write, RequestKind.DATA)

    # ------------------------------------------------------------------
    # Core timing
    # ------------------------------------------------------------------
    def step(self, event: TraceEvent) -> float:
        """Advance the core over one trace event; returns core time.

        This is the boxed *reference* path (the seed per-event loop),
        the only production-adjacent surface still consuming
        :class:`TraceEvent` objects; production runs drain typed
        segments through :meth:`step_fast`, and the hot-path
        equivalence suite proves both produce bit-identical stats.
        """
        gap, vaddr, is_write, dependent = event
        self.instructions += gap + 1
        self.memory_events += 1
        self.core_time_ns += gap * self._slot_ns

        issue = self.window.admit(self.core_time_ns)
        completion, level = self.access(vaddr, is_write, issue)
        if level:
            # On-chip hit: a short, effectively blocking latency.
            self.core_time_ns = completion
        else:
            self.window.record(completion)
            if dependent and not is_write:
                self.core_time_ns = max(self.core_time_ns, completion)
            else:
                self.core_time_ns = max(self.core_time_ns,
                                        issue + self._slot_ns)
        return self.core_time_ns

    # ------------------------------------------------------------------
    # Allocation-free per-event path
    # ------------------------------------------------------------------
    def _memory_access_fast(self, npa: int, now: float, is_write: bool,
                            kind: RequestKind) -> float:
        """Slim :meth:`memory_access` routing FAM-zone traffic through
        the architecture's allocation-free access procedure."""
        if npa < self.fam_zone_base:
            self._stat_counters["mem.local"] += 1.0
            return self.dram.access(npa, now, is_write=is_write, kind=kind)
        self._stat_counters["mem.fam"] += 1.0
        if kind is _KIND_DATA:
            self._stat_counters["mem.fam_data"] += 1.0
        return self.architecture.fam_access_fast(self, npa, now, is_write,
                                                 kind)

    @hot_path
    def _charge_block(self, block: int, addr: int, now: float,
                      is_write: bool, kind: RequestKind) -> float:
        """Charge one block access (page-walk step) through the cache
        hierarchy and, on a full miss, the memory path."""
        level, latency, writebacks = self.caches.access_fast(block, is_write)
        t = now + latency
        for wb_addr in writebacks:
            self._memory_access_fast(wb_addr, t, True, _KIND_WRITEBACK)
        if level:
            return t
        return self._memory_access_fast(addr, t, is_write, kind)

    def step_fast(self, gap: int, vpn: int, offset: int, blk: int,
                  is_write: bool, dependent: bool) -> float:
        """Advance the core over one pre-decoded trace event.

        ``vpn`` / ``offset`` / ``blk`` are the event's virtual page
        number, page offset and block-within-page, decomposed once per
        trace by :meth:`repro.workloads.trace.Trace.decoded` instead of
        re-derived per event.  No result boxing anywhere downstream:
        the TLB, hierarchy, translator and STU are all probed through
        their tuple/scalar entry points.
        """
        self.instructions += gap + 1
        self.memory_events += 1
        core_time = self.core_time_ns + gap * self._slot_ns
        issue = self.window.admit(core_time)

        # --- translate (TLB -> walker) --------------------------------
        if vpn not in self._mapped_vpns:
            self._handle_page_fault(vpn)
        frame, tlb_level, tlb_latency, walk_steps = \
            self.mmu.translate_fast(vpn)
        t = issue + tlb_latency
        if walk_steps:
            shift = self._block_shift
            for step in walk_steps:
                addr = step[1]  # WalkStep.entry_addr
                t = self._charge_block(addr >> shift, addr, t, False,
                                       _KIND_NODE_PTW)

        # --- reference the data block ---------------------------------
        block = (frame << self._frame_block_shift) | blk
        level, latency, writebacks = self.caches.access_fast(block, is_write)
        t += latency
        for wb_addr in writebacks:
            self._memory_access_fast(wb_addr, t, True, _KIND_WRITEBACK)
        if level:
            completion = t
        else:
            npa = (frame << self._page_shift) | offset
            completion = self._memory_access_fast(npa, t, is_write,
                                                  _KIND_DATA)

        # --- retire ---------------------------------------------------
        if level:
            self.core_time_ns = completion
            return completion
        self.window.record(completion)
        if dependent and not is_write:
            if completion < core_time:
                completion = core_time
            self.core_time_ns = completion
            return completion
        floor = issue + self._slot_ns
        if floor < core_time:
            floor = core_time
        self.core_time_ns = floor
        return floor

    @hot_path
    def run_decoded(self, decoded: "DecodedTrace", start: int = 0,
                    stop: Optional[int] = None) -> float:
        """Run a pre-decoded trace (or the window ``[start, stop)`` of
        it) on this node via the inlined scalar loop — the drain for
        multi-event scalar segments
        (:class:`~repro.core.runplan.ScalarExecutor`).

        Running a trace as any partition of windows is equivalent to
        one full run: the loop carries no state of its own beyond the
        node's.  Segment scheduling relies on this property; so does
        the windowed-interleave test suite.
        """
        events = zip(decoded.gaps, decoded.vpns, decoded.offsets,
                     decoded.blocks, decoded.writes, decoded.dependents)
        if start or stop is not None:
            events = islice(events, start, stop)
        return self.run_events(events)

    @hot_path
    def run_events(self, events: "Iterable[Tuple]") -> float:
        """Drain ``events`` — an iterable of pre-decoded
        ``(gap, vpn, offset, block, is_write, dependent)`` tuples —
        through the single-node fast loop.

        This is :meth:`step_fast`'s body inlined with every per-event
        attribute lookup hoisted into a local (multi-node runs
        interleave :meth:`step_fast` calls in global time order
        instead, where the heap dominates anyway).  Taking an iterator
        lets the batch tier (:mod:`repro.core.batch`) feed each scalar
        segment as a ``zip`` over sliced trace columns, so batched
        events never materialize event tuples at all.  Counter
        write-back happens in ``finally`` so a mid-trace access
        violation still leaves instruction/event counts sane.
        """
        window = self.window
        admit = window.admit
        record = window.record
        mmu = self.mmu
        translate_l1_missed = mmu.translate_after_l1_miss
        tlb_l1 = mmu.tlb.l1
        tlb_l1_sets = tlb_l1._sets
        tlb_l1_mask = tlb_l1._mask
        tlb_l1_n_sets = tlb_l1.n_sets
        caches = self.caches
        hier_l1_missed = caches.access_after_l1_miss
        data_l1 = caches._l1
        data_l1_sets = data_l1._sets
        data_l1_mask = data_l1._mask
        data_l1_n_sets = data_l1.n_sets
        data_l1_promote = data_l1._promote_on_hit
        lat1 = caches._lat1
        mapped_vpns = self._mapped_vpns
        page_fault = self._handle_page_fault
        charge_block = self._charge_block
        memory_access = self._memory_access_fast
        slot_ns = self._slot_ns
        block_shift = self._block_shift
        frame_block_shift = self._frame_block_shift
        page_shift = self._page_shift
        core_time = self.core_time_ns
        instructions = self.instructions
        translations = 0
        tlb_l1_hits = 0
        data_l1_hits = 0
        consumed = 0
        try:
            for gap, vpn, offset, blk, is_write, dependent in events:
                consumed += 1
                instructions += gap + 1
                core_time += gap * slot_ns
                issue = admit(core_time)

                # --- translate: L1 TLB probe inlined (always LRU) ----
                if vpn not in mapped_vpns:
                    page_fault(vpn)
                translations += 1
                lines = tlb_l1_sets[vpn & tlb_l1_mask if tlb_l1_mask >= 0
                                    else vpn % tlb_l1_n_sets]
                line = lines.get(vpn)
                if line is not None:
                    tlb_l1_hits += 1
                    lines.move_to_end(vpn)
                    frame = line[0]
                    t = issue  # + 0.0 ns L1 latency
                else:
                    tlb_l1.misses += 1
                    frame, _lvl, tlb_latency, walk_steps = \
                        translate_l1_missed(vpn)
                    t = issue + tlb_latency
                    if walk_steps:
                        for step in walk_steps:
                            addr = step[1]  # WalkStep.entry_addr
                            t = charge_block(addr >> block_shift, addr, t,
                                             False, _KIND_NODE_PTW)

                # --- data reference: L1 cache probe inlined ----------
                block = (frame << frame_block_shift) | blk
                lines = data_l1_sets[block & data_l1_mask
                                     if data_l1_mask >= 0
                                     else block % data_l1_n_sets]
                line = lines.get(block)
                if line is not None:
                    data_l1_hits += 1
                    if is_write:
                        line[1] = True
                    if data_l1_promote:
                        lines.move_to_end(block)
                    core_time = t + lat1
                    continue
                data_l1.misses += 1
                level, latency, writebacks = hier_l1_missed(block, is_write)
                t += latency
                if writebacks:
                    for wb_addr in writebacks:
                        memory_access(wb_addr, t, True, _KIND_WRITEBACK)
                if level:
                    core_time = t
                    continue
                completion = memory_access((frame << page_shift) | offset,
                                           t, is_write, _KIND_DATA)
                record(completion)
                if dependent and not is_write:
                    if completion > core_time:
                        core_time = completion
                else:
                    floor = issue + slot_ns
                    if floor > core_time:
                        core_time = floor
        finally:
            self.core_time_ns = core_time
            self.instructions = instructions
            self.memory_events += consumed
            mmu.translations += translations
            tlb_l1.hits += tlb_l1_hits
            data_l1.hits += data_l1_hits
        return core_time

    def drain(self) -> float:
        """Wait for all outstanding requests; returns final time."""
        self.core_time_ns = max(self.core_time_ns,
                                self.window.latest_completion())
        return self.core_time_ns

    # ------------------------------------------------------------------
    def tag_store_probes(self) -> int:
        """Total tag-store probes this node issued (telemetry): data
        caches, both TLB levels, walk caches, the STU organization and
        the in-DRAM translation cache."""
        probes = sum(cache.accesses for cache in self.caches.levels)
        probes += self.mmu.tlb.l1.accesses + self.mmu.tlb.l2.accesses
        probes += self.mmu.walker.cache_probes
        if self.stu is not None:
            if self.stu.organization is not None:
                probes += self.stu.organization.probes
            probes += self.stu.walker.cache_probes
        if self.fam_translator is not None:
            probes += self.fam_translator.cache.probes
        return probes

    # ------------------------------------------------------------------
    def metrics(self) -> "NodeMetrics":
        """Snapshot the node's run outcome."""
        from repro.core.results import NodeMetrics

        end = max(self.core_time_ns, self.window.latest_completion())
        cycles = self.clock.ns_to_cycles(end)
        counters = self.stats.snapshot()
        return NodeMetrics(
            node_id=self.node_id,
            instructions=self.instructions,
            memory_accesses=self.memory_events,
            cycles=cycles,
            runtime_ns=end,
            llc_misses=self.caches.llc_miss_count(),
            fam_data_accesses=int(self.stats.get("mem.fam_data")),
            tlb_hit_rate=self.mmu.tlb.hit_rate,
            node_walks=self.mmu.walks,
            translation_hit_rate=self.architecture.translation_hit_rate(self),
            acm_hit_rate=self.architecture.acm_hit_rate(self),
            counters=counters,
        )
