"""The four virtual-memory architectures (Table I).

Each architecture is a stateless strategy describing how a node's
FAM-zone access crosses the fabric:

* :class:`EFam` — exposed FAM: the node's OS was patched to know real
  FAM addresses, so the request goes straight to memory.  Fast, no STU,
  **no access control** (the insecure upper bound).
* :class:`IFam` — indirect FAM: the STU caches combined
  {mapping + ACM} entries and walks the system page table on misses
  (the state-of-the-art baseline, after Lim et al. [33] with
  Bhargava-style walk caches [8]).
* :class:`DeactW` / :class:`DeactN` — the contribution: translation is
  served from the node's in-DRAM FAM translation cache (unverified),
  and the STU only verifies access-control metadata, cached
  way-contiguously (W) or as non-contiguous sub-way pairs (N).

Strategies hold no per-node state — nodes carry their own STU and FAM
translator — so one instance can serve every node in a system.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type, Union

from repro.acm.metadata import Permission
from repro.config.system import PAGE_BYTES, StuConfig
from repro.core.node import Node
from repro.errors import ConfigError, ProtocolError
from repro.mem.request import RequestKind
from repro.stu.organizations import (
    DeactNAcmCache,
    DeactWAcmCache,
    IFamStuCache,
)

#: Enum attribute lookups hoisted off the per-access path.
_PERM_READ = Permission.READ
_PERM_WRITE = Permission.WRITE

#: Page geometry as shifts/masks for the fast access procedures
#: (PAGE_BYTES is a power of two; ``addr // PAGE_BYTES == addr >> SHIFT``
#: and ``page * PAGE_BYTES + offset == (page << SHIFT) | offset``).
_PAGE_SHIFT = PAGE_BYTES.bit_length() - 1
_PAGE_MASK = PAGE_BYTES - 1

__all__ = [
    "Architecture",
    "EFam",
    "IFam",
    "DeactW",
    "DeactN",
    "ARCHITECTURES",
    "make_architecture",
]


class Architecture(ABC):
    """Strategy interface for a FAM virtual-memory scheme."""

    #: Registry key and display name.
    key: str = "abstract"
    display_name: str = "abstract"
    #: Whether nodes need an STU attached.
    needs_stu: bool = True
    #: Whether nodes carry a FAM translator + in-DRAM translation cache.
    uses_translator: bool = False
    #: Table I columns.
    secure: bool = True
    avoids_os_changes: bool = True
    #: Whether the batch execution tier (:mod:`repro.core.batch`) may
    #: collapse this architecture's L1-hit runs.  True for every
    #: current architecture: a proved hit-run never reaches
    #: :meth:`fam_access_fast` (hits are served entirely on-chip), so
    #: the access procedure imposes no extra constraint.  An
    #: architecture that adds per-event work *outside* the FAM access
    #: path (e.g. a structure consulted even on L1 hits) must set this
    #: False until the batch equivalence argument is extended to it.
    supports_batch_runs: bool = True

    @abstractmethod
    def fam_access_fast(self, node: Node, npa: int, now: float,
                        is_write: bool, kind: RequestKind) -> float:
        """Carry one FAM-zone access from the node to completion.

        Returns the completion time seen by the node: the response
        arrival for reads, the service completion for (posted) writes.
        Implementations are allocation-free (this runs on the per-event
        hot path); the seed's boxed procedures are preserved in
        :mod:`repro.core.refpath`, and the hot-path equivalence suite
        pins the two to identical accounting.
        """

    def fam_access(self, node: Node, npa: int, now: float,
                   is_write: bool, kind: RequestKind) -> float:
        """Compatibility alias for :meth:`fam_access_fast` (non-hot
        callers and tests)."""
        return self.fam_access_fast(node, npa, now, is_write, kind)

    def make_stu_organization(self, config: StuConfig) -> Union[
            IFamStuCache, DeactWAcmCache, DeactNAcmCache, None]:
        """The STU cache organization this architecture uses."""
        return None

    def translation_hit_rate(self, node: Node) -> float:
        """System-translation hit rate (Figure 10) for this node."""
        return 1.0

    def acm_hit_rate(self, node: Node) -> float:
        """ACM hit rate (Figure 9) for this node."""
        return 1.0

    # ------------------------------------------------------------------
    @staticmethod
    def _fam_address(node: Node, npa: int) -> int:
        """Functional system translation (what the hardware's table
        lookup would produce) — timing is charged by callers."""
        node_page = npa // PAGE_BYTES
        fam_page = node.broker.translate(node.node_id, node_page)
        return fam_page * PAGE_BYTES + (npa % PAGE_BYTES)

    @staticmethod
    def _needed_permission(is_write: bool) -> Permission:
        return Permission.WRITE if is_write else Permission.READ


class EFam(Architecture):
    """Exposed FAM: no indirection, no verification (Table I row 1)."""

    key = "e-fam"
    display_name = "E-FAM"
    needs_stu = False
    uses_translator = False
    secure = False
    avoids_os_changes = False  # requires a patched kernel

    def fam_access_fast(self, node: Node, npa: int, now: float,
                        is_write: bool, kind: RequestKind) -> float:
        fam_page = node.broker.translate(node.node_id, npa >> _PAGE_SHIFT)
        fam_addr = (fam_page << _PAGE_SHIFT) | (npa & _PAGE_MASK)
        depart = node.fabric.node_to_fam_arrival(now)
        served = node.fam.access(fam_addr, depart, is_write=is_write,
                                 kind=kind, node_id=node.node_id)
        if is_write:
            return served
        return node.fabric.fam_to_node_arrival(served)


class IFam(Architecture):
    """Indirect FAM: STU-mediated two-level translation (the paper's
    secure-but-slow baseline)."""

    key = "i-fam"
    display_name = "I-FAM"
    needs_stu = True
    uses_translator = False

    def make_stu_organization(self, config: StuConfig) -> IFamStuCache:
        return IFamStuCache(config)

    def fam_access_fast(self, node: Node, npa: int, now: float,
                        is_write: bool, kind: RequestKind) -> float:
        stu = node.stu
        if stu is None:
            raise ProtocolError("I-FAM node has no STU attached")
        t = node.fabric.node_to_stu_arrival(now)
        fam_page, t, hit = stu.ifam_translate(npa >> _PAGE_SHIFT, t)
        if hit:
            node._stat_counters["stu.translation_hits"] += 1.0
        else:
            node._stat_counters["stu.translation_misses"] += 1.0
        fam_addr = (fam_page << _PAGE_SHIFT) | (npa & _PAGE_MASK)
        # Access control rides along with the cached mapping; the
        # decision itself is checked functionally against the
        # authoritative store.
        node.broker.acm.verify(node.node_id, fam_addr,
                               _PERM_WRITE if is_write else _PERM_READ)
        depart = node.fabric.stu_to_fam_arrival(t)
        served = node.fam.access(fam_addr, depart, is_write=is_write,
                                 kind=kind, node_id=node.node_id)
        if is_write:
            return served
        return node.fabric.fam_to_node_arrival(served)

    def translation_hit_rate(self, node: Node) -> float:
        org = node.stu.organization if node.stu else None
        return org.hit_rate if org is not None else 0.0

    def acm_hit_rate(self, node: Node) -> float:
        # In I-FAM the ACM is coupled to the mapping: one hit rate.
        return self.translation_hit_rate(node)


class _DeactBase(Architecture):
    """Shared DeACT machinery; subclasses choose the ACM organization."""

    needs_stu = True
    uses_translator = True

    def fam_access_fast(self, node: Node, npa: int, now: float,
                        is_write: bool, kind: RequestKind) -> float:
        stu = node.stu
        translator = node.fam_translator
        if stu is None or translator is None:
            raise ProtocolError("DeACT node missing STU or FAM translator")
        node_page = npa >> _PAGE_SHIFT
        offset = npa & _PAGE_MASK
        needed = _PERM_WRITE if is_write else _PERM_READ

        # Section III-A aside: with per-node memory encryption keys,
        # reads need no access-control check (stolen ciphertext is
        # useless); the STU only vets writes.
        skip_verification = (stu.config.encrypted_memory_mode
                             and not is_write)

        fam_page, lookup_done = translator.lookup_fast(node_page, now)
        if fam_page is not None:
            # Verified-flag path: node supplies the FAM address; the
            # STU only checks access control.
            fam_addr = (fam_page << _PAGE_SHIFT) | offset
            if not is_write:
                translator.register_response_mapping(
                    _fresh_request_id(), fam_addr, npa)
            t = node.fabric.node_to_stu_arrival(lookup_done)
            if skip_verification:
                node._stat_counters["stu.reads_unverified"] += 1.0
            else:
                t = stu.verify_access_fast(fam_addr, t, needed=needed)
        else:
            # V=0 path: the STU walks the system page table on behalf
            # of the FAM translator, then verifies.
            t = node.fabric.node_to_stu_arrival(lookup_done)
            fam_page, walk_done = stu.walk_system_table_fast(node_page, t)
            fam_addr = (fam_page << _PAGE_SHIFT) | offset
            if skip_verification:
                node._stat_counters["stu.reads_unverified"] += 1.0
                t = walk_done
            else:
                t = stu.verify_access_fast(fam_addr, walk_done,
                                           needed=needed)
            # Mapping response: the STU ships {node page -> FAM page}
            # back; the translator read-modify-writes its DRAM row.
            # Off the data's critical path but real DRAM bank work.
            mapping_at_node = node.fabric.stu_to_node_arrival(t)
            translator.install(node_page, fam_page, mapping_at_node)
            if not is_write:
                translator.register_response_mapping(
                    _fresh_request_id(), fam_addr, npa)

        depart = node.fabric.stu_to_fam_arrival(t)
        served = node.fam.access(fam_addr, depart, is_write=is_write,
                                 kind=kind, node_id=node.node_id)
        if is_write:
            return served
        arrival = node.fabric.fam_to_node_arrival(served)
        # Response re-addressing through the outstanding mapping list.
        translator.outstanding.resolve(_last_request_id())
        return arrival

    def translation_hit_rate(self, node: Node) -> float:
        return (node.fam_translator.hit_rate
                if node.fam_translator is not None else 0.0)

    def acm_hit_rate(self, node: Node) -> float:
        org = node.stu.organization if node.stu else None
        return org.hit_rate if org is not None else 0.0


# The outstanding-mapping list needs request identities; the simulator
# processes one FAM access at a time per call, so a module-level
# monotonic id is race-free and keeps the list exercised end to end.
_request_counter = 0


def _fresh_request_id() -> int:
    global _request_counter
    _request_counter += 1
    return _request_counter


def _last_request_id() -> int:
    return _request_counter


class DeactW(_DeactBase):
    """DeACT with way-contiguous ACM caching (Figure 8b)."""

    key = "deact-w"
    display_name = "DeACT-W"

    def make_stu_organization(self, config: StuConfig) -> DeactWAcmCache:
        return DeactWAcmCache(config)


class DeactN(_DeactBase):
    """DeACT with non-contiguous sub-way ACM caching (Figure 8c)."""

    key = "deact-n"
    display_name = "DeACT-N"

    def make_stu_organization(self, config: StuConfig) -> DeactNAcmCache:
        return DeactNAcmCache(config)


ARCHITECTURES: Dict[str, Type[Architecture]] = {
    cls.key: cls for cls in (EFam, IFam, DeactW, DeactN)
}


def make_architecture(name: Union[str, Architecture]) -> Architecture:
    """Instantiate an architecture by registry key (case-insensitive)."""
    if isinstance(name, Architecture):
        return name
    cls = ARCHITECTURES.get(name.lower())
    if cls is None:
        raise ConfigError(
            f"unknown architecture {name!r}; choose from "
            f"{', '.join(sorted(ARCHITECTURES))}")
    return cls()
