"""Run metrics and cross-run comparison helpers.

The paper's figures are all derived quantities — slowdowns and
speedups relative to E-FAM or I-FAM, hit rates, and traffic fractions —
so :class:`RunResult` keeps raw counters and exposes the derived views
as properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["NodeMetrics", "RunResult"]


@dataclass
class NodeMetrics:
    """Per-node outcome of one run.

    IPC is computed the way the paper validates its approach —
    instructions per core cycle over the simulated interval.
    """

    node_id: int
    instructions: int
    memory_accesses: int
    cycles: float
    runtime_ns: float
    llc_misses: int = 0
    fam_data_accesses: int = 0
    tlb_hit_rate: float = 0.0
    node_walks: int = 0
    translation_hit_rate: float = 0.0
    acm_hit_rate: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class RunResult:
    """Outcome of running one workload on one architecture."""

    architecture: str
    benchmark: str
    nodes: List[NodeMetrics]
    fam_counters: Dict[str, float] = field(default_factory=dict)
    fabric_counters: Dict[str, float] = field(default_factory=dict)
    #: Harness measurement metadata (wall time, events/sec, probe
    #: counts) attached by the experiment runner.  Excluded from
    #: equality: telemetry describes the *measurement*, not the
    #: simulated outcome, and wall clock is not deterministic.
    telemetry: Optional[Dict[str, float]] = field(
        default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Headline performance
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Aggregate IPC (instruction-weighted across nodes)."""
        total_instructions = sum(n.instructions for n in self.nodes)
        total_cycles = max((n.cycles for n in self.nodes), default=0.0)
        return total_instructions / total_cycles if total_cycles else 0.0

    @property
    def runtime_ns(self) -> float:
        """Wall-clock of the slowest node (the paper's multi-node
        figure tracks whole-system completion)."""
        return max((n.runtime_ns for n in self.nodes), default=0.0)

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC of this run divided by the baseline's (e.g. Figure 13's
        'speedup wrt I-FAM')."""
        if baseline.ipc == 0.0:
            return 0.0
        return self.ipc / baseline.ipc

    def slowdown_vs(self, reference: "RunResult") -> float:
        """How much slower this run is than ``reference`` (Figure 3's
        'slowdown of I-FAM wrt E-FAM')."""
        if self.ipc == 0.0:
            return float("inf")
        return reference.ipc / self.ipc

    def normalized_performance(self, reference: "RunResult") -> float:
        """This run's IPC normalized to ``reference`` (Figure 12)."""
        if reference.ipc == 0.0:
            return 0.0
        return self.ipc / reference.ipc

    # ------------------------------------------------------------------
    # Translation behaviour (Figures 4, 9, 10, 11)
    # ------------------------------------------------------------------
    @property
    def fam_at_fraction(self) -> float:
        """Fraction of requests observed at the FAM that are address
        translation (Figures 4 and 11)."""
        total = self.fam_counters.get("accesses", 0.0)
        if not total:
            return 0.0
        return self.fam_counters.get("at_accesses", 0.0) / total

    @property
    def translation_hit_rate(self) -> float:
        """FAM address-translation hit rate (Figure 10): the STU cache
        for I-FAM, the in-DRAM translation cache for DeACT."""
        rates = [n.translation_hit_rate for n in self.nodes]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def acm_hit_rate(self) -> float:
        """Access-control-metadata hit rate (Figure 9)."""
        rates = [n.acm_hit_rate for n in self.nodes]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def mpki(self) -> float:
        """Measured LLC misses per kilo-instruction (Table III check)."""
        instructions = sum(n.instructions for n in self.nodes)
        misses = sum(n.llc_misses for n in self.nodes)
        return 1000.0 * misses / instructions if instructions else 0.0

    def node(self, node_id: int) -> Optional[NodeMetrics]:
        for metrics in self.nodes:
            if metrics.node_id == node_id:
                return metrics
        return None
