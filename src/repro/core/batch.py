"""The batch execution tier: charge hit-runs with array arithmetic.

The scalar fast path (PR 2) made each trace event allocation-free but
still costs one Python-level iteration per event.  This module removes
that too for the dominant event class: *hit-runs* — maximal stretches
of consecutive events that provably hit both the L1 TLB and the L1
data cache under the node's current state.

**Why a hit-run can be proved in advance.**  An L1 TLB + L1 data hit
touches only node-local state and performs no fill, eviction or RNG
draw, so the *resident key sets* of both structures are invariant
across the whole run; recency and dirty bits change, membership does
not.  Membership at the run's start therefore decides every event in
the run: the scanner mirrors each tag store's resident keys into a
sorted NumPy array (rebuilt only when the store's
``membership_stamp`` moves) and classifies a whole window of decoded
events with two ``searchsorted`` passes — VPN against the TLB mirror
(which also yields the frame, fixed per VPN while mapped), then
``frame << s | block`` against the L1 mirror.  The run ends at the
first event that cannot be proved a hit; everything from there flows
through the scalar fast path (misses, evictions, page faults,
walks — all the state the mirrors cannot see ahead of).

**Why charging a run in one shot is exact** (see
``docs/batch-equivalence.md`` for the full per-policy argument):

* *Core clock*: the scalar loop advances
  ``t = (t + gap * slot_ns) + lat1`` per event.  ``np.add.accumulate``
  over the interleaved increments performs the identical sequence of
  IEEE-754 additions, so the run's final core time is bit-identical.
* *Recency*: LRU promotion commutes within a run — only each set's
  final order is observable, which ranks touched keys by **last**
  occurrence; :meth:`SetAssociativeCache.touch_run` replays exactly
  that.  FIFO/random hits never reorder and draw no RNG.
* *Counters*: hits/translations/instructions/admissions are integer
  sums.
* *Outstanding window*: a run admits without recording, so as long as
  the window is not full at the run's start (checked after draining
  completed requests) no event in the run can stall; skipped per-event
  drains are recovered by the next ``admit``'s own drain, and popped
  entries are always ≤ the final core time, leaving
  ``latest_completion`` semantics unchanged.

Any policy or geometry for which these arguments have not been made
must not reach this tier: :func:`batch_supported` gates on the known
replacement policies, and :class:`FamSystem` falls back to the scalar
fast path when it returns ``False``.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import Node
    from repro.workloads.trace import DecodedArrays, DecodedTrace

__all__ = ["BatchExecutor", "batch_supported", "charge_clock_run"]

#: Minimum proved-hit-run length worth charging as a batch; shorter
#: runs are cheaper through the scalar loop than through the handful
#: of NumPy calls a batched charge costs.
MIN_RUN = 12

#: Scalar-stretch backoff after a failed scan: run this many events
#: through the scalar loop before trying to prove a run again,
#: doubling up to the cap while scans keep failing.  Bounds mirror
#: rebuilds and wasted scans to a vanishing fraction of a miss-heavy
#: phase.
BASE_SCALAR_STRETCH = 24
MAX_SCALAR_STRETCH = 1024

#: Adaptive classification window: scan this many events per pass,
#: sized to roughly twice the recently observed run length.
MIN_SCAN_WINDOW = 64
MAX_SCAN_WINDOW = 1 << 15

#: Replacement policies whose hit-run recency semantics are proved
#: batchable (the ``touch_run`` argument).  Anything else bails out
#: to the scalar tier.
BATCHABLE_POLICIES = frozenset(("lru", "fifo", "random"))

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def batch_supported(node: "Node") -> bool:
    """Whether ``node``'s structures admit the batch tier's
    equivalence argument.

    The L1 TLB must be LRU (it is, by construction) and the L1 data
    cache's policy must be one whose hit-run recency replay is proved
    (:data:`BATCHABLE_POLICIES`).  Outer levels and every other
    structure are only ever touched by scalar-path events, so they
    impose no constraint.
    """
    return (node.mmu.tlb.l1.policy_name == "lru"
            and node.caches._l1.policy_name in BATCHABLE_POLICIES)


def charge_clock_run(core_time_ns: float, gaps_ns: np.ndarray,
                     hit_latency_ns: float) -> float:
    """Advance the core clock over a hit-run, bit-identically to the
    scalar loop's ``t = (t + gap_ns) + lat1`` per event.

    ``np.add.accumulate`` applies the same left-to-right sequence of
    IEEE-754 double additions the scalar loop performs (accumulation
    cannot be reassociated — each partial sum is an output), so the
    returned time is exactly the scalar result.
    """
    k = len(gaps_ns)
    seg = np.empty(2 * k + 1)
    seg[0] = core_time_ns
    seg[1::2] = gaps_ns
    seg[2::2] = hit_latency_ns
    return float(np.add.accumulate(seg)[-1])


def last_touch_order(keys: np.ndarray) -> List[int]:
    """Distinct keys of a run ordered by each key's *last* occurrence
    (ascending), i.e. the order in which one LRU promotion per key
    reproduces the per-event promotion sequence's final state."""
    rev = keys[::-1]
    uniques, first_in_rev = np.unique(rev, return_index=True)
    if uniques.size == 1:
        return uniques.tolist()
    # First occurrence in the reversed run == last occurrence in the
    # original; ascending last-occurrence == descending reversed index.
    return uniques[np.argsort(-first_in_rev)].tolist()


class _Mirror:
    """Sorted-array view of one tag store's resident keys (and
    optionally their payloads), rebuilt lazily on stamp change."""

    __slots__ = ("keys", "values", "stamp")

    def __init__(self) -> None:
        self.keys = _EMPTY_I64
        self.values = _EMPTY_I64
        self.stamp = -1


class BatchExecutor:
    """Per-(node, trace) driver of the batch tier.

    Two entry points:

    * :meth:`run` — the single-node loop: alternate proved hit-runs
      with windowed scalar stretches until the trace is consumed.
    * :meth:`advance` — one step for the multi-node interleaved
      driver: consume either one proved run (hit-runs touch no shared
      state, so collapsing them cannot reorder any fabric/FAM/broker
      access across nodes) or exactly one scalar event (scalar events
      *do* touch shared state and must keep their global heap order).
    """

    __slots__ = ("node", "decoded", "vpns", "blocks", "gaps", "writes",
                 "gaps_ns", "_lat1", "_fbs", "_tlb_l1", "_l1",
                 "_tlb_mirror", "_l1_mirror", "_scan_window",
                 "_backoff", "_scalar_budget")

    def __init__(self, node: "Node", decoded: "DecodedTrace",
                 arrays: "DecodedArrays") -> None:
        self.node = node
        self.decoded = decoded
        self.vpns = arrays.vpns
        self.blocks = arrays.blocks
        self.gaps = arrays.gaps
        self.writes = arrays.writes
        self.gaps_ns = arrays.gaps * node._slot_ns
        self._lat1 = node.caches._lat1
        self._fbs = node._frame_block_shift
        self._tlb_l1 = node.mmu.tlb.l1
        self._l1 = node.caches._l1
        self._tlb_mirror = _Mirror()
        self._l1_mirror = _Mirror()
        self._scan_window = MIN_SCAN_WINDOW
        self._backoff = BASE_SCALAR_STRETCH
        self._scalar_budget = 0

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run(self, start: int, stop: int) -> float:
        """Consume events ``[start, stop)`` on this node (single-node
        loop), returning the node's core time.

        Scalar stretches drain a single persistent ``zip`` over the
        decoded columns (no per-window column slicing); batch runs
        fast-forward it at C speed.
        """
        node = self.node
        decoded = self.decoded
        events = zip(decoded.gaps, decoded.vpns, decoded.offsets,
                     decoded.blocks, decoded.writes, decoded.dependents)
        if start:
            deque(islice(events, start), maxlen=0)
        cursor = start
        while cursor < stop:
            if self._scalar_budget <= 0:
                k = self._try_batch(cursor, stop)
                if k:
                    cursor += k
                    deque(islice(events, k), maxlen=0)
                    continue
                self._scalar_budget = self._backoff
                self._backoff = min(self._backoff * 2, MAX_SCALAR_STRETCH)
            stretch = min(self._scalar_budget, stop - cursor)
            node.run_events(islice(events, stretch))
            cursor += stretch
            self._scalar_budget = 0
        return node.core_time_ns

    def advance(self, cursor: int, stop: int) -> Tuple[int, float]:
        """One interleaved-driver step from ``cursor``: a proved run,
        or exactly one scalar event.  Returns ``(new_cursor,
        core_time)`` for the heap re-insert."""
        if self._scalar_budget <= 0:
            k = self._try_batch(cursor, stop)
            if k:
                return cursor + k, self.node.core_time_ns
            self._scalar_budget = self._backoff
            self._backoff = min(self._backoff * 2, MAX_SCALAR_STRETCH)
        self._scalar_budget -= 1
        d = self.decoded
        t = self.node.step_fast(d.gaps[cursor], d.vpns[cursor],
                                d.offsets[cursor], d.blocks[cursor],
                                d.writes[cursor], d.dependents[cursor])
        return cursor + 1, t

    # ------------------------------------------------------------------
    # Run proving and charging
    # ------------------------------------------------------------------
    def _try_batch(self, cursor: int, stop: int) -> int:
        """Prove and charge the maximal hit-run at ``cursor``; returns
        its length (0 when nothing provable/worthwhile)."""
        node = self.node
        window = node.window
        window.drain(node.core_time_ns)
        if window.is_full:
            # A full window can stall admits mid-run; let the scalar
            # path account the stall exactly.
            return 0
        self._refresh_mirrors()
        if not self._tlb_mirror.keys.size or not self._l1_mirror.keys.size:
            return 0
        k, boundary_known, pblocks = self._scan(cursor, stop)
        if k < MIN_RUN:
            return 0
        self._charge(cursor, k, pblocks)
        self._backoff = BASE_SCALAR_STRETCH
        # The event after a classified boundary is a certain non-hit
        # (membership did not change during the run): skip straight to
        # one scalar event instead of re-proving what we already know.
        self._scalar_budget = 1 if boundary_known else 0
        return k

    def _refresh_mirrors(self) -> None:
        tlb_l1 = self._tlb_l1
        mirror = self._tlb_mirror
        if mirror.stamp != tlb_l1.membership_stamp:
            keys: List[int] = []
            frames: List[int] = []
            for lines in tlb_l1._sets:
                for key, line in lines.items():
                    keys.append(key)
                    frames.append(line[0])
            karr = np.asarray(keys, dtype=np.int64)
            farr = np.asarray(frames, dtype=np.int64)
            order = np.argsort(karr)
            mirror.keys = karr[order]
            mirror.values = farr[order]
            mirror.stamp = tlb_l1.membership_stamp
        l1 = self._l1
        mirror = self._l1_mirror
        if mirror.stamp != l1.membership_stamp:
            mirror.keys = np.sort(np.asarray(
                [key for lines in l1._sets for key in lines],
                dtype=np.int64))
            mirror.stamp = l1.membership_stamp

    def _classify(self, cursor: int, n: int) -> Tuple[np.ndarray,
                                                      np.ndarray]:
        """Vectorized hit proof for events ``[cursor, cursor + n)``:
        returns ``(ok, pblocks)`` where ``ok[i]`` is True iff event i
        provably hits both L1 structures, and ``pblocks[i]`` is its
        physical block (valid where the TLB membership test passed)."""
        vseg = self.vpns[cursor:cursor + n]
        tlb_keys = self._tlb_mirror.keys
        pos = tlb_keys.searchsorted(vseg)
        np.minimum(pos, tlb_keys.size - 1, out=pos)
        tlb_ok = tlb_keys[pos] == vseg
        frames = self._tlb_mirror.values[pos]
        pblocks = (frames << self._fbs) | self.blocks[cursor:cursor + n]
        l1_keys = self._l1_mirror.keys
        dpos = l1_keys.searchsorted(pblocks)
        np.minimum(dpos, l1_keys.size - 1, out=dpos)
        ok = tlb_ok & (l1_keys[dpos] == pblocks)
        return ok, pblocks

    def _scan(self, cursor: int, stop: int) -> Tuple[int, bool,
                                                     np.ndarray]:
        """Maximal proved hit-run at ``cursor``: ``(length,
        boundary_classified, pblocks_of_run)``.  Scans an adaptive
        window, extending while fully hit."""
        remaining = stop - cursor
        w = min(self._scan_window, remaining)
        total = 0
        boundary_known = False
        parts: List[np.ndarray] = []
        while True:
            n = min(w, remaining - total)
            ok, pblocks = self._classify(cursor + total, n)
            miss = np.flatnonzero(~ok)
            k = int(miss[0]) if miss.size else n
            if k:
                parts.append(pblocks[:k])
            total += k
            if k < n:
                boundary_known = True
                break
            if total >= remaining:
                break
            w = min(w * 2, MAX_SCAN_WINDOW)
        self._scan_window = min(MAX_SCAN_WINDOW,
                                max(MIN_SCAN_WINDOW, 2 * total))
        if not parts:
            return 0, boundary_known, _EMPTY_I64
        run_blocks = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return total, boundary_known, run_blocks

    def _charge(self, cursor: int, k: int, pblocks: np.ndarray) -> None:
        """Apply the run's entire effect: clock, counters, recency,
        dirty bits — each proved equivalent to the per-event replay."""
        node = self.node
        node.core_time_ns = charge_clock_run(
            node.core_time_ns, self.gaps_ns[cursor:cursor + k], self._lat1)
        node.instructions += int(self.gaps[cursor:cursor + k].sum()) + k
        node.memory_events += k
        node.window.admissions += k
        node.mmu.translate_hit_run(
            k, last_touch_order(self.vpns[cursor:cursor + k]))
        wseg = self.writes[cursor:cursor + k]
        written: Sequence[int] = ()
        if wseg.any():
            written = np.unique(pblocks[wseg]).tolist()
        node.caches.l1_hit_run(k, last_touch_order(pblocks), written)
