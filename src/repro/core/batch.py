"""The batch execution tier: charge proved segments with array
arithmetic.

The scalar fast path (PR 2) made each trace event allocation-free but
still costs one Python-level iteration per event.  This tier removes
that too for the dominant event class: since PR 10 the
:mod:`repro.core.runplan` layer slices the trace into typed segments
(proved hit-runs, L2-refill extensions bridging them, and unproved
scalar stretches — see its module docstring for the provability and
overlay arguments), and :class:`BatchExecutor` is the segment
*consumer* — one ``_handle_<kind>`` per segment kind, dispatched off
:data:`~repro.core.runplan.SEGMENT_KINDS`:

* ``_handle_hit_run`` charges a proved pure-hit segment in one shot
  of array arithmetic;
* ``_handle_extension`` replays an L2-refill event exactly through
  the scalar :meth:`~repro.core.node.Node.step_fast` — the scalar
  step *is* the semantics, the plan only decides segmentation.  If a
  victim prediction were ever wrong the next charge would fault
  loudly (``touch_run`` raises on a non-resident key), not drift
  silently;
* ``_handle_scalar`` drains an unproved stretch through the scalar
  loop, with a length-1 segment — the degenerate case — stepping
  :meth:`~repro.core.node.Node.step_fast` directly.

These handlers are the batch side of the tier-parity surface: the
PAR001 rule machine-checks that every segment kind has a handler
anchored to a refpath-token-matched operation
(``docs/run-first-core.md``).

**Why charging a pure segment in one shot is exact** (see
``docs/batch-equivalence.md`` for the full per-policy argument):

* *Core clock*: the scalar loop advances
  ``t = (t + gap * slot_ns) + lat1`` per event.  ``np.add.accumulate``
  over the interleaved increments performs the identical sequence of
  IEEE-754 additions, so the segment's final core time is
  bit-identical.
* *Recency*: LRU promotion commutes within a segment — only each
  set's final order is observable, which ranks touched keys by
  **last** occurrence; :meth:`SetAssociativeCache.touch_run` replays
  exactly that.  FIFO/random hits never reorder and draw no RNG.
* *Counters*: hits/translations/instructions/admissions are integer
  sums.
* *Outstanding window*: hits and L2-refill events admit without
  recording, so as long as the window is not full at the run's start
  (checked by the planner after draining completed requests) no event
  in the run can stall; skipped per-event drains are recovered by the
  next ``admit``'s own drain, and popped entries are always ≤ the
  final core time, leaving ``latest_completion`` semantics unchanged.

Any policy or geometry for which these arguments have not been made
must not reach this tier: :func:`batch_supported` gates on the known
replacement policies (and the planner's
:data:`~repro.core.runplan.EXTENSION_POLICIES` gates the *data-side*
extension envelope within it), and :class:`FamSystem` falls back to
the scalar fast path when it returns ``False``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hotpath import hot_path
from repro.core.runplan import (EXTENSION, HIT_RUN, SCALAR, RunPlanner,
                                Segment, SegmentStats, last_touch_order)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import Node
    from repro.workloads.trace import DecodedArrays, DecodedTrace

__all__ = ["BatchExecutor", "batch_supported", "charge_clock_run",
           "last_touch_order"]

#: Replacement policies whose hit-run recency semantics are proved
#: batchable (the ``touch_run`` argument).  Anything else bails out
#: to the scalar tier.
BATCHABLE_POLICIES = frozenset(("lru", "fifo", "random"))


def batch_supported(node: "Node") -> bool:
    """Whether ``node``'s structures admit the batch tier's
    equivalence argument.

    The L1 TLB must be LRU (it is, by construction) and the L1 data
    cache's policy must be one whose hit-run recency replay is proved
    (:data:`BATCHABLE_POLICIES`).  Outer levels and every other
    structure are only ever touched by scalar-path events, so they
    impose no constraint.
    """
    return (node.mmu.tlb.l1.policy_name == "lru"
            and node.caches._l1.policy_name in BATCHABLE_POLICIES)


@hot_path
def charge_clock_run(core_time_ns: float, gaps_ns: np.ndarray,
                     hit_latency_ns: float) -> float:
    """Advance the core clock over a hit-run, bit-identically to the
    scalar loop's ``t = (t + gap_ns) + lat1`` per event.

    ``np.add.accumulate`` applies the same left-to-right sequence of
    IEEE-754 double additions the scalar loop performs (accumulation
    cannot be reassociated — each partial sum is an output), so the
    returned time is exactly the scalar result.
    """
    k = len(gaps_ns)
    seg = np.empty(2 * k + 1)
    seg[0] = core_time_ns
    seg[1::2] = gaps_ns
    seg[2::2] = hit_latency_ns
    return float(np.add.accumulate(seg)[-1])


class BatchExecutor:
    """Per-(node, trace) segment consumer of the batch tier.

    A :class:`~repro.core.runplan.RunPlanner` classifies the trace
    into typed segments; this executor dispatches each to its
    ``_handle_<kind>`` handler.  Two entry points:

    * :meth:`run` — the single-node loop: consume the planner's
      segment stream until the trace is exhausted.
    * :meth:`advance` — one step for the multi-node interleaved
      driver: consume either one whole proved run (its hit-run and
      extension segments back to back) or exactly one scalar event.
      Every event inside a proved run touches only node-local state
      (an L2 hit never reaches the fabric, FAM or broker, and never
      records into the outstanding window), so collapsing a run
      cannot reorder any shared-state access across nodes; unproved
      scalar events *do* touch shared state and must keep their
      global heap order — the driver serializes at scalar-segment
      boundaries, one length-1 segment at a time.

    ``planner`` is injectable: plugging a
    :class:`~repro.core.runplan.ScalarPlanner` degenerates this
    executor into the scalar tier (``tests/test_runplan.py`` pins
    that bit-identity), which is the refactor's core claim made
    executable.
    """

    __slots__ = ("node", "decoded", "vpns", "gaps", "writes",
                 "_slot_ns", "_lat1", "planner", "stats", "timed",
                 "_pending")

    def __init__(self, node: "Node", decoded: "DecodedTrace",
                 arrays: "DecodedArrays",
                 planner: Optional[RunPlanner] = None) -> None:
        self.node = node
        self.decoded = decoded
        self.vpns = arrays.vpns
        self.gaps = arrays.gaps
        self.writes = arrays.writes
        # gap -> ns conversion happens lazily per charged segment (an
        # elementwise multiply is bit-identical whether done whole-trace
        # or per-slice), so a miss-heavy trace that never proves a run
        # never pays the O(trace) float array.
        self._slot_ns = node._slot_ns
        self._lat1 = node.caches._lat1
        self.planner = (planner if planner is not None
                        else RunPlanner(node, arrays))
        self.stats = SegmentStats()
        self.timed = False
        #: Scalar segment left over from a proved run's classified
        #: boundary (or a planner stretch), consumed one event per
        #: :meth:`advance` call under the interleaved driver.
        self._pending: List[Segment] = []

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run(self, start: int, stop: int) -> float:
        """Consume events ``[start, stop)`` on this node (single-node
        loop), returning the node's core time."""
        node = self.node
        cursor = start
        while cursor < stop:
            for seg in self.planner.next_segments(cursor, stop):
                self._dispatch(seg)
                cursor = seg.start + seg.length
        return node.core_time_ns

    def advance(self, cursor: int, stop: int) -> Tuple[int, float]:
        """One interleaved-driver step from ``cursor``: a whole proved
        run, or exactly one scalar event.  Returns ``(new_cursor,
        core_time)`` for the heap re-insert."""
        pending = self._pending
        if not pending:
            segments = self.planner.next_segments(cursor, stop)
            if segments[0].kind != SCALAR:
                # A proved run: its hit-run and extension segments are
                # node-local, so the driver pops them whole.  The
                # run's classified boundary (a scalar segment the
                # planner appended) must rejoin the global heap order,
                # so it waits in the pending queue.
                pos = cursor
                for seg in segments:
                    if seg.kind == SCALAR:
                        pending.append(seg)
                        break
                    self._dispatch(seg)
                    pos = seg.start + seg.length
                return pos, self.node.core_time_ns
            pending.extend(segments)
        seg = pending[0]
        t0 = time.monotonic() if self.timed else 0.0
        d = self.decoded
        t = self.node.step_fast(d.gaps[cursor], d.vpns[cursor],
                                d.offsets[cursor], d.blocks[cursor],
                                d.writes[cursor], d.dependents[cursor])
        self.stats.observe(
            SCALAR, 1, time.monotonic() - t0 if self.timed else 0.0)
        seg.start += 1
        seg.length -= 1
        if seg.length <= 0:
            del pending[0]
        return cursor + 1, t

    def _dispatch(self, seg: Segment) -> None:
        """Route one segment to its kind handler, recording the
        per-kind census (and wall clock when timing is enabled)."""
        t0 = time.monotonic() if self.timed else 0.0
        kind = seg.kind
        if kind == HIT_RUN:
            self._handle_hit_run(seg.start, seg.length, seg.pblocks)
        elif kind == EXTENSION:
            self._handle_extension(seg.start)
        elif kind == SCALAR:
            self._handle_scalar(seg.start, seg.start + seg.length)
        else:
            raise ValueError(f"unknown segment kind: {kind!r}")
        self.stats.observe(
            kind, seg.length,
            time.monotonic() - t0 if self.timed else 0.0)

    # ------------------------------------------------------------------
    # Segment handlers (the PAR001 parity surface)
    # ------------------------------------------------------------------
    @hot_path
    def _handle_scalar(self, start: int, stop: int) -> None:
        """Drain one unproved scalar segment through the scalar loop:
        :meth:`~repro.core.node.Node.step_fast` for the length-1
        degenerate case, a per-segment ``zip`` over sliced decoded
        columns otherwise — batched events never materialize event
        tuples at all."""
        node = self.node
        d = self.decoded
        if stop - start == 1:
            node.step_fast(d.gaps[start], d.vpns[start], d.offsets[start],
                           d.blocks[start], d.writes[start],
                           d.dependents[start])
            return
        node.run_events(zip(d.gaps[start:stop], d.vpns[start:stop],
                            d.offsets[start:stop], d.blocks[start:stop],
                            d.writes[start:stop], d.dependents[start:stop]))

    @hot_path
    def _handle_extension(self, pos: int) -> None:
        """Replay one L2-refill extension event exactly through the
        scalar :meth:`~repro.core.node.Node.step_fast` — the plan
        proved the run *around* it, but the refill itself (fill,
        eviction, recency) executes with full scalar semantics."""
        d = self.decoded
        self.node.step_fast(d.gaps[pos], d.vpns[pos], d.offsets[pos],
                            d.blocks[pos], d.writes[pos],
                            d.dependents[pos])

    @hot_path
    def _handle_hit_run(self, cursor: int, k: int,
                        pblocks: np.ndarray) -> None:
        """Apply one pure-hit segment's entire effect: clock, counters,
        recency, dirty bits — each proved equivalent to the per-event
        replay."""
        node = self.node
        gaps = self.gaps[cursor:cursor + k]
        node.core_time_ns = charge_clock_run(
            node.core_time_ns, gaps * self._slot_ns, self._lat1)
        node.instructions += int(gaps.sum()) + k
        node.memory_events += k
        node.window.admissions += k
        node.mmu.translate_hit_run(
            k, last_touch_order(self.vpns[cursor:cursor + k]))
        wseg = self.writes[cursor:cursor + k]
        written: Sequence[int] = ()
        if k >= 512:
            lo = int(pblocks.min())
            span = int(pblocks.max()) - lo + 1
            if span <= k:
                # Dense-footprint fast path: when the segment's
                # physical blocks fit a span no wider than the segment
                # itself (a hot set re-touched many times over), one
                # O(k) scatter over the span replaces the O(k log k)
                # unique-sort — ``last[off] = arange(k)`` leaves each
                # touched slot holding its final occurrence index, so
                # ranking slots by that value is exactly the
                # last-touch order, and ascending slot position is
                # exactly the ascending written set.
                off = pblocks - lo
                last = np.full(span, -1, dtype=np.int64)
                last[off] = np.arange(k)
                present = np.flatnonzero(last >= 0)
                order = np.take(present + lo,
                                np.argsort(last[present])).tolist()
                if wseg.any():
                    wmask = np.zeros(span, dtype=bool)
                    wmask[off[wseg]] = True
                    written = (np.flatnonzero(wmask) + lo).tolist()
            else:
                # One unique/inverse pass serves both recency replay
                # and dirty-bit extraction —
                # ``np.unique(pblocks[wseg])`` would re-sort the
                # written subset from scratch, and both formulations
                # emit the written set ascending.
                uniques, inverse = np.unique(pblocks, return_inverse=True)
                last = np.empty(uniques.size, dtype=np.int64)
                last[inverse] = np.arange(k)
                order = np.take(uniques, np.argsort(last)).tolist()
                if wseg.any():
                    wmask = np.zeros(uniques.size, dtype=bool)
                    wmask[inverse[wseg]] = True
                    written = uniques[wmask].tolist()
        else:
            order = last_touch_order(pblocks)
            if wseg.any():
                written = np.unique(pblocks[wseg]).tolist()
        node.caches.l1_hit_run(k, order, written)
