"""The batch execution tier: charge hit-runs with array arithmetic.

The scalar fast path (PR 2) made each trace event allocation-free but
still costs one Python-level iteration per event.  This module removes
that too for the dominant event class: *hit-runs* — maximal stretches
of consecutive events that provably hit both the L1 TLB and the L1
data cache under the node's current state — and, since PR 8, runs
*extended* across the most common run-breaker, the L2 refill.

**Why a hit-run can be proved in advance.**  An L1 TLB + L1 data hit
touches only node-local state and performs no fill, eviction or RNG
draw, so the *resident key sets* of both structures are invariant
across the whole run; recency and dirty bits change, membership does
not.  Membership at the run's start therefore decides every event in
the run: the scanner mirrors each *L1* tag store's resident keys into a
sorted NumPy array and classifies a whole window of decoded events
with ``searchsorted`` passes — VPN against the TLB-L1 mirror (which
also yields the frame, fixed per VPN while mapped), then
``frame << s | block`` against the data-L1 mirror.  The L2 stores
are never mirrored: they matter only at the handful of non-pure
events per run, and their *membership* is invariant across a run's
events (refill hits promote recency only; displaced L1 victims are
discarded, not written back), so a scalar probe of the live store at
scan time is exact for every event in the run.

**Incremental mirrors.**  Mirrors are kept in sync through the tag
stores' membership *delta journal*
(:meth:`~repro.cache.cache.SetAssociativeCache.enable_journal`): each
sync replays only the ``(key, payload)`` records appended since the
mirror's last sequence number, applying them with ``searchsorted``
insert/delete instead of re-sorting the whole resident set.  A burst
of changes larger than a fraction of the mirror (or a journal
overflow/clear) falls back to a full rebuild — miss-heavy phases pay
O(deltas), not O(capacity), per scan attempt.

**Refill-extended runs.**  A TLB-L2 or data-L2 hit refills the L1
(:meth:`TwoLevelTlb.lookup_fast` / ``access_after_l1_miss``), which
changes L1 membership and used to end the run.  The scanner now keeps
scanning across such events using a *speculative overlay*: it applies
the predicted refill to copy-on-write overlay arrays — the key
inserted plus, when the target set is full, a deterministic victim
computed from the mirrored base order and the run's own touch history
(LRU and FIFO; see ``docs/batch-equivalence.md``).  The charge path
replays every extension event through the scalar
:meth:`Node.step_fast` — the scalar step *is* the semantics, the scan
only decides segmentation — so a run becomes an exact sequence of
batched pure-hit segments interleaved with exact scalar refills.  If
a prediction were ever wrong the charge would fault loudly
(``touch_run`` raises on a non-resident key), not drift silently.

**Why charging a pure segment in one shot is exact** (see
``docs/batch-equivalence.md`` for the full per-policy argument):

* *Core clock*: the scalar loop advances
  ``t = (t + gap * slot_ns) + lat1`` per event.  ``np.add.accumulate``
  over the interleaved increments performs the identical sequence of
  IEEE-754 additions, so the segment's final core time is
  bit-identical.
* *Recency*: LRU promotion commutes within a segment — only each
  set's final order is observable, which ranks touched keys by
  **last** occurrence; :meth:`SetAssociativeCache.touch_run` replays
  exactly that.  FIFO/random hits never reorder and draw no RNG.
* *Counters*: hits/translations/instructions/admissions are integer
  sums.
* *Outstanding window*: hits and L2-refill events admit without
  recording, so as long as the window is not full at the run's start
  (checked after draining completed requests) no event in the run can
  stall; skipped per-event drains are recovered by the next
  ``admit``'s own drain, and popped entries are always ≤ the final
  core time, leaving ``latest_completion`` semantics unchanged.

**Tier prediction.**  Whether to scan at all, and how far, is decided
by a stateful :class:`~repro.core.tierstats.TierPredictor` tracking
scan-success and run-length EWMAs per trace phase, replacing the old
memoryless exponential backoff — a miss-heavy phase converges to one
cheap vectorized scan per ~thousand events.

Any policy or geometry for which these arguments have not been made
must not reach this tier: :func:`batch_supported` gates on the known
replacement policies (and :data:`EXTENSION_POLICIES` gates the
*data-side* extension envelope within it), and :class:`FamSystem`
falls back to the scalar fast path when it returns ``False``.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.core.hotpath import hot_path
from repro.core.tierstats import MAX_SCAN_WINDOW, TierPredictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import SetAssociativeCache
    from repro.core.node import Node
    from repro.workloads.trace import DecodedArrays, DecodedTrace

__all__ = ["BatchExecutor", "batch_supported", "charge_clock_run",
           "last_touch_order"]

#: Minimum proved *pure-hit* event count worth charging as a batch;
#: shorter runs are cheaper through the scalar loop than through the
#: handful of NumPy calls a batched charge costs.  Extension events
#: replay through the scalar step anyway, so they do not count toward
#: the floor.
MIN_RUN = 12

#: Cap on L2-refill extensions per proved run.  Each extension costs a
#: victim prediction plus a vectorized re-classification of the window
#: remainder, so a refill-dense stretch is better finished through the
#: scalar loop than scanned one refill at a time.
MAX_RUN_EXTENSIONS = 64

#: Pure hits the run must have banked per extension (including the
#: one about to be speculated) before the scanner takes it.  Short-run
#: workloads (graph/solver phases with mean pure runs of 1–2 events)
#: otherwise pay dozens of victim predictions and window
#: re-classifications per failed scan, only to discard the plan at the
#: MIN_RUN check.  Stopping mid-extension is always sound: a scan may
#: end a run at any event, and the boundary is simply left
#: unclassified, exactly as at the MAX_RUN_EXTENSIONS cutoff.
EXTENSION_PURE_RATIO = 3

#: Replacement policies whose hit-run recency semantics are proved
#: batchable (the ``touch_run`` argument).  Anything else bails out
#: to the scalar tier.
BATCHABLE_POLICIES = frozenset(("lru", "fifo", "random"))

#: Data-L1 policies whose refill *victim* is deterministically
#: predictable from the mirrored set order (the run-extension
#: argument in ``docs/batch-equivalence.md``).  ``random`` draws the
#: victim from the store's RNG, which the scanner must not consume
#: speculatively — data-L2 hits end runs under it, while TLB-side
#: extension (both TLB levels are always LRU) stays available.
EXTENSION_POLICIES = frozenset(("lru", "fifo"))

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def batch_supported(node: "Node") -> bool:
    """Whether ``node``'s structures admit the batch tier's
    equivalence argument.

    The L1 TLB must be LRU (it is, by construction) and the L1 data
    cache's policy must be one whose hit-run recency replay is proved
    (:data:`BATCHABLE_POLICIES`).  Outer levels and every other
    structure are only ever touched by scalar-path events, so they
    impose no constraint.
    """
    return (node.mmu.tlb.l1.policy_name == "lru"
            and node.caches._l1.policy_name in BATCHABLE_POLICIES)


@hot_path
def charge_clock_run(core_time_ns: float, gaps_ns: np.ndarray,
                     hit_latency_ns: float) -> float:
    """Advance the core clock over a hit-run, bit-identically to the
    scalar loop's ``t = (t + gap_ns) + lat1`` per event.

    ``np.add.accumulate`` applies the same left-to-right sequence of
    IEEE-754 double additions the scalar loop performs (accumulation
    cannot be reassociated — each partial sum is an output), so the
    returned time is exactly the scalar result.
    """
    k = len(gaps_ns)
    seg = np.empty(2 * k + 1)
    seg[0] = core_time_ns
    seg[1::2] = gaps_ns
    seg[2::2] = hit_latency_ns
    return float(np.add.accumulate(seg)[-1])


@hot_path
def last_touch_order(keys: np.ndarray) -> List[int]:
    """Distinct keys of a run ordered by each key's *last* occurrence
    (ascending), i.e. the order in which one LRU promotion per key
    reproduces the per-event promotion sequence's final state."""
    if keys.size and keys[0] == keys[-1] and (keys == keys[0]).all():
        # Single-distinct fast path: a hit-run confined to one page
        # (the common case for the VPN column of a hot-set trace)
        # skips the O(k log k) unique-sort entirely.
        return keys[:1].tolist()
    if keys.size >= 512:
        # Scatter formulation: ``return_inverse`` costs one stable
        # sort where ``return_index`` costs a stable *argsort* plus a
        # gather, and the last-write-wins scatter replaces the second
        # full-length pass — 2-3x faster from a few hundred elements
        # up.  Output is identical to the small-run path below.
        uniques, inverse = np.unique(keys, return_inverse=True)
        last = np.empty(uniques.size, dtype=np.int64)
        last[inverse] = np.arange(keys.size)
        return uniques[np.argsort(last)].tolist()
    rev = keys[::-1]
    uniques, first_in_rev = np.unique(rev, return_index=True)
    if uniques.size == 1:
        return uniques.tolist()
    # First occurrence in the reversed run == last occurrence in the
    # original; ascending last-occurrence == descending reversed index.
    return uniques[np.argsort(-first_in_rev)].tolist()


@hot_path
def _member(keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``queries`` against sorted ``keys``."""
    if not keys.size:
        return np.zeros(queries.size, dtype=bool)
    # ``take(mode="clip")`` fuses the clamp and the gather into one
    # pass — this helper dominates scan cost on hit-heavy windows.
    pos = keys.searchsorted(queries)
    return np.take(keys, pos, mode="clip") == queries


@hot_path
def _member_values(keys: np.ndarray, values: np.ndarray,
                   queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized membership plus payload gather against a sorted
    mirror: ``(mask, payloads)`` with payloads valid where the mask
    is True."""
    if not keys.size:
        return (np.zeros(queries.size, dtype=bool),
                np.zeros(queries.size, dtype=np.int64))
    pos = keys.searchsorted(queries)
    return (np.take(keys, pos, mode="clip") == queries,
            np.take(values, pos, mode="clip"))


def _in_sorted(keys: np.ndarray, key: int) -> bool:
    """Scalar membership test against a sorted array."""
    pos = int(keys.searchsorted(key))
    return pos < keys.size and int(keys[pos]) == key


def _spliced(keys: np.ndarray, values: Optional[np.ndarray], key: int,
             value: int, victim: Optional[int]
             ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Copy-on-write overlay update: delete ``victim`` (when given)
    and insert ``key`` into sorted mirror arrays.  ``np.delete`` /
    ``np.insert`` return fresh arrays, so the base mirrors shared with
    the non-speculative state are never mutated."""
    if victim is not None:
        pos = int(keys.searchsorted(victim))
        keys = np.delete(keys, pos)
        if values is not None:
            values = np.delete(values, pos)
    pos = int(keys.searchsorted(key))
    keys = np.insert(keys, pos, key)
    if values is not None:
        values = np.insert(values, pos, value)
    return keys, values


class _Mirror:
    """Sorted-array view of one tag store's resident keys (and
    optionally their payloads), kept in sync through the store's
    membership delta journal."""

    __slots__ = ("keys", "values", "seq")

    def __init__(self, track_values: bool) -> None:
        self.keys = _EMPTY_I64
        self.values: Optional[np.ndarray] = (
            _EMPTY_I64 if track_values else None)
        #: Journal sequence number this mirror reflects; -1 forces the
        #: first sync through a full rebuild (the journal cannot know
        #: what was resident before it was enabled).
        self.seq = -1


def _rebuild_mirror(mirror: _Mirror, store: "SetAssociativeCache") -> None:
    """From-scratch mirror: every resident key (and payload), sorted."""
    if mirror.values is None:
        mirror.keys = np.sort(np.asarray(
            [key for lines in store._sets for key in lines],
            dtype=np.int64))
        return
    keys: List[int] = []
    values: List[int] = []
    for lines in store._sets:
        for key, line in lines.items():
            keys.append(key)
            values.append(line[0])
    karr = np.asarray(keys, dtype=np.int64)
    varr = np.asarray(values, dtype=np.int64)
    order = np.argsort(karr)
    mirror.keys = karr[order]
    mirror.values = varr[order]


def _apply_deltas(mirror: _Mirror,
                  deltas: Sequence[Tuple[int, object]]) -> None:
    """Replay journal deltas onto a sorted mirror.

    Only each key's *final* state matters (the journal is replayed in
    order into a dict first), so a key that bounced in and out of the
    store contributes at most one insert or one delete.  Deletions are
    batched into one ``np.delete`` and insertions into one sorted-merge
    ``np.insert``.
    """
    final: Dict[int, object] = {}
    for key, payload in deltas:
        final[key] = payload
    keys = mirror.keys
    values = mirror.values
    size = keys.size
    drops: List[int] = []
    add_keys: List[int] = []
    add_vals: List[int] = []
    for key, payload in final.items():
        pos = int(keys.searchsorted(key))
        present = pos < size and int(keys[pos]) == key
        if payload is None:
            if present:
                drops.append(pos)
        elif present:
            if values is not None:
                values[pos] = payload
        else:
            add_keys.append(key)
            add_vals.append(int(payload) if values is not None else 0)
    if drops:
        drops.sort()
        keys = np.delete(keys, drops)
        if values is not None:
            values = np.delete(values, drops)
    if add_keys:
        karr = np.asarray(add_keys, dtype=np.int64)
        order = np.argsort(karr, kind="stable")
        karr = karr[order]
        pos = keys.searchsorted(karr)
        keys = np.insert(keys, pos, karr)
        if values is not None:
            varr = np.asarray(add_vals, dtype=np.int64)[order]
            values = np.insert(values, pos, varr)
    mirror.keys = keys
    mirror.values = values


def _sync_mirror(mirror: _Mirror, store: "SetAssociativeCache") -> None:
    """Bring ``mirror`` up to the store's journal head: apply the
    deltas since the last sync, or rebuild when the journal cannot
    serve them (first sync, overflow, clear) or when the burst is so
    large that a re-sort is cheaper than per-key splicing."""
    seq, deltas = store.journal_since(mirror.seq)
    if seq == mirror.seq:
        return
    # Per-delta splicing costs roughly a microsecond of searchsorted
    # and list bookkeeping each, while a from-scratch rebuild of even
    # an L1-sized store is a few tens of microseconds — the break-even
    # burst is small.
    if deltas is None or len(deltas) > max(32, mirror.keys.size // 8):
        _rebuild_mirror(mirror, store)
    else:
        _apply_deltas(mirror, deltas)
    mirror.seq = seq


class BatchExecutor:
    """Per-(node, trace) driver of the batch tier.

    Two entry points:

    * :meth:`run` — the single-node loop: alternate proved hit-runs
      with windowed scalar stretches until the trace is consumed.
    * :meth:`advance` — one step for the multi-node interleaved
      driver: consume either one proved run or exactly one scalar
      event.  Every event inside a proved run — pure L1 hits *and*
      L2-refill extensions — touches only node-local state (an L2 hit
      never reaches the fabric, FAM or broker, and never records into
      the outstanding window), so collapsing a run cannot reorder any
      shared-state access across nodes; unproved scalar events *do*
      touch shared state and must keep their global heap order.
    """

    __slots__ = ("node", "decoded", "vpns", "blocks", "gaps", "writes",
                 "_slot_ns", "_lat1", "_fbs", "_tlb_l1", "_tlb_l2",
                 "_l1", "_l2", "_tlb_mirror", "_l1_mirror",
                 "_extend_data", "_predictor", "_scalar_budget")

    def __init__(self, node: "Node", decoded: "DecodedTrace",
                 arrays: "DecodedArrays") -> None:
        self.node = node
        self.decoded = decoded
        self.vpns = arrays.vpns
        self.blocks = arrays.blocks
        self.gaps = arrays.gaps
        self.writes = arrays.writes
        # gap -> ns conversion happens lazily per charged segment (an
        # elementwise multiply is bit-identical whether done whole-trace
        # or per-slice), so a miss-heavy trace that never proves a run
        # never pays the O(trace) float array.
        self._slot_ns = node._slot_ns
        self._lat1 = node.caches._lat1
        self._fbs = node._frame_block_shift
        self._tlb_l1 = node.mmu.tlb.l1
        self._tlb_l2 = node.mmu.tlb.l2
        self._l1 = node.caches._l1
        self._l2 = node.caches._l2
        self._extend_data = self._l1.policy_name in EXTENSION_POLICIES
        # Only the two *L1* stores are mirrored (their membership is
        # tested per event, vectorized).  The L2 stores are consulted
        # only at non-pure events — a handful per run — and their
        # membership is invariant across a run's events, so a scalar
        # probe of the live store at scan time is exact; mirroring
        # them would buy nothing and cost two syncs per scan plus a
        # journal append on every L2 fill.
        self._tlb_l1.enable_journal()
        self._l1.enable_journal()
        self._tlb_mirror = _Mirror(True)
        self._l1_mirror = _Mirror(False)
        self._predictor = TierPredictor()
        self._scalar_budget = 0

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run(self, start: int, stop: int) -> float:
        """Consume events ``[start, stop)`` on this node (single-node
        loop), returning the node's core time.

        Scalar stretches iterate a per-stretch ``zip`` over sliced
        decoded columns, so batched events never materialize event
        tuples at all — the old persistent-zip design paid a C-level
        fast-forward per charged run, which on hit-dominated traces
        meant building and discarding a tuple per *batched* event.
        """
        node = self.node
        d = self.decoded
        gaps = d.gaps
        vpns = d.vpns
        offsets = d.offsets
        blocks = d.blocks
        writes = d.writes
        dependents = d.dependents
        cursor = start
        while cursor < stop:
            if self._scalar_budget <= 0:
                k = self._try_batch(cursor, stop)
                if k:
                    cursor += k
                    continue
                self._scalar_budget = self._predictor.scalar_stretch()
            end = min(cursor + self._scalar_budget, stop)
            node.run_events(zip(gaps[cursor:end], vpns[cursor:end],
                                offsets[cursor:end], blocks[cursor:end],
                                writes[cursor:end],
                                dependents[cursor:end]))
            cursor = end
            self._scalar_budget = 0
        return node.core_time_ns

    def advance(self, cursor: int, stop: int) -> Tuple[int, float]:
        """One interleaved-driver step from ``cursor``: a proved run,
        or exactly one scalar event.  Returns ``(new_cursor,
        core_time)`` for the heap re-insert."""
        if self._scalar_budget <= 0:
            k = self._try_batch(cursor, stop)
            if k:
                return cursor + k, self.node.core_time_ns
            self._scalar_budget = self._predictor.scalar_stretch()
        self._scalar_budget -= 1
        d = self.decoded
        t = self.node.step_fast(d.gaps[cursor], d.vpns[cursor],
                                d.offsets[cursor], d.blocks[cursor],
                                d.writes[cursor], d.dependents[cursor])
        return cursor + 1, t

    # ------------------------------------------------------------------
    # Run proving and charging
    # ------------------------------------------------------------------
    def _try_batch(self, cursor: int, stop: int) -> int:
        """Prove and charge the maximal (refill-extended) hit-run at
        ``cursor``; returns its length (0 when nothing provable or
        worthwhile)."""
        node = self.node
        window = node.window
        window.drain(node.core_time_ns)
        if window.is_full:
            # A full window can stall admits mid-run; let the scalar
            # path account the stall exactly.
            return 0
        self._sync_mirrors()
        if not self._tlb_mirror.keys.size or not self._l1_mirror.keys.size:
            self._predictor.observe_failure()
            return 0
        total, n_ext, boundary_known, plan = self._scan(cursor, stop)
        if total - n_ext < MIN_RUN:
            self._predictor.observe_failure()
            return 0
        self._charge_plan(cursor, plan)
        self._predictor.observe_run(total)
        # The event after a classified boundary is a certain non-hit
        # (the overlay matches the post-charge state exactly): skip
        # straight to one scalar event instead of re-proving what we
        # already know.
        self._scalar_budget = 1 if boundary_known else 0
        return total

    def _sync_mirrors(self) -> None:
        _sync_mirror(self._tlb_mirror, self._tlb_l1)
        _sync_mirror(self._l1_mirror, self._l1)

    @hot_path
    def _scan(self, cursor: int, stop: int
              ) -> Tuple[int, int, bool,
                         List[Tuple[int, Optional[np.ndarray]]]]:
        """Prove the maximal refill-extended hit-run at ``cursor``.

        Returns ``(total, n_ext, boundary_classified, plan)`` where
        ``plan`` is the charge schedule: ``(k, pblocks)`` entries are
        pure-hit segments of ``k`` events, ``(0, None)`` entries are
        single L2-refill extension events to replay through the scalar
        step.  The scan mutates nothing — extensions are applied to
        copy-on-write overlay arrays, and victims are predicted from
        the stores' (still untouched) set order plus the run's own
        touch history.
        """
        remaining = stop - cursor
        extend_data = self._extend_data
        tlb_l2 = self._tlb_l2
        l2 = self._l2
        fbs = self._fbs
        vpns = self.vpns
        blocks = self.blocks
        tlb_keys = self._tlb_mirror.keys
        tlb_vals = self._tlb_mirror.values
        d_keys = self._l1_mirror.keys
        total = 0
        n_ext = 0
        boundary_known = False
        # Plan accumulators allocate once per *proved run*, not per
        # event — amortized over MIN_RUN+ batched events.
        plan: List[Tuple[int, Optional[np.ndarray]]] = []  # deact: allow(HOT001) per-run accumulator
        run_pblocks: List[np.ndarray] = []  # deact: allow(HOT001) per-run accumulator
        d_inserted: List[int] = []  # deact: allow(HOT001) per-run accumulator
        w = self._predictor.scan_window()
        done = False
        while not done:
            n = min(w, remaining - total)
            if n <= 0:
                break
            base = cursor + total
            vseg = vpns[base:base + n]
            bseg = blocks[base:base + n]
            # Only the L1 structures are classified vectorized.  Where
            # the TLB-L1 misses, ``frames`` (a clipped-position gather)
            # and everything derived from it are garbage — harmless,
            # because such an event is non-pure regardless, and the
            # scalar fix-up below recomputes its true pblock before it
            # can enter the plan.
            t1_hit, frames = _member_values(tlb_keys, tlb_vals, vseg)
            pblocks = (frames << fbs) | bseg
            d1_hit = _member(d_keys, pblocks)
            # One boundary-index pass per window (recomputed only
            # after an extension changes the overlay): walking the
            # precomputed non-pure positions keeps the window loop
            # O(n) instead of re-reducing the remainder per segment.
            nonpure = np.flatnonzero(~(t1_hit & d1_hit))
            np_ptr = 0
            pos = 0
            while pos < n:
                while np_ptr < nonpure.size and nonpure[np_ptr] < pos:
                    np_ptr += 1
                k = (int(nonpure[np_ptr])
                     if np_ptr < nonpure.size else n) - pos
                if k:
                    seg = pblocks[pos:pos + k]
                    plan.append((k, seg))
                    run_pblocks.append(seg)
                    total += k
                    pos += k
                if pos >= n:
                    break
                i = pos
                # Non-pure event: consult the live L2 stores directly.
                # L2 membership is invariant across a run's events (a
                # refill hit only promotes recency, and the displaced
                # L1 victim is discarded, not written back), so a
                # scan-time probe equals the L2 state at this event —
                # no mirror needed for structures touched this rarely.
                if t1_hit[i]:
                    pblock = int(pblocks[i])
                    d1 = False  # non-pure with a valid t1 => d1 miss
                else:
                    frame = tlb_l2.probe(int(vseg[i]))
                    if frame is None:
                        # Page walk (or fault): a genuine boundary.
                        boundary_known = True
                        done = True
                        break
                    pblock = (frame << fbs) | int(bseg[i])
                    pblocks[i] = pblock
                    d1 = _in_sorted(d_keys, pblock)
                if not d1 and not (extend_data and pblock in l2):
                    # L3 or memory (or an un-extendable data refill
                    # under random replacement): a genuine boundary.
                    boundary_known = True
                    done = True
                    break
                if (n_ext >= MAX_RUN_EXTENSIONS
                        or total - n_ext
                        < EXTENSION_PURE_RATIO * (n_ext + 1)):
                    # Refill-dense stretch (or one not banking enough
                    # pure hits to justify more speculation): stop
                    # extending, but the boundary event itself was NOT
                    # classified as a non-hit, so the next attempt
                    # must re-prove it.
                    done = True
                    break
                # L2-refill extension: predict the L1 fill's effect on
                # membership and keep scanning under the overlay.  The
                # charge path will replay this event exactly through
                # the scalar step.
                abs_i = base + i
                if not t1_hit[i]:
                    vpn = int(vseg[i])
                    victim = self._predict_victim_lru(
                        self._tlb_l1, tlb_keys, vpn, vpns[cursor:abs_i])
                    tlb_keys, tlb_vals = _spliced(
                        tlb_keys, tlb_vals, vpn, frame, victim)
                if not d1:
                    if len(run_pblocks) > 1:
                        # Flattened at most once per extension.
                        run_pblocks = [np.concatenate(run_pblocks)]  # deact: allow(HOT001) per-extension

                    activity = (run_pblocks[0] if run_pblocks
                                else _EMPTY_I64)
                    if self._l1._promote_on_hit:
                        victim = self._predict_victim_lru(
                            self._l1, d_keys, pblock, activity)
                    else:
                        victim = self._predict_victim_fifo(
                            self._l1, d_keys, pblock, d_inserted)
                    d_keys, _ = _spliced(d_keys, None, pblock, 0, victim)
                    d_inserted.append(pblock)
                plan.append((0, None))
                run_pblocks.append(pblocks[i:i + 1])
                total += 1
                n_ext += 1
                pos += 1
                if pos < n:
                    # Membership changed under the overlay: reclassify
                    # the window remainder against the new arrays.
                    vs = vseg[pos:]
                    m1, f1 = _member_values(tlb_keys, tlb_vals, vs)
                    t1_hit[pos:] = m1
                    pb = (f1 << fbs) | bseg[pos:]
                    pblocks[pos:] = pb
                    d1_hit[pos:] = _member(d_keys, pb)
                    nonpure = pos + np.flatnonzero(
                        ~(t1_hit[pos:] & d1_hit[pos:]))
                    np_ptr = 0
            if done or total >= remaining:
                break
            w = min(w * 2, MAX_SCAN_WINDOW)
        return total, n_ext, boundary_known, plan

    # ------------------------------------------------------------------
    # Victim prediction (see docs/batch-equivalence.md)
    # ------------------------------------------------------------------
    @staticmethod
    def _set_index_of(store: "SetAssociativeCache", key: int) -> int:
        mask = store._mask
        return key & mask if mask >= 0 else key % store.n_sets

    @staticmethod
    def _set_mask(store: "SetAssociativeCache", arr: np.ndarray,
                  set_index: int) -> np.ndarray:
        mask = store._mask
        if mask >= 0:
            return (arr & mask) == set_index
        return (arr % store.n_sets) == set_index

    def _predict_victim_lru(self, store: "SetAssociativeCache",
                            overlay_keys: np.ndarray, key: int,
                            activity: np.ndarray) -> Optional[int]:
        """Victim an LRU ``fill_line(key, ...)`` would evict, given
        the store's set order *at the run's start* plus ``activity`` —
        the run's prior accesses (hits, refills and inserts alike all
        touch their key).

        The set's LRU order at the extension point is: untouched base
        keys in base order (their relative recency is unchanged),
        followed by touched/inserted keys by last activity (every
        touch moves its key to the back).  The victim is the first key
        of that sequence still resident under the overlay.  Returns
        ``None`` when the set has a free way (no eviction).
        """
        set_index = self._set_index_of(store, key)
        occupancy = int(self._set_mask(store, overlay_keys,
                                       set_index).sum())
        if occupancy < store.associativity:
            return None
        in_set = activity[self._set_mask(store, activity, set_index)]
        touched = set(in_set.tolist())
        for cand in store._sets[set_index]:
            if cand in touched:
                continue
            if _in_sorted(overlay_keys, cand):
                return cand
        for cand in last_touch_order(in_set):
            if _in_sorted(overlay_keys, cand):
                return cand
        raise AssertionError(
            f"{store.name}: full set {set_index} has no predictable "
            f"victim — overlay out of sync")

    def _predict_victim_fifo(self, store: "SetAssociativeCache",
                             overlay_keys: np.ndarray, key: int,
                             inserted: List[int]) -> Optional[int]:
        """Victim a FIFO ``fill_line(key, ...)`` would evict: the
        oldest insertion still resident.  Base keys keep their base
        insertion order (FIFO hits never reorder, and the store's
        replace-in-place path deliberately preserves age); a key
        re-inserted during the run restarts its age at its re-insert
        position, so such keys are aged by their *last* entry in
        ``inserted`` instead.  Returns ``None`` on a free way.
        """
        set_index = self._set_index_of(store, key)
        occupancy = int(self._set_mask(store, overlay_keys,
                                       set_index).sum())
        if occupancy < store.associativity:
            return None
        reinserted = set(inserted)
        for cand in store._sets[set_index]:
            if cand in reinserted:
                continue
            if _in_sorted(overlay_keys, cand):
                return cand
        last_pos: Dict[int, int] = {}
        for idx, cand in enumerate(inserted):
            last_pos[cand] = idx
        for idx, cand in enumerate(inserted):
            if last_pos[cand] != idx:
                continue
            if (self._set_index_of(store, cand) == set_index
                    and _in_sorted(overlay_keys, cand)):
                return cand
        raise AssertionError(
            f"{store.name}: full set {set_index} has no predictable "
            f"victim — overlay out of sync")

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    @hot_path
    def _charge_plan(self, cursor: int,
                     plan: List[Tuple[int, Optional[np.ndarray]]]) -> None:
        """Apply a proved plan: batched pure-hit segments interleaved
        with exact scalar replays of the L2-refill extension events."""
        d = self.decoded
        gaps = d.gaps
        vpns = d.vpns
        offsets = d.offsets
        blocks = d.blocks
        writes = d.writes
        dependents = d.dependents
        step = self.node.step_fast
        pos = cursor
        for k, pblocks in plan:
            if k:
                self._charge(pos, k, pblocks)
                pos += k
            else:
                step(gaps[pos], vpns[pos], offsets[pos], blocks[pos],
                     writes[pos], dependents[pos])
                pos += 1

    @hot_path
    def _charge(self, cursor: int, k: int, pblocks: np.ndarray) -> None:
        """Apply one pure-hit segment's entire effect: clock, counters,
        recency, dirty bits — each proved equivalent to the per-event
        replay."""
        node = self.node
        gaps = self.gaps[cursor:cursor + k]
        node.core_time_ns = charge_clock_run(
            node.core_time_ns, gaps * self._slot_ns, self._lat1)
        node.instructions += int(gaps.sum()) + k
        node.memory_events += k
        node.window.admissions += k
        node.mmu.translate_hit_run(
            k, last_touch_order(self.vpns[cursor:cursor + k]))
        wseg = self.writes[cursor:cursor + k]
        written: Sequence[int] = ()
        if k >= 512:
            lo = int(pblocks.min())
            span = int(pblocks.max()) - lo + 1
            if span <= k:
                # Dense-footprint fast path: when the segment's
                # physical blocks fit a span no wider than the segment
                # itself (a hot set re-touched many times over), one
                # O(k) scatter over the span replaces the O(k log k)
                # unique-sort — ``last[off] = arange(k)`` leaves each
                # touched slot holding its final occurrence index, so
                # ranking slots by that value is exactly the
                # last-touch order, and ascending slot position is
                # exactly the ascending written set.
                off = pblocks - lo
                last = np.full(span, -1, dtype=np.int64)
                last[off] = np.arange(k)
                present = np.flatnonzero(last >= 0)
                order = np.take(present + lo,
                                np.argsort(last[present])).tolist()
                if wseg.any():
                    wmask = np.zeros(span, dtype=bool)
                    wmask[off[wseg]] = True
                    written = (np.flatnonzero(wmask) + lo).tolist()
            else:
                # One unique/inverse pass serves both recency replay
                # and dirty-bit extraction —
                # ``np.unique(pblocks[wseg])`` would re-sort the
                # written subset from scratch, and both formulations
                # emit the written set ascending.
                uniques, inverse = np.unique(pblocks, return_inverse=True)
                last = np.empty(uniques.size, dtype=np.int64)
                last[inverse] = np.arange(k)
                order = np.take(uniques, np.argsort(last)).tolist()
                if wseg.any():
                    wmask = np.zeros(uniques.size, dtype=bool)
                    wmask[inverse[wseg]] = True
                    written = uniques[wmask].tolist()
        else:
            order = last_touch_order(pblocks)
            if wseg.any():
                written = np.unique(pblocks[wseg]).tolist()
        node.caches.l1_hit_run(k, order, written)
