"""The paper's contribution: DeACT and its baselines, wired into nodes.

* :mod:`repro.core.node` — a compute node: core timing model, cache
  hierarchy, MMU + node page table, local DRAM, OS page placement
  (20 % local / 80 % FAM), and the per-architecture FAM access path.
* :mod:`repro.core.architectures` — the four virtual-memory schemes:
  E-FAM, I-FAM, DeACT-W, DeACT-N (Table I).
* :mod:`repro.core.system` — builds a whole system (nodes + broker +
  fabric + FAM) and runs workload traces through it in global time
  order.
* :mod:`repro.core.results` — run metrics and comparison helpers.
"""

from repro.core.architectures import (
    ARCHITECTURES,
    Architecture,
    DeactN,
    DeactW,
    EFam,
    IFam,
    make_architecture,
)
from repro.core.node import Node
from repro.core.results import NodeMetrics, RunResult
from repro.core.system import FamSystem

__all__ = [
    "Architecture",
    "EFam",
    "IFam",
    "DeactW",
    "DeactN",
    "ARCHITECTURES",
    "make_architecture",
    "Node",
    "FamSystem",
    "NodeMetrics",
    "RunResult",
]
