"""The run-plan layer: typed segments as the unit of execution.

Since PR 10 the core pipeline is *run-first*: every tier consumes a
stream of typed :class:`Segment` objects sliced off a node's decoded
trace, and per-event scheduling is just the degenerate case of a
length-1 scalar segment.  The three segment kinds:

* ``hit-run`` — a maximal stretch of consecutive events *proved* to
  hit both the L1 TLB and the L1 data cache under the node's current
  state.  Hit-runs touch only node-local state (no fill, eviction,
  RNG draw, fabric/FAM/broker access, or outstanding-window record),
  so the batch tier charges them with array arithmetic and the
  multi-node driver pops them whole without reordering any
  shared-state access.
* ``extension`` — a single L2-refill event bridging two pure
  segments of the same proved run.  The scanner speculates the
  refill's effect on L1 membership under a copy-on-write overlay
  (deterministic victim prediction; see ``docs/batch-equivalence.md``)
  and the charge path replays the event *exactly* through the scalar
  :meth:`~repro.core.node.Node.step_fast` — the scalar step is the
  semantics, the scan only decides segmentation.
* ``scalar`` — an unproved stretch drained through the scalar loop
  (:meth:`~repro.core.node.Node.step_fast` /
  :meth:`~repro.core.node.Node.run_events`).  The fast tier is
  nothing but scalar segments; under the multi-node interleaved
  driver scalar segments serialize one event — one length-1
  segment — at a time, because unproved events may touch shared
  state and must keep their global heap order.

Tier selection is *segment classification*, not post-hoc backoff:
:class:`RunPlanner` owns the tag-store mirrors, the refill-extension
overlay scan and the stateful :class:`TierPredictor` (folded in from
the old ``repro.core.tierstats``), and answers one question — "what
is the next typed segment at this cursor?"  :class:`ScalarExecutor`
is the degenerate planner-executor for the fast tier: every segment
it emits is scalar.  The batch tier's segment *consumer* (charging
hit-runs with array arithmetic) stays in :mod:`repro.core.batch`.

**Provability of hit-runs.**  An L1 TLB + L1 data hit performs no
fill, eviction or RNG draw, so the *resident key sets* of both
structures are invariant across the whole run; recency and dirty
bits change, membership does not.  Membership at the run's start
therefore decides every event in the run: the scanner mirrors each
*L1* tag store's resident keys into a sorted NumPy array and
classifies a whole window of decoded events with ``searchsorted``
passes — VPN against the TLB-L1 mirror (which also yields the frame,
fixed per VPN while mapped), then ``frame << s | block`` against the
data-L1 mirror.  The L2 stores are never mirrored: they matter only
at the handful of non-pure events per run, and their *membership* is
invariant across a run's events (refill hits promote recency only;
displaced L1 victims are discarded, not written back), so a scalar
probe of the live store at scan time is exact for every event in the
run.

**Incremental mirrors.**  Mirrors are kept in sync through the tag
stores' membership *delta journal*
(:meth:`~repro.cache.cache.SetAssociativeCache.enable_journal`): each
sync replays only the ``(key, payload)`` records appended since the
mirror's last sequence number, applying them with ``searchsorted``
insert/delete instead of re-sorting the whole resident set.  A burst
of changes larger than a fraction of the mirror (or a journal
overflow/clear) falls back to a full rebuild — miss-heavy phases pay
O(deltas), not O(capacity), per scan attempt.

Determinism: planning is pure arithmetic over node state and
observation counts — no wall clock, no RNG — so segmentation never
varies between identical runs (DET001 applies to this module).
Segment boundaries affect only wall-clock performance, never
simulated results: every tier is bit-identical by the
batch-equivalence contract, and ``tests/test_runplan.py`` pins the
degenerate case (a plan forced to all length-1 segments reproduces
the scalar path bit-identically).  :class:`SegmentStats` timing uses
``time.monotonic`` only when explicitly enabled (``deact profile``),
and timing never feeds back into planning.
"""

from __future__ import annotations

import time
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.core.hotpath import hot_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import SetAssociativeCache
    from repro.core.node import Node
    from repro.workloads.trace import DecodedArrays, DecodedTrace

__all__ = ["Segment", "SegmentStats", "RunPlanner", "ScalarExecutor",
           "TierPredictor", "last_touch_order", "SEGMENT_KINDS",
           "HIT_RUN", "EXTENSION", "SCALAR"]

#: The segment taxonomy, in charge-preference order.  The PAR001 rule
#: machine-checks that every kind listed here has a ``_handle_<kind>``
#: segment handler anchored to a refpath-token-matched operation, so
#: the literal below is the single source of truth for the dispatch
#: surface (``docs/run-first-core.md``).
SEGMENT_KINDS = ("hit-run", "extension", "scalar")

HIT_RUN, EXTENSION, SCALAR = SEGMENT_KINDS

#: Minimum proved *pure-hit* event count worth charging as a batch;
#: shorter runs are cheaper through the scalar loop than through the
#: handful of NumPy calls a batched charge costs.  Extension events
#: replay through the scalar step anyway, so they do not count toward
#: the floor.
MIN_RUN = 12

#: Cap on L2-refill extensions per proved run.  Each extension costs a
#: victim prediction plus a vectorized re-classification of the window
#: remainder, so a refill-dense stretch is better finished through the
#: scalar loop than scanned one refill at a time.
MAX_RUN_EXTENSIONS = 64

#: Pure hits the run must have banked per extension (including the
#: one about to be speculated) before the scanner takes it.  Short-run
#: workloads (graph/solver phases with mean pure runs of 1–2 events)
#: otherwise pay dozens of victim predictions and window
#: re-classifications per failed scan, only to discard the plan at the
#: MIN_RUN check.  Stopping mid-extension is always sound: a scan may
#: end a run at any event, and the boundary is simply left
#: unclassified, exactly as at the MAX_RUN_EXTENSIONS cutoff.
EXTENSION_PURE_RATIO = 3

#: Data-L1 policies whose refill *victim* is deterministically
#: predictable from the mirrored set order (the run-extension
#: argument in ``docs/batch-equivalence.md``).  ``random`` draws the
#: victim from the store's RNG, which the scanner must not consume
#: speculatively — data-L2 hits end runs under it, while TLB-side
#: extension (both TLB levels are always LRU) stays available.
EXTENSION_POLICIES = frozenset(("lru", "fifo"))

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class Segment:
    """One typed slice of a node's decoded trace.

    ``start`` is the absolute event index, ``length`` the event
    count.  ``pblocks`` carries the proved physical blocks of a
    hit-run segment (the charge path's recency/dirty input) and is
    ``None`` for extension and scalar segments.  Mutable on purpose:
    the interleaved driver consumes scalar segments one event at a
    time by advancing ``start`` and shrinking ``length`` in place.
    """

    __slots__ = ("kind", "start", "length", "pblocks")

    def __init__(self, kind: str, start: int, length: int,
                 pblocks: Optional[np.ndarray] = None) -> None:
        self.kind = kind
        self.start = start
        self.length = length
        self.pblocks = pblocks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Segment({self.kind!r}, start={self.start}, "
                f"length={self.length})")


class SegmentStats:
    """Per-segment-kind execution census.

    Counting is always on (a handful of integer adds per *segment*,
    amortized over the segment's events); wall-clock attribution is
    opt-in (``deact profile``) and uses ``time.monotonic`` at the
    dispatch site, never inside planning.  ``length_hist`` buckets
    segment lengths by bit length (bucket ``b`` holds lengths in
    ``[2**(b-1), 2**b)``), giving the run-length histogram the CLI
    renders.
    """

    __slots__ = ("segments", "events", "wall_s", "length_hist")

    def __init__(self) -> None:
        self.segments: Dict[str, int] = dict.fromkeys(SEGMENT_KINDS, 0)
        self.events: Dict[str, int] = dict.fromkeys(SEGMENT_KINDS, 0)
        self.wall_s: Dict[str, float] = dict.fromkeys(SEGMENT_KINDS, 0.0)
        self.length_hist: Dict[str, Dict[int, int]] = {
            kind: {} for kind in SEGMENT_KINDS}

    def observe(self, kind: str, length: int,
                wall_s: float = 0.0) -> None:
        """Record one executed segment of ``length`` events."""
        self.segments[kind] += 1
        self.events[kind] += length
        self.wall_s[kind] += wall_s
        hist = self.length_hist[kind]
        bucket = length.bit_length()
        hist[bucket] = hist.get(bucket, 0) + 1

    def merge(self, other: "SegmentStats") -> None:
        for kind in SEGMENT_KINDS:
            self.segments[kind] += other.segments[kind]
            self.events[kind] += other.events[kind]
            self.wall_s[kind] += other.wall_s[kind]
            hist = self.length_hist[kind]
            for bucket, count in other.length_hist[kind].items():
                hist[bucket] = hist.get(bucket, 0) + count

    def total_events(self) -> int:
        return sum(self.events.values())

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Serializable per-kind census (bench telemetry rows)."""
        return {
            kind: {
                "segments": self.segments[kind],
                "events": self.events[kind],
                "wall_s": self.wall_s[kind],
            }
            for kind in SEGMENT_KINDS
        }

    def render(self) -> str:
        """Human-readable census with run-length histograms
        (``deact profile``)."""
        total = self.total_events() or 1
        timed = any(self.wall_s[kind] > 0.0 for kind in SEGMENT_KINDS)
        lines = [f"  {'kind':<10} {'segments':>9} {'events':>9} "
                 f"{'share':>6}" + ("  events/s" if timed else "")]
        for kind in SEGMENT_KINDS:
            events = self.events[kind]
            parts = (f"  {kind:<10} {self.segments[kind]:>9,} "
                     f"{events:>9,} {events / total:>6.1%}")
            if timed:
                wall = self.wall_s[kind]
                rate = f"{events / wall:>10,.0f}/s" if wall > 0.0 \
                    else f"{'-':>10}  "
                parts += f"  {rate}"
            lines.append(parts)
        for kind in SEGMENT_KINDS:
            hist = self.length_hist[kind]
            if not hist or not self.events[kind]:
                continue
            buckets = " ".join(
                f"<{1 << b}:{hist[b]}" for b in sorted(hist))
            lines.append(f"  {kind} run lengths: {buckets}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Tier prediction (folded in from repro.core.tierstats)
# ----------------------------------------------------------------------
#: EWMA smoothing factor: an observation moves the average 1/8th of
#: the way to its value, so a phase transition is fully absorbed in
#: roughly a dozen scan attempts.
ALPHA = 0.125

#: Failure-side smoothing factor for ``success_ewma``.  Deliberately
#: asymmetric: a failed scan costs real vectorized work, so evidence
#: of a miss phase should push the stretch up quickly (halving the
#: ladder to the maximum stretch), while the *cost* of a pessimistic
#: estimate during a hit phase is tiny — after any successful scan the
#: planner retries immediately, without consulting the stretch at all.
ALPHA_FAIL = 0.25

#: Scalar-stretch bounds (events classified scalar between scan
#: attempts).  The floor keeps back-to-back attempts from re-scanning
#: the same boundary; the cap bounds how long a newly hit-dominated
#: phase waits before the predictor notices.
MIN_SCALAR_STRETCH = 24
MAX_SCALAR_STRETCH = 4096

#: Scan-window bounds (events classified per vectorized pass).
MIN_SCAN_WINDOW = 64
MAX_SCAN_WINDOW = 1 << 15

class TierPredictor:
    """Per-planner EWMA state turning tier selection into segment
    classification.

    Two exponentially weighted moving averages observed per *scan
    attempt*:

    * ``success_ewma`` — the probability that a scan attempt proves a
      chargeable run.  It sizes the scalar segment emitted after a
      failed scan: near 1.0 the planner retries almost immediately,
      near 0.0 it converges on the maximum stretch, so a sustained
      miss phase pays one cheap vectorized scan per ~thousand events.
    * ``run_len_ewma`` — the observed proved-run length.  It sizes
      the next scan window to about twice the recent run length, so
      the classifier neither scans far past the typical boundary nor
      grinds through many window-doubling passes.

    Because the averages decay geometrically, the predictor tracks
    *trace phases*: a workload that alternates hit-dominated and
    miss-heavy regions re-converges within ``~1/ALPHA`` attempts of
    each transition.  Pure arithmetic over observation counts — no
    wall clock, no RNG — so segmentation is deterministic.
    """

    __slots__ = ("success_ewma", "run_len_ewma")

    def __init__(self) -> None:
        # Optimistic start: a fresh trace is scanned immediately, and
        # the first window is the minimum size.
        self.success_ewma = 1.0
        self.run_len_ewma = float(MIN_SCAN_WINDOW)

    def observe_run(self, length: int) -> None:
        """A scan attempt proved (and charged) a run of ``length``."""
        self.success_ewma += ALPHA * (1.0 - self.success_ewma)
        self.run_len_ewma += ALPHA * (length - self.run_len_ewma)

    def observe_failure(self) -> None:
        """A scan attempt found nothing chargeable."""
        self.success_ewma += ALPHA_FAIL * (0.0 - self.success_ewma)

    def scalar_stretch(self) -> int:
        """Length of the scalar segment emitted after a failed scan.

        Geometric interpolation between the bounds on the success
        estimate: ``MIN`` at certainty, ``MAX`` at hopelessness.  The
        geometric (not linear) ramp matches the cost model — each
        failed scan costs O(window) vectorized work, so the stretch
        should grow multiplicatively as evidence of a miss phase
        accumulates, which is exactly what the old doubling backoff
        approximated without memory.
        """
        ratio = MAX_SCALAR_STRETCH / MIN_SCALAR_STRETCH
        return int(MIN_SCALAR_STRETCH * ratio ** (1.0 - self.success_ewma))

    def scan_window(self) -> int:
        """Initial classification window for the next scan attempt:
        about twice the recently observed run length, clamped."""
        window = int(2.0 * self.run_len_ewma)
        if window < MIN_SCAN_WINDOW:
            return MIN_SCAN_WINDOW
        if window > MAX_SCAN_WINDOW:
            return MAX_SCAN_WINDOW
        return window


# ----------------------------------------------------------------------
# Sorted-mirror primitives
# ----------------------------------------------------------------------
@hot_path
def last_touch_order(keys: np.ndarray) -> List[int]:
    """Distinct keys of a run ordered by each key's *last* occurrence
    (ascending), i.e. the order in which one LRU promotion per key
    reproduces the per-event promotion sequence's final state."""
    if keys.size and keys[0] == keys[-1] and (keys == keys[0]).all():
        # Single-distinct fast path: a hit-run confined to one page
        # (the common case for the VPN column of a hot-set trace)
        # skips the O(k log k) unique-sort entirely.
        return keys[:1].tolist()
    if keys.size >= 512:
        # Scatter formulation: ``return_inverse`` costs one stable
        # sort where ``return_index`` costs a stable *argsort* plus a
        # gather, and the last-write-wins scatter replaces the second
        # full-length pass — 2-3x faster from a few hundred elements
        # up.  Output is identical to the small-run path below.
        uniques, inverse = np.unique(keys, return_inverse=True)
        last = np.empty(uniques.size, dtype=np.int64)
        last[inverse] = np.arange(keys.size)
        return uniques[np.argsort(last)].tolist()
    rev = keys[::-1]
    uniques, first_in_rev = np.unique(rev, return_index=True)
    if uniques.size == 1:
        return uniques.tolist()
    # First occurrence in the reversed run == last occurrence in the
    # original; ascending last-occurrence == descending reversed index.
    return uniques[np.argsort(-first_in_rev)].tolist()


@hot_path
def _member(keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``queries`` against sorted ``keys``."""
    if not keys.size:
        return np.zeros(queries.size, dtype=bool)
    # ``take(mode="clip")`` fuses the clamp and the gather into one
    # pass — this helper dominates scan cost on hit-heavy windows.
    pos = keys.searchsorted(queries)
    return np.take(keys, pos, mode="clip") == queries


@hot_path
def _member_values(keys: np.ndarray, values: np.ndarray,
                   queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized membership plus payload gather against a sorted
    mirror: ``(mask, payloads)`` with payloads valid where the mask
    is True."""
    if not keys.size:
        return (np.zeros(queries.size, dtype=bool),
                np.zeros(queries.size, dtype=np.int64))
    pos = keys.searchsorted(queries)
    return (np.take(keys, pos, mode="clip") == queries,
            np.take(values, pos, mode="clip"))


def _in_sorted(keys: np.ndarray, key: int) -> bool:
    """Scalar membership test against a sorted array."""
    pos = int(keys.searchsorted(key))
    return pos < keys.size and int(keys[pos]) == key


def _spliced(keys: np.ndarray, values: Optional[np.ndarray], key: int,
             value: int, victim: Optional[int]
             ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Copy-on-write overlay update: delete ``victim`` (when given)
    and insert ``key`` into sorted mirror arrays.  ``np.delete`` /
    ``np.insert`` return fresh arrays, so the base mirrors shared with
    the non-speculative state are never mutated."""
    if victim is not None:
        pos = int(keys.searchsorted(victim))
        keys = np.delete(keys, pos)
        if values is not None:
            values = np.delete(values, pos)
    pos = int(keys.searchsorted(key))
    keys = np.insert(keys, pos, key)
    if values is not None:
        values = np.insert(values, pos, value)
    return keys, values


class _Mirror:
    """Sorted-array view of one tag store's resident keys (and
    optionally their payloads), kept in sync through the store's
    membership delta journal."""

    __slots__ = ("keys", "values", "seq")

    def __init__(self, track_values: bool) -> None:
        self.keys = _EMPTY_I64
        self.values: Optional[np.ndarray] = (
            _EMPTY_I64 if track_values else None)
        #: Journal sequence number this mirror reflects; -1 forces the
        #: first sync through a full rebuild (the journal cannot know
        #: what was resident before it was enabled).
        self.seq = -1


def _rebuild_mirror(mirror: _Mirror, store: "SetAssociativeCache") -> None:
    """From-scratch mirror: every resident key (and payload), sorted."""
    if mirror.values is None:
        mirror.keys = np.sort(np.asarray(
            [key for lines in store._sets for key in lines],
            dtype=np.int64))
        return
    keys: List[int] = []
    values: List[int] = []
    for lines in store._sets:
        for key, line in lines.items():
            keys.append(key)
            values.append(line[0])
    karr = np.asarray(keys, dtype=np.int64)
    varr = np.asarray(values, dtype=np.int64)
    order = np.argsort(karr)
    mirror.keys = karr[order]
    mirror.values = varr[order]


def _apply_deltas(mirror: _Mirror,
                  deltas: Sequence[Tuple[int, object]]) -> None:
    """Replay journal deltas onto a sorted mirror.

    Only each key's *final* state matters (the journal is replayed in
    order into a dict first), so a key that bounced in and out of the
    store contributes at most one insert or one delete.  Deletions are
    batched into one ``np.delete`` and insertions into one sorted-merge
    ``np.insert``.
    """
    final: Dict[int, object] = {}
    for key, payload in deltas:
        final[key] = payload
    keys = mirror.keys
    values = mirror.values
    size = keys.size
    drops: List[int] = []
    add_keys: List[int] = []
    add_vals: List[int] = []
    for key, payload in final.items():
        pos = int(keys.searchsorted(key))
        present = pos < size and int(keys[pos]) == key
        if payload is None:
            if present:
                drops.append(pos)
        elif present:
            if values is not None:
                values[pos] = payload
        else:
            add_keys.append(key)
            add_vals.append(int(payload) if values is not None else 0)
    if drops:
        drops.sort()
        keys = np.delete(keys, drops)
        if values is not None:
            values = np.delete(values, drops)
    if add_keys:
        karr = np.asarray(add_keys, dtype=np.int64)
        order = np.argsort(karr, kind="stable")
        karr = karr[order]
        pos = keys.searchsorted(karr)
        keys = np.insert(keys, pos, karr)
        if values is not None:
            varr = np.asarray(add_vals, dtype=np.int64)[order]
            values = np.insert(values, pos, varr)
    mirror.keys = keys
    mirror.values = values


def _sync_mirror(mirror: _Mirror, store: "SetAssociativeCache") -> None:
    """Bring ``mirror`` up to the store's journal head: apply the
    deltas since the last sync, or rebuild when the journal cannot
    serve them (first sync, overflow, clear) or when the burst is so
    large that a re-sort is cheaper than per-key splicing."""
    seq, deltas = store.journal_since(mirror.seq)
    if seq == mirror.seq:
        return
    # Per-delta splicing costs roughly a microsecond of searchsorted
    # and list bookkeeping each, while a from-scratch rebuild of even
    # an L1-sized store is a few tens of microseconds — the break-even
    # burst is small.
    if deltas is None or len(deltas) > max(32, mirror.keys.size // 8):
        _rebuild_mirror(mirror, store)
    else:
        _apply_deltas(mirror, deltas)
    mirror.seq = seq


# ----------------------------------------------------------------------
# Planners
# ----------------------------------------------------------------------
class RunPlanner:
    """Per-(node, trace) segment classifier for the batch tier.

    One entry point: :meth:`next_segments`, which classifies a prefix
    of the remaining trace into typed segments — a proved
    refill-extended run (hit-run and extension segments, possibly
    followed by the run's classified-boundary event as a length-1
    scalar segment), or a single scalar segment sized by the
    predictor after a failed or skipped scan.  The planner mutates no
    simulated state: extensions are applied to copy-on-write overlay
    arrays, and victims are predicted from the stores' (still
    untouched) set order plus the run's own touch history.
    """

    __slots__ = ("node", "vpns", "blocks", "_fbs", "_tlb_l1", "_tlb_l2",
                 "_l1", "_l2", "_extend_data", "_tlb_mirror",
                 "_l1_mirror", "predictor")

    def __init__(self, node: "Node", arrays: "DecodedArrays") -> None:
        self.node = node
        self.vpns = arrays.vpns
        self.blocks = arrays.blocks
        self._fbs = node._frame_block_shift
        self._tlb_l1 = node.mmu.tlb.l1
        self._tlb_l2 = node.mmu.tlb.l2
        self._l1 = node.caches._l1
        self._l2 = node.caches._l2
        self._extend_data = self._l1.policy_name in EXTENSION_POLICIES
        # Only the two *L1* stores are mirrored (their membership is
        # tested per event, vectorized).  The L2 stores are consulted
        # only at non-pure events — a handful per run — and their
        # membership is invariant across a run's events, so a scalar
        # probe of the live store at scan time is exact; mirroring
        # them would buy nothing and cost two syncs per scan plus a
        # journal append on every L2 fill.
        self._tlb_l1.enable_journal()
        self._l1.enable_journal()
        self._tlb_mirror = _Mirror(True)
        self._l1_mirror = _Mirror(False)
        self.predictor = TierPredictor()

    def next_segments(self, cursor: int, stop: int) -> List[Segment]:
        """Typed segments covering a non-empty prefix of
        ``[cursor, stop)``.

        Either the maximal proved run at ``cursor`` (its known
        boundary, when classified, rides along as a length-1 scalar
        segment — the overlay matches the post-charge state exactly,
        so re-proving it would be wasted work), or one scalar segment
        sized by the predictor.
        """
        node = self.node
        window = node.window
        window.drain(node.core_time_ns)
        if not window.is_full:
            # A full window can stall admits mid-run; scalar segments
            # account the stall exactly (and the skipped scan is not
            # evidence of a miss phase, so the predictor is untouched).
            self._sync_mirrors()
            if self._tlb_mirror.keys.size and self._l1_mirror.keys.size:
                total, n_ext, boundary_known, segments = \
                    self._scan(cursor, stop)
                if total - n_ext >= MIN_RUN:
                    self.predictor.observe_run(total)
                    if boundary_known and cursor + total < stop:
                        segments.append(
                            Segment(SCALAR, cursor + total, 1))
                    return segments
                self.predictor.observe_failure()
            else:
                self.predictor.observe_failure()
        stretch = self.predictor.scalar_stretch()
        if stretch > stop - cursor:
            stretch = stop - cursor
        return [Segment(SCALAR, cursor, stretch)]

    def _sync_mirrors(self) -> None:
        _sync_mirror(self._tlb_mirror, self._tlb_l1)
        _sync_mirror(self._l1_mirror, self._l1)

    @hot_path
    def _scan(self, cursor: int, stop: int
              ) -> Tuple[int, int, bool, List[Segment]]:
        """Prove the maximal refill-extended hit-run at ``cursor``.

        Returns ``(total, n_ext, boundary_classified, segments)``
        where ``segments`` is the typed charge schedule: hit-run
        segments carry their proved physical blocks, extension
        segments are single L2-refill events to replay through the
        scalar step.  The scan mutates nothing — extensions are
        applied to copy-on-write overlay arrays, and victims are
        predicted from the stores' (still untouched) set order plus
        the run's own touch history.
        """
        remaining = stop - cursor
        extend_data = self._extend_data
        tlb_l2 = self._tlb_l2
        l2 = self._l2
        fbs = self._fbs
        vpns = self.vpns
        blocks = self.blocks
        tlb_keys = self._tlb_mirror.keys
        tlb_vals = self._tlb_mirror.values
        d_keys = self._l1_mirror.keys
        total = 0
        n_ext = 0
        boundary_known = False
        # Plan accumulators allocate once per *proved run*, not per
        # event — amortized over MIN_RUN+ batched events.
        segments: List[Segment] = []  # deact: allow(HOT001) per-run accumulator
        run_pblocks: List[np.ndarray] = []  # deact: allow(HOT001) per-run accumulator
        d_inserted: List[int] = []  # deact: allow(HOT001) per-run accumulator
        w = self.predictor.scan_window()
        done = False
        while not done:
            n = min(w, remaining - total)
            if n <= 0:
                break
            base = cursor + total
            vseg = vpns[base:base + n]
            bseg = blocks[base:base + n]
            # Only the L1 structures are classified vectorized.  Where
            # the TLB-L1 misses, ``frames`` (a clipped-position gather)
            # and everything derived from it are garbage — harmless,
            # because such an event is non-pure regardless, and the
            # scalar fix-up below recomputes its true pblock before it
            # can enter the plan.
            t1_hit, frames = _member_values(tlb_keys, tlb_vals, vseg)
            pblocks = (frames << fbs) | bseg
            d1_hit = _member(d_keys, pblocks)
            # One boundary-index pass per window (recomputed only
            # after an extension changes the overlay): walking the
            # precomputed non-pure positions keeps the window loop
            # O(n) instead of re-reducing the remainder per segment.
            nonpure = np.flatnonzero(~(t1_hit & d1_hit))
            np_ptr = 0
            pos = 0
            while pos < n:
                while np_ptr < nonpure.size and nonpure[np_ptr] < pos:
                    np_ptr += 1
                k = (int(nonpure[np_ptr])
                     if np_ptr < nonpure.size else n) - pos
                if k:
                    seg = pblocks[pos:pos + k]
                    segments.append(Segment(HIT_RUN, base + pos, k, seg))
                    run_pblocks.append(seg)
                    total += k
                    pos += k
                if pos >= n:
                    break
                i = pos
                # Non-pure event: consult the live L2 stores directly.
                # L2 membership is invariant across a run's events (a
                # refill hit only promotes recency, and the displaced
                # L1 victim is discarded, not written back), so a
                # scan-time probe equals the L2 state at this event —
                # no mirror needed for structures touched this rarely.
                if t1_hit[i]:
                    pblock = int(pblocks[i])
                    d1 = False  # non-pure with a valid t1 => d1 miss
                else:
                    frame = tlb_l2.probe(int(vseg[i]))
                    if frame is None:
                        # Page walk (or fault): a genuine boundary.
                        boundary_known = True
                        done = True
                        break
                    pblock = (frame << fbs) | int(bseg[i])
                    pblocks[i] = pblock
                    d1 = _in_sorted(d_keys, pblock)
                if not d1 and not (extend_data and pblock in l2):
                    # L3 or memory (or an un-extendable data refill
                    # under random replacement): a genuine boundary.
                    boundary_known = True
                    done = True
                    break
                if (n_ext >= MAX_RUN_EXTENSIONS
                        or total - n_ext
                        < EXTENSION_PURE_RATIO * (n_ext + 1)):
                    # Refill-dense stretch (or one not banking enough
                    # pure hits to justify more speculation): stop
                    # extending, but the boundary event itself was NOT
                    # classified as a non-hit, so the next attempt
                    # must re-prove it.
                    done = True
                    break
                # L2-refill extension: predict the L1 fill's effect on
                # membership and keep scanning under the overlay.  The
                # charge path will replay this event exactly through
                # the scalar step.
                abs_i = base + i
                if not t1_hit[i]:
                    vpn = int(vseg[i])
                    victim = self._predict_victim_lru(
                        self._tlb_l1, tlb_keys, vpn, vpns[cursor:abs_i])
                    tlb_keys, tlb_vals = _spliced(
                        tlb_keys, tlb_vals, vpn, frame, victim)
                if not d1:
                    if len(run_pblocks) > 1:
                        # Flattened at most once per extension.
                        run_pblocks = [np.concatenate(run_pblocks)]  # deact: allow(HOT001) per-extension

                    activity = (run_pblocks[0] if run_pblocks
                                else _EMPTY_I64)
                    if self._l1._promote_on_hit:
                        victim = self._predict_victim_lru(
                            self._l1, d_keys, pblock, activity)
                    else:
                        victim = self._predict_victim_fifo(
                            self._l1, d_keys, pblock, d_inserted)
                    d_keys, _ = _spliced(d_keys, None, pblock, 0, victim)
                    d_inserted.append(pblock)
                segments.append(Segment(EXTENSION, abs_i, 1))
                run_pblocks.append(pblocks[i:i + 1])
                total += 1
                n_ext += 1
                pos += 1
                if pos < n:
                    # Membership changed under the overlay: reclassify
                    # the window remainder against the new arrays.
                    vs = vseg[pos:]
                    m1, f1 = _member_values(tlb_keys, tlb_vals, vs)
                    t1_hit[pos:] = m1
                    pb = (f1 << fbs) | bseg[pos:]
                    pblocks[pos:] = pb
                    d1_hit[pos:] = _member(d_keys, pb)
                    nonpure = pos + np.flatnonzero(
                        ~(t1_hit[pos:] & d1_hit[pos:]))
                    np_ptr = 0
            if done or total >= remaining:
                break
            w = min(w * 2, MAX_SCAN_WINDOW)
        return total, n_ext, boundary_known, segments

    # ------------------------------------------------------------------
    # Victim prediction (see docs/batch-equivalence.md)
    # ------------------------------------------------------------------
    @staticmethod
    def _set_index_of(store: "SetAssociativeCache", key: int) -> int:
        mask = store._mask
        return key & mask if mask >= 0 else key % store.n_sets

    @staticmethod
    def _set_mask(store: "SetAssociativeCache", arr: np.ndarray,
                  set_index: int) -> np.ndarray:
        mask = store._mask
        if mask >= 0:
            return (arr & mask) == set_index
        return (arr % store.n_sets) == set_index

    def _predict_victim_lru(self, store: "SetAssociativeCache",
                            overlay_keys: np.ndarray, key: int,
                            activity: np.ndarray) -> Optional[int]:
        """Victim an LRU ``fill_line(key, ...)`` would evict, given
        the store's set order *at the run's start* plus ``activity`` —
        the run's prior accesses (hits, refills and inserts alike all
        touch their key).

        The set's LRU order at the extension point is: untouched base
        keys in base order (their relative recency is unchanged),
        followed by touched/inserted keys by last activity (every
        touch moves its key to the back).  The victim is the first key
        of that sequence still resident under the overlay.  Returns
        ``None`` when the set has a free way (no eviction).
        """
        set_index = self._set_index_of(store, key)
        occupancy = int(self._set_mask(store, overlay_keys,
                                       set_index).sum())
        if occupancy < store.associativity:
            return None
        in_set = activity[self._set_mask(store, activity, set_index)]
        touched = set(in_set.tolist())
        for cand in store._sets[set_index]:
            if cand in touched:
                continue
            if _in_sorted(overlay_keys, cand):
                return cand
        for cand in last_touch_order(in_set):
            if _in_sorted(overlay_keys, cand):
                return cand
        raise AssertionError(
            f"{store.name}: full set {set_index} has no predictable "
            f"victim — overlay out of sync")

    def _predict_victim_fifo(self, store: "SetAssociativeCache",
                             overlay_keys: np.ndarray, key: int,
                             inserted: List[int]) -> Optional[int]:
        """Victim a FIFO ``fill_line(key, ...)`` would evict: the
        oldest insertion still resident.  Base keys keep their base
        insertion order (FIFO hits never reorder, and the store's
        replace-in-place path deliberately preserves age); a key
        re-inserted during the run restarts its age at its re-insert
        position, so such keys are aged by their *last* entry in
        ``inserted`` instead.  Returns ``None`` on a free way.
        """
        set_index = self._set_index_of(store, key)
        occupancy = int(self._set_mask(store, overlay_keys,
                                       set_index).sum())
        if occupancy < store.associativity:
            return None
        reinserted = set(inserted)
        for cand in store._sets[set_index]:
            if cand in reinserted:
                continue
            if _in_sorted(overlay_keys, cand):
                return cand
        last_pos: Dict[int, int] = {}
        for idx, cand in enumerate(inserted):
            last_pos[cand] = idx
        for idx, cand in enumerate(inserted):
            if last_pos[cand] != idx:
                continue
            if (self._set_index_of(store, cand) == set_index
                    and _in_sorted(overlay_keys, cand)):
                return cand
        raise AssertionError(
            f"{store.name}: full set {set_index} has no predictable "
            f"victim — overlay out of sync")


class ScalarPlanner:
    """Degenerate planner: every segment is scalar.

    ``grain`` sizes the emitted segments; ``grain=1`` forces the
    fully degenerate all-length-1 plan the property suite pins
    against the scalar path (``tests/test_runplan.py``).  Plugged
    into a :class:`~repro.core.batch.BatchExecutor`, it turns the
    batch tier into the scalar tier without touching the executor's
    dispatch — the run-first model's claim that the scalar loop is a
    special case, made executable.
    """

    __slots__ = ("grain",)

    def __init__(self, grain: int = 1 << 30) -> None:
        if grain < 1:
            raise ValueError(f"segment grain must be >= 1, got {grain}")
        self.grain = grain

    def next_segments(self, cursor: int, stop: int) -> List[Segment]:
        length = stop - cursor
        if length > self.grain:
            length = self.grain
        return [Segment(SCALAR, cursor, length)]


class ScalarExecutor:
    """The fast tier as the degenerate run-first case.

    Consumes only scalar segments: one segment covering the whole
    requested window under the single-node driver, and length-1
    segments under the multi-node interleaved driver (unproved events
    may touch shared state, so they serialize in global heap order).
    Exposes the same ``run``/``advance``/``stats`` surface as
    :class:`~repro.core.batch.BatchExecutor`, which is what lets
    :class:`~repro.core.system.FamSystem` schedule both tiers with a
    single segment-stream driver.
    """

    __slots__ = ("node", "decoded", "stats", "timed")

    def __init__(self, node: "Node", decoded: "DecodedTrace") -> None:
        self.node = node
        self.decoded = decoded
        self.stats = SegmentStats()
        self.timed = False

    def run(self, start: int, stop: int) -> float:
        """Consume events ``[start, stop)`` as one scalar segment."""
        t0 = time.monotonic() if self.timed else 0.0
        t = self._handle_scalar(start, stop)
        self.stats.observe(
            SCALAR, stop - start,
            time.monotonic() - t0 if self.timed else 0.0)
        return t

    def advance(self, cursor: int, stop: int) -> Tuple[int, float]:
        """One interleaved-driver step: a length-1 scalar segment."""
        t0 = time.monotonic() if self.timed else 0.0
        t = self._handle_scalar(cursor, cursor + 1)
        self.stats.observe(
            SCALAR, 1, time.monotonic() - t0 if self.timed else 0.0)
        return cursor + 1, t

    @hot_path
    def _handle_scalar(self, start: int, stop: int) -> float:
        """Drain one scalar segment through the scalar loop:
        :meth:`~repro.core.node.Node.step_fast` for the length-1
        degenerate case, the inlined
        :meth:`~repro.core.node.Node.run_decoded` loop otherwise."""
        node = self.node
        d = self.decoded
        if stop - start == 1:
            return node.step_fast(d.gaps[start], d.vpns[start],
                                  d.offsets[start], d.blocks[start],
                                  d.writes[start], d.dependents[start])
        if start == 0 and stop >= len(d):
            return node.run_decoded(d)
        return node.run_decoded(d, start, stop)
