"""The ``@hot_path`` contract marker.

Functions on the per-event hot path must stay allocation-free: no
comprehensions, no ``dict``/``list``/``set`` literals or constructor
calls, no closures or nested defs, no f-strings (each of these
allocates per call, and the per-event loops run them hundreds of
thousands of times per simulated trace).  The contract is enforced
*statically* by ``deact check`` (rule ``HOT001`` in
:mod:`repro.analysis`), which lints every function that is either

* decorated with :func:`hot_path`, or
* named ``*_fast`` (the repo's naming convention for allocation-free
  probe entry points).

The decorator itself is free at call time: it returns the function
object unchanged, only stamping a ``__hot_path__`` attribute so tests
and tooling can discover the annotated surface at runtime.  Raise
statements are exempt from the contract — error paths may format
f-strings because they execute at most once per run.

Fill paths (:meth:`repro.cache.cache.SetAssociativeCache.fill_line`
and friends) are deliberately *not* marked: a fill allocates its cache
line by design, and only runs on misses.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path", "is_hot_path"]

F = TypeVar("F", bound=Callable)


def hot_path(func: F) -> F:
    """Mark ``func`` as per-event hot-path code (see module docs).

    Zero runtime overhead: the function is returned unchanged.
    """
    func.__hot_path__ = True
    return func


def is_hot_path(func: object) -> bool:
    """Whether ``func`` carries the :func:`hot_path` marker."""
    return bool(getattr(func, "__hot_path__", False))
