"""Deterministic fault injection for the supervised sweep layer.

Chaos testing is only worth anything here if it is *reproducible*: the
paper-grade invariant the sweep pipeline promises is that a run
recovered through retries, worker respawns, and torn-write salvage
produces a results cache **byte-identical** to a clean run.  Asserting
that in CI requires the faults themselves to be a pure function of
(plan, job key, attempt number) — never of wall clock, pids, or
scheduling order.  Everything in this module is seeded accordingly.

A *fault plan* is a small JSON document::

    {"schema": 1, "seed": 11, "faults": [
        {"kind": "crash",  "match": "mcf",   "attempts": 1},
        {"kind": "hang",   "match": "canl",  "attempts": 1, "pick": 0.5},
        {"kind": "corrupt", "match": "i-fam", "attempts": 1},
        {"kind": "torn-write", "attempts": 1, "at_byte": 40}]}

Each rule selects jobs by substring ``match`` against the on-disk
cache key (benchmark, architecture, and variant parameters all appear
in it), optionally thinned to a deterministic ``pick`` fraction via a
seeded hash, and fires on the first ``attempts`` executions of each
selected job.  Execution kinds:

``raise``
    the worker raises :class:`~repro.errors.FaultInjected`;
``crash``
    the worker dies with ``os._exit`` — no exception, no result
    message, exactly like a segfault;
``hang``
    the worker sleeps ``hang_s`` — only a supervisor wall-clock
    timeout gets the job back;
``corrupt``
    the worker returns a structurally invalid payload, which the
    supervisor's payload validation must catch and retry.

``torn-write`` is different: it fires at *cache write* time (in
whichever process performs the write) through the hook points in
:mod:`repro.experiments.cachefile`, killing the writer after
``at_byte`` bytes of the temp file (``stage="partial"``), after the
full write but before ``os.replace`` (``"before-replace"``), or just
after the replace (``"after-replace"``).  Because the writer process
dies for real, attempt counting for write faults persists in a
``state_dir`` of marker files so a *resumed* run does not re-tear —
which is precisely what lets CI kill a sweep mid-checkpoint and assert
the resume completes identically.

Plans travel to CLI runs via ``--inject-faults`` or the
``REPRO_FAULT_PLAN`` environment variable (a path, or inline JSON),
and to pool workers as a pickled :class:`FaultPlan` argument.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, FaultInjected
from repro.experiments import cachefile
from repro.experiments.runner import SweepJob, execute_job, job_key

__all__ = [
    "ENV_FAULT_PLAN",
    "EXECUTION_KINDS",
    "FAULT_KINDS",
    "WRITE_STAGES",
    "CRASH_EXIT_CODE",
    "FaultPlan",
    "FaultRule",
    "activate",
    "active_plan",
    "deactivate",
    "corrupt_payload",
    "execution_fault",
    "install_torn_write_hook",
    "clear_write_fault_hook",
    "load_fault_plan",
    "plan_from_env",
    "run_with_faults",
]

#: Environment variable carrying a fault plan (a JSON file path, or
#: inline JSON starting with ``{``) into CLI/worker processes.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Exit code of a deliberately crashed process — distinct from Python
#: tracebacks (1) and argparse (2) so the supervisor's failure report
#: and the chaos CI job can tell an injected death from a real bug.
CRASH_EXIT_CODE = 13

EXECUTION_KINDS = ("raise", "crash", "hang", "corrupt")
WRITE_KINDS = ("torn-write",)
FAULT_KINDS = EXECUTION_KINDS + WRITE_KINDS
WRITE_STAGES = ("partial", "before-replace", "after-replace")

PLAN_SCHEMA = 1


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: what to break, where, and how often."""

    kind: str
    match: str = ""          # substring of the job key (or cache path)
    attempts: int = 1        # fail the first N attempts of each target
    pick: float = 1.0        # deterministic fraction of matches to hit
    hang_s: float = 3600.0   # sleep length for ``hang``
    at_byte: int = 0         # torn-write: temp-file bytes before death
    stage: str = "partial"   # torn-write: where in the write to die

    def validate(self) -> "FaultRule":
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.attempts < 1:
            raise ConfigError(
                f"fault attempts must be >= 1, got {self.attempts}")
        if not 0.0 < self.pick <= 1.0:
            raise ConfigError(
                f"fault pick must be in (0, 1], got {self.pick}")
        if self.kind == "torn-write" and self.stage not in WRITE_STAGES:
            raise ConfigError(
                f"unknown torn-write stage {self.stage!r}; expected one "
                f"of {', '.join(WRITE_STAGES)}")
        if self.at_byte < 0:
            raise ConfigError(
                f"fault at_byte must be >= 0, got {self.at_byte}")
        return self


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of :class:`FaultRule` entries.

    ``state_dir`` holds the cross-process attempt markers write faults
    need (a killed writer cannot remember in memory that it already
    fired); execution faults never touch it — their attempt number is
    handed in by the supervisor, which is already deterministic.
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    seed: int = 0
    state_dir: Optional[str] = None

    def validate(self) -> "FaultPlan":
        for rule in self.rules:
            rule.validate()
        if self.write_rules() and self.state_dir is None:
            raise ConfigError(
                "fault plans with torn-write rules need a state_dir for "
                "cross-process attempt counting (plans loaded from a "
                "file default it to <plan>.state)")
        return self

    def execution_rules(self) -> Tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.kind in EXECUTION_KINDS)

    def write_rules(self) -> Tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.kind in WRITE_KINDS)

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "state_dir": self.state_dir,
            "faults": [
                {"kind": r.kind, "match": r.match, "attempts": r.attempts,
                 "pick": r.pick, "hang_s": r.hang_s, "at_byte": r.at_byte,
                 "stage": r.stage}
                for r in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigError("fault plan must be a JSON object")
        if data.get("schema", PLAN_SCHEMA) != PLAN_SCHEMA:
            raise ConfigError(
                f"fault plan has schema {data.get('schema')!r}, expected "
                f"{PLAN_SCHEMA}")
        raw_rules = data.get("faults", [])
        if not isinstance(raw_rules, list):
            raise ConfigError("fault plan 'faults' must be a list")
        rules = []
        for raw in raw_rules:
            if not isinstance(raw, dict) or "kind" not in raw:
                raise ConfigError(
                    f"each fault rule needs at least a 'kind': {raw!r}")
            try:
                rules.append(FaultRule(
                    kind=str(raw["kind"]),
                    match=str(raw.get("match", "")),
                    attempts=int(raw.get("attempts", 1)),
                    pick=float(raw.get("pick", 1.0)),
                    hang_s=float(raw.get("hang_s", 3600.0)),
                    at_byte=int(raw.get("at_byte", 0)),
                    stage=str(raw.get("stage", "partial")),
                ).validate())
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"bad fault rule {raw!r}: {exc}") from exc
        state_dir = data.get("state_dir")
        return cls(rules=tuple(rules), seed=int(data.get("seed", 0)),
                   state_dir=str(state_dir) if state_dir else None)


def load_fault_plan(spec: str) -> FaultPlan:
    """A plan from inline JSON (starts with ``{``) or a JSON file path.

    File-loaded plans with write faults default ``state_dir`` to
    ``<plan-path>.state`` next to the plan, so the canned CI plans need
    no extra configuration to survive writer death and resume.
    """
    text = spec
    source = "<inline>"
    if not spec.lstrip().startswith("{"):
        source = spec
        try:
            with open(spec) as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {spec}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"fault plan {source} is not valid JSON: {exc}") from exc
    if isinstance(data, dict) and source != "<inline>" \
            and not data.get("state_dir"):
        data = dict(data, state_dir=f"{os.path.abspath(source)}.state")
    return FaultPlan.from_dict(data).validate()


def plan_from_env(environ: Optional[Dict[str, str]] = None) \
        -> Optional[FaultPlan]:
    """The plan named by ``$REPRO_FAULT_PLAN``, if any."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_FAULT_PLAN, "").strip()
    if not raw:
        return None
    return load_fault_plan(raw)


# ----------------------------------------------------------------------
# Deterministic selection
# ----------------------------------------------------------------------
def _picked(rule: FaultRule, seed: int, key: str) -> bool:
    """Whether ``rule`` selects ``key`` — a pure hash of (seed, rule,
    key), identical in every process on every host."""
    if rule.pick >= 1.0:
        return True
    digest = hashlib.sha256(
        f"{seed}|{rule.kind}|{rule.match}|{key}".encode("utf-8")).digest()
    draw = int.from_bytes(digest[:8], "big") % 1_000_000
    return draw < int(rule.pick * 1_000_000)


def execution_fault(plan: Optional[FaultPlan], key: str,
                    attempt: int) -> Optional[FaultRule]:
    """The first execution rule firing for ``key`` at ``attempt``."""
    if plan is None:
        return None
    for rule in plan.execution_rules():
        if rule.match and rule.match not in key:
            continue
        if attempt >= rule.attempts:
            continue
        if not _picked(rule, plan.seed, key):
            continue
        return rule
    return None


def corrupt_payload() -> dict:
    """A payload that must fail the supervisor's structural validation
    (it has none of a serialized :class:`RunResult`'s fields)."""
    return {"__fault__": "corrupt payload (injected)"}


# ----------------------------------------------------------------------
# Execution-side injection
# ----------------------------------------------------------------------
#: The plan activated in this process (workers activate the plan they
#: are handed; the CLI activates ``--inject-faults``/$REPRO_FAULT_PLAN).
_ACTIVE_PLAN: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


def activate(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process: execution faults apply to
    :func:`run_with_faults`, and write faults hook the atomic cache
    writer."""
    global _ACTIVE_PLAN
    plan.validate()
    _ACTIVE_PLAN = plan
    if plan.write_rules():
        cachefile._WRITE_FAULT_HOOK = _plan_write_hook(plan)


def deactivate() -> None:
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = None
    cachefile._WRITE_FAULT_HOOK = None


def run_with_faults(job: SweepJob, attempt: int,
                    plan: Optional[FaultPlan] = None) -> dict:
    """Execute one job, first consulting the fault plan for this
    (job, attempt).  With no plan (the default outside chaos runs) this
    is exactly :func:`~repro.experiments.runner.execute_job`."""
    plan = _ACTIVE_PLAN if plan is None else plan
    rule = execution_fault(plan, job_key(job), attempt)
    if rule is not None:
        if rule.kind == "raise":
            raise FaultInjected(
                f"injected failure for {job.benchmark}/{job.architecture} "
                f"attempt {attempt}")
        if rule.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.kind == "hang":
            time.sleep(rule.hang_s)
            raise FaultInjected(
                f"injected hang for {job.benchmark}/{job.architecture} "
                f"outlived its {rule.hang_s:.0f}s sleep (no supervisor "
                f"timeout reaped it)")
        if rule.kind == "corrupt":
            return corrupt_payload()
    return execute_job(job)


# ----------------------------------------------------------------------
# Write-side injection (torn cache writes)
# ----------------------------------------------------------------------
def _claim_attempt(state_dir: str, token: str, max_attempts: int) \
        -> Optional[int]:
    """Atomically claim the next attempt slot for ``token``.

    ``O_EXCL`` marker files make the count race-safe across processes
    and — the important part — durable across the writer's own death,
    so a resumed run sees the fault as already spent.
    """
    os.makedirs(state_dir, exist_ok=True)
    for attempt in range(max_attempts):
        marker = os.path.join(state_dir, f"{token}.attempt-{attempt}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return attempt
    return None


def _tear(stage: str, phase: str, text: str, handle, at_byte: int) -> None:
    """Die at the configured point of the tmp+rename sequence.

    ``phase`` is where the hook was called from (``pre`` = before the
    temp-file write, ``post`` = after ``os.replace``); ``stage`` is
    where the rule wants to die.  ``os._exit`` skips all cleanup — the
    temp file is deliberately left behind, exactly like a kill -9.
    """
    if stage == "partial" and phase == "pre":
        handle.write(text[:at_byte])
        handle.flush()
        os._exit(CRASH_EXIT_CODE)
    if stage == "before-replace" and phase == "pre":
        handle.write(text)
        handle.flush()
        os._exit(CRASH_EXIT_CODE)
    if stage == "after-replace" and phase == "post":
        os._exit(CRASH_EXIT_CODE)


def _plan_write_hook(plan: FaultPlan):
    """The cachefile hook applying ``plan``'s torn-write rules."""

    def hook(phase: str, path: str, text: str, handle) -> None:
        for index, rule in enumerate(plan.write_rules()):
            if rule.match and rule.match not in path:
                continue
            if not _picked(rule, plan.seed, os.path.basename(path)):
                continue
            token = hashlib.sha256(
                f"{index}|{rule.kind}|{rule.match}|{rule.stage}"
                .encode("utf-8")).hexdigest()[:16]
            # after-replace needs its marker claimed at the pre phase
            # (claiming at post would double-claim: pre runs first) —
            # remember the claim on the closure for the post call.
            if phase == "pre":
                claimed = _claim_attempt(plan.state_dir, token,
                                         rule.attempts)
                if claimed is None:
                    continue
                _pending_post[0] = rule if rule.stage == "after-replace" \
                    else None
                _tear(rule.stage, phase, text, handle, rule.at_byte)
            elif phase == "post" and _pending_post[0] is rule:
                _pending_post[0] = None
                _tear(rule.stage, phase, text, handle, rule.at_byte)

    _pending_post: list = [None]
    return hook


def install_torn_write_hook(cut: int) -> None:
    """Test helper: kill the *next* atomic JSON write at byte ``cut``.

    ``cut`` in ``0..len(text)`` tears the temp-file write after that
    many bytes; ``len(text) + 1`` dies after the full write but before
    ``os.replace``; anything larger dies just after the replace.  Used
    by the torn-write property suite, which sweeps every offset.
    """

    def hook(phase: str, path: str, text: str, handle) -> None:
        if cut <= len(text):
            _tear("partial", phase, text, handle, cut)
        elif cut == len(text) + 1:
            _tear("before-replace", phase, text, handle, cut)
        else:
            _tear("after-replace", phase, text, handle, cut)

    cachefile._WRITE_FAULT_HOOK = hook


def clear_write_fault_hook() -> None:
    cachefile._WRITE_FAULT_HOOK = None
