"""Tables I-III of the paper.

Table I is qualitative (architecture properties), Table II is the
system configuration, Table III is the benchmark list with published
and measured MPKI.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.presets import default_config
from repro.core.architectures import ARCHITECTURES
from repro.experiments.report import FigureResult, Row
from repro.experiments.runner import ExperimentRunner
from repro.workloads.catalog import benchmark_names, get_profile

__all__ = ["table1", "table2", "table3", "table3_matrix"]


def table3_matrix(benchmarks: Optional[Sequence[str]] = None) -> list:
    """The ``(benchmark, architecture, config)`` runs Table III needs,
    for batch execution by a sweep pool (cf.
    :func:`repro.experiments.figures.figure_matrix`)."""
    base = default_config()
    return [(bench, "e-fam", base)
            for bench in (benchmarks or benchmark_names())]


def table1() -> FigureResult:
    """Table I: FAM architecture comparison (performance / OS changes /
    security), with 1.0 encoding a check mark and 0.0 a cross."""
    rows = []
    order = ["e-fam", "i-fam", "deact-n"]
    for key in order:
        arch = ARCHITECTURES[key]()
        # "Performance" per the paper's table: E-FAM and DeACT get the
        # check, I-FAM does not.
        performance = 1.0 if key != "i-fam" else 0.0
        label = "DeACT" if key.startswith("deact") else arch.display_name
        rows.append(Row(label=label, values={
            "Performance": performance,
            "Avoid OS Changes": 1.0 if arch.avoids_os_changes else 0.0,
            "Security": 1.0 if arch.secure else 0.0,
        }))
    return FigureResult(
        figure_id="table1", title="FAM Architectures Comparison",
        series=["Performance", "Avoid OS Changes", "Security"],
        rows=rows, notes="1 = check, 0 = cross (paper Table I)")


def table2() -> FigureResult:
    """Table II: the simulated system configuration."""
    config = default_config()
    rows = [Row(label=f"{key}: {value}")
            for key, value in config.describe().items()]
    return FigureResult(
        figure_id="table2", title="System Configuration", series=[],
        rows=rows)


def table3(runner: Optional[ExperimentRunner] = None,
           benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Table III: applications and MPKI (paper vs measured on E-FAM).

    The paper selects benchmarks with >= 5 MPKI; measured values come
    from our synthetic traces, so expect the same order of magnitude
    rather than equality.
    """
    rows = []
    for bench in (benchmarks or benchmark_names()):
        profile = get_profile(bench)
        values = {}
        paper = {}
        if profile.paper_mpki is not None:
            paper["MPKI"] = float(profile.paper_mpki)
        if runner is not None:
            result = runner.run(bench, "e-fam")
            values["MPKI"] = result.mpki
        rows.append(Row(label=f"{bench} ({profile.suite})",
                        values=values, paper=paper))
    return FigureResult(
        figure_id="table3", title="Applications and MPKI",
        series=["MPKI"], rows=rows,
        notes="paper MPKI from Table III; measured MPKI from the "
              "synthetic traces on E-FAM")
