"""Supervised parallel execution for sweep jobs.

``multiprocessing.Pool.imap_unordered`` — the fan-out the sweep engine
used before this module — has exactly the failure modes a large sweep
matrix cannot afford: one raising job aborts the whole batch, a worker
that segfaults or hangs stalls ``imap_unordered`` forever, and either
way every completed-but-unmerged cell is lost.  The supervisor replaces
it with a small, explicit pool:

* each worker is a plain ``Process`` holding **one job at a time**,
  dispatched over a per-worker duplex ``Pipe`` — so the parent always
  knows which job died with which worker, and a worker killed mid-send
  can corrupt at most its own pipe;
* per-job **wall-clock timeouts** reap hung workers (terminate +
  respawn), turning a hang into an ordinary retryable failure;
* failed jobs retry with **seeded jittered exponential backoff** up to
  a bounded attempt budget, after which they are **quarantined** as a
  structured :class:`JobFailure` instead of poisoning the run;
* worker death (crash, OOM-kill, injected ``os._exit``) is detected by
  ``Process.is_alive`` and the worker respawned;
* every returned payload is structurally validated
  (:func:`~repro.experiments.runner.payload_ok`) before acceptance —
  a corrupted worker cannot smuggle garbage into the result cache;
* Ctrl-C / SIGTERM terminates the pool and raises
  :class:`~repro.errors.SweepInterrupted` carrying every completed
  payload, so the engine can flush finished cells to the cache before
  the interrupt propagates.

Determinism note: retries, respawns, backoff, and completion order all
stay on the *scheduling* side.  Results are produced by the same pure
:func:`~repro.experiments.runner.execute_job` and keyed by input
index, so a sweep that limped through crashes and timeouts yields a
cache byte-identical to a clean run — the invariant the chaos suite
asserts via ``canonical_cache_text``.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SweepFailure, SweepInterrupted
from repro.experiments.faults import FaultPlan, active_plan, run_with_faults
from repro.experiments.runner import (
    SweepJob,
    job_key,
    payload_ok,
    require_jobs,
)

__all__ = [
    "FailureReport",
    "JobFailure",
    "SupervisedRun",
    "SupervisorConfig",
    "retry_delay_s",
    "run_supervised",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout policy for a supervised run.

    ``retries`` counts *re*-executions: every job gets ``retries + 1``
    attempts before quarantine.  ``job_timeout_s=None`` means no
    wall-clock limit (hangs are then only recoverable by Ctrl-C).
    ``fail_fast`` aborts the whole run on the first permanent failure
    (the pre-supervisor behavior); the default salvages everything
    that completed and reports the rest.
    """

    job_timeout_s: Optional[float] = None
    retries: int = 2
    fail_fast: bool = False
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_seed: int = 0
    poll_interval_s: float = 0.05

    def validate(self) -> "SupervisorConfig":
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ValueError(
                f"job_timeout_s must be > 0, got {self.job_timeout_s}")
        return self


def retry_delay_s(config: SupervisorConfig, key: str, attempt: int) -> float:
    """Backoff before re-attempting ``key`` (``attempt`` is the one that
    just failed, 0-based): exponential, capped, with seeded jitter so
    co-failing jobs (e.g. all victims of one dead worker) do not retry
    in lockstep.  Seeded from (config seed, job key, attempt) — pure,
    so a re-run of the same chaos plan schedules identically.
    """
    base = min(config.backoff_cap_s,
               config.backoff_base_s * (2 ** min(attempt, 16)))
    rng = random.Random(f"{config.backoff_seed}|{key}|{attempt}")
    return base * rng.uniform(0.5, 1.5)


@dataclass(frozen=True)
class JobFailure:
    """One permanently failed (quarantined) job."""

    index: int
    key: str
    benchmark: str
    architecture: str
    attempts: int
    kind: str      # "error" | "timeout" | "worker-crash" | "corrupt-payload"
    detail: str

    def describe(self) -> str:
        return (f"{self.benchmark}/{self.architecture} "
                f"[{self.kind} after {self.attempts} attempt(s)] "
                f"{self.detail}")


@dataclass
class FailureReport:
    """The quarantine list of a supervised run, in job-index order."""

    failures: List[JobFailure] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    def render(self) -> str:
        if not self.failures:
            return "all jobs completed"
        lines = [f"{len(self.failures)} job(s) failed permanently:"]
        lines += [f"  - {f.describe()}" for f in self.failures]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"failures": [
            {"index": f.index, "key": f.key, "benchmark": f.benchmark,
             "architecture": f.architecture, "attempts": f.attempts,
             "kind": f.kind, "detail": f.detail}
            for f in self.failures]}


@dataclass
class SupervisedRun:
    """Outcome of :func:`run_supervised`: payloads by input index
    (``None`` where quarantined) plus the failure report."""

    payloads: List[Optional[dict]]
    report: FailureReport

    def completed(self) -> Dict[int, dict]:
        return {i: p for i, p in enumerate(self.payloads) if p is not None}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(conn, plan: Optional[FaultPlan]) -> None:
    """One pool worker: receive ``(index, attempt, job)``, run it, send
    ``(index, attempt, status, payload_or_detail)``; ``None`` means
    shut down.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole
    process group) reaches only the parent, which then terminates the
    pool in order and flushes completed results — workers dying first
    would race that salvage.  SIGTERM is reset to its default fatal
    disposition: fork inherits the parent's SIGTERM-as-interrupt
    handler, and a group-wide ``kill`` must stop workers dead, not
    leave them unwinding a meaningless KeyboardInterrupt.

    The dispatch wait polls rather than blocking forever: a sibling
    worker forked later holds a copy of this worker's parent-side pipe
    fd, so parent death does not reliably surface as EOF here.  The
    getppid watchdog catches it instead — an orphaned worker (parent
    crashed, e.g. an injected torn-write ``os._exit``) exits on its
    own within a poll interval instead of lingering forever.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    parent_pid = os.getppid()
    if plan is not None:
        from repro.experiments import faults
        faults.activate(plan)
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # orphaned: the supervisor is gone
                continue
            task = conn.recv()
        except (EOFError, OSError):
            return  # parent died or closed our pipe: nothing left to do
        if task is None:
            return
        index, attempt, job = task
        try:
            payload = run_with_faults(job, attempt)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            message = f"{type(exc).__name__}: {exc}"
            with contextlib.suppress(OSError, ValueError):
                conn.send((index, attempt, "error", message))
        else:
            with contextlib.suppress(OSError, ValueError):
                conn.send((index, attempt, "ok", payload))


def _pool_context():
    """Prefer ``fork`` (cheap, no re-import) on Linux only.

    macOS also offers ``fork`` but defaults to ``spawn`` because
    forking a threaded process is unsafe there; respect the platform
    default everywhere else.
    """
    if (sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _Worker:
    """A worker process plus its pipe and in-flight bookkeeping."""

    def __init__(self, context, plan: Optional[FaultPlan]) -> None:
        self.conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.proc = context.Process(target=_worker_main,
                                    args=(child_conn, plan), daemon=True)
        self.proc.start()
        child_conn.close()  # the worker holds the only child end now
        self.busy: Optional[Tuple[int, int]] = None  # (index, attempt)
        self.started_at: float = 0.0

    def dispatch(self, index: int, attempt: int, job: SweepJob) -> bool:
        try:
            self.conn.send((index, attempt, job))
        except (OSError, ValueError):
            return False
        self.busy = (index, attempt)
        self.started_at = time.monotonic()
        return True

    def kill(self) -> None:
        """Hard-stop: terminate, escalating to SIGKILL for a worker
        that ignores SIGTERM (e.g. stuck in uninterruptible sleep)."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        if self.proc.is_alive():  # pragma: no cover - SIGTERM ignored
            self.proc.kill()
            self.proc.join(timeout=2.0)
        with contextlib.suppress(OSError):
            self.conn.close()

    def shutdown(self) -> None:
        """Orderly stop for an idle worker: sentinel, then escalate."""
        with contextlib.suppress(OSError, ValueError):
            self.conn.send(None)
        self.proc.join(timeout=2.0)
        self.kill()


# ----------------------------------------------------------------------
# Signal plumbing
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM as ``KeyboardInterrupt`` for the duration.

    A supervised sweep treats ``kill <pid>`` exactly like Ctrl-C:
    terminate the pool, flush completed results, exit.  Signal handlers
    can only be installed from the main thread; elsewhere (tests
    driving the engine from a thread) this is a no-op and SIGTERM keeps
    its default fatal behavior.

    The handler is **one-shot**: tools like ``timeout`` and process
    supervisors signal the whole process group, and the parent's own
    fork-inherited handler plus a repeat delivery would otherwise raise
    a second KeyboardInterrupt *inside* the cleanup — aborting the
    worker shutdown mid-join and stranding the interpreter in
    multiprocessing's unbounded atexit ``join()``.  After the first
    delivery further SIGTERMs are ignored; the shutdown they would
    interrupt is bounded by per-join timeouts anyway.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _handler(signum, frame):  # pragma: no cover - exercised via kill
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        raise KeyboardInterrupt(f"terminated by signal {signum}")
    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


@contextlib.contextmanager
def _shield_signals():
    """Hold SIGINT/SIGTERM at bay around a bounded cleanup section.

    A second Ctrl-C (or a group-wide SIGTERM repeat) landing inside the
    pool teardown or the salvage flush would abandon live workers to
    multiprocessing's unbounded atexit join and drop completed results
    on the floor.  Both sections finish in bounded time (every join
    carries a timeout, the flush is one atomic write), so deferring
    signals across them is safe.  Outside the main thread signals
    cannot be (re)installed, and none are delivered here either — no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous_int = signal.signal(signal.SIGINT, signal.SIG_IGN)
    previous_term = signal.signal(signal.SIGTERM, signal.SIG_IGN)
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous_int)
        signal.signal(signal.SIGTERM, previous_term)


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class _RunState:
    """Mutable bookkeeping for one supervised run."""

    def __init__(self, jobs: Sequence[SweepJob],
                 config: SupervisorConfig) -> None:
        self.jobs = list(jobs)
        self.config = config
        self.keys = [job_key(job) for job in self.jobs]
        self.payloads: List[Optional[dict]] = [None] * len(self.jobs)
        self.report = FailureReport()
        self.resolved = 0
        # (not_before_monotonic, index, attempt), kept sorted by
        # (not_before, index) so dispatch order is deterministic.
        self.pending: List[Tuple[float, int, int]] = [
            (0.0, index, 0) for index in range(len(self.jobs))]

    def pop_ready(self, now: float) -> Optional[Tuple[int, int]]:
        for slot, (not_before, index, attempt) in enumerate(self.pending):
            if not_before <= now:
                del self.pending[slot]
                return index, attempt
        return None

    def next_wakeup_in(self, now: float) -> Optional[float]:
        if not self.pending:
            return None
        return max(0.0, min(nb for nb, _i, _a in self.pending) - now)

    def requeue(self, index: int, attempt: int) -> None:
        delay = retry_delay_s(self.config, self.keys[index], attempt)
        entry = (time.monotonic() + delay, index, attempt + 1)
        self.pending.append(entry)
        self.pending.sort(key=lambda item: (item[0], item[1]))

    def accept(self, index: int, payload: dict,
               progress, on_result) -> None:
        if self.payloads[index] is not None:
            return  # stale duplicate (already resolved)
        self.payloads[index] = payload
        self.resolved += 1
        if on_result is not None:
            on_result(index, payload)
        if progress is not None:
            progress(self.resolved, len(self.jobs))

    def fail(self, index: int, attempt: int, kind: str, detail: str,
             progress) -> None:
        """One attempt failed: requeue with backoff, or quarantine."""
        if attempt < self.config.retries:
            self.requeue(index, attempt)
            return
        job = self.jobs[index]
        self.report.failures.append(JobFailure(
            index=index, key=self.keys[index], benchmark=job.benchmark,
            architecture=job.architecture, attempts=attempt + 1,
            kind=kind, detail=detail))
        self.resolved += 1
        if progress is not None:
            progress(self.resolved, len(self.jobs))
        if self.config.fail_fast:
            raise SweepFailure(
                f"sweep aborted (fail-fast): {self.report.render()}",
                report=self.report,
                payloads={i: p for i, p in enumerate(self.payloads)
                          if p is not None})

    def completed(self) -> Dict[int, dict]:
        return {i: p for i, p in enumerate(self.payloads) if p is not None}


def run_supervised(jobs: Sequence[SweepJob], n_workers: int,
                   config: Optional[SupervisorConfig] = None,
                   progress: Optional[Callable[[int, int], None]] = None,
                   on_result: Optional[Callable[[int, dict], None]] = None,
                   fault_plan: Optional[FaultPlan] = None) -> SupervisedRun:
    """Execute ``jobs`` under supervision, in input-index order.

    Returns a :class:`SupervisedRun` whose ``payloads`` align with
    ``jobs`` (``None`` where quarantined).  Raises
    :class:`~repro.errors.SweepFailure` on a permanent failure under
    ``fail_fast``, and :class:`~repro.errors.SweepInterrupted` on
    Ctrl-C/SIGTERM — both carry every completed payload so callers can
    salvage them.  ``on_result(index, payload)`` fires as each payload
    is *accepted* (completion order), which is what the engine's
    periodic cache checkpointing hooks.
    """
    require_jobs(n_workers)
    config = (config or SupervisorConfig()).validate()
    plan = fault_plan if fault_plan is not None else active_plan()
    state = _RunState(jobs, config)
    if not jobs:
        return SupervisedRun(payloads=[], report=state.report)
    inline = ((n_workers == 1 or len(jobs) <= 1)
              and config.job_timeout_s is None
              and (plan is None or not plan.execution_rules()))
    with _sigterm_as_interrupt():
        if inline:
            _run_inline(state, plan, progress, on_result)
        else:
            _run_pool(state, n_workers, plan, progress, on_result)
    return SupervisedRun(payloads=state.payloads, report=state.report)


def _run_inline(state: _RunState, plan: Optional[FaultPlan],
                progress, on_result) -> None:
    """Single-process path: same retry/quarantine semantics, no pool.

    Only taken when the plan has no execution faults (a crash fault
    would ``os._exit`` the parent) and no wall-clock timeout is set (a
    hang cannot be reaped in-process).
    """
    config = state.config
    try:
        while True:
            item = state.pop_ready(time.monotonic())
            if item is None:
                wakeup = state.next_wakeup_in(time.monotonic())
                if wakeup is None:
                    break
                time.sleep(wakeup)
                continue
            index, attempt = item
            try:
                payload = run_with_faults(state.jobs[index], attempt, plan)
            except Exception as exc:
                state.fail(index, attempt, "error",
                           f"{type(exc).__name__}: {exc}", progress)
                continue
            if not payload_ok(payload):
                state.fail(index, attempt, "corrupt-payload",
                           "worker returned a structurally invalid "
                           "payload", progress)
                continue
            state.accept(index, payload, progress, on_result)
    except KeyboardInterrupt:
        raise SweepInterrupted(
            f"sweep interrupted with {state.resolved}/{len(state.jobs)} "
            f"jobs resolved", payloads=state.completed()) from None


def _run_pool(state: _RunState, n_workers: int,
              plan: Optional[FaultPlan], progress, on_result) -> None:
    config = state.config
    context = _pool_context()
    count = min(n_workers, len(state.jobs))
    workers: List[_Worker] = []
    try:
        workers = [_Worker(context, plan) for _ in range(count)]
        while state.resolved < len(state.jobs):
            now = time.monotonic()
            # Dispatch ready work to idle workers.
            for worker in workers:
                if worker.busy is not None:
                    continue
                item = state.pop_ready(now)
                if item is None:
                    break
                if not worker.dispatch(item[0], item[1],
                                       state.jobs[item[0]]):
                    # Pipe already broken: treat like a crash below.
                    worker.busy = (item[0], item[1])
                    worker.started_at = now
            # Wait for whichever busy worker speaks first.
            busy = [w for w in workers if w.busy is not None]
            if busy:
                ready = _connection_wait(
                    [w.conn for w in busy],
                    timeout=config.poll_interval_s)
                conn_to_worker = {id(w.conn): w for w in busy}
                for conn in ready:
                    worker = conn_to_worker[id(conn)]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        continue  # death: the health pass handles it
                    _handle_message(state, worker, message,
                                    progress, on_result)
            else:
                wakeup = state.next_wakeup_in(now)
                if wakeup is None:  # nothing pending, nothing in flight
                    break  # pragma: no cover - resolved check exits first
                if wakeup > 0:
                    time.sleep(min(wakeup, config.poll_interval_s))
            _health_pass(state, workers, context, plan, progress,
                         on_result)
    except KeyboardInterrupt:
        raise SweepInterrupted(
            f"sweep interrupted with {state.resolved}/{len(state.jobs)} "
            f"jobs resolved", payloads=state.completed()) from None
    finally:
        with _shield_signals():
            for worker in workers:
                if worker.busy is None:
                    worker.shutdown()
                else:
                    worker.kill()


def _handle_message(state: _RunState, worker: _Worker, message,
                    progress, on_result) -> None:
    worker.busy = None
    try:
        index, attempt, status, body = message
    except (TypeError, ValueError):
        return  # torn pipe garbage; the job stays with its attempt
    if status == "ok":
        if payload_ok(body):
            state.accept(index, body, progress, on_result)
        else:
            state.fail(index, attempt, "corrupt-payload",
                       "worker returned a structurally invalid payload",
                       progress)
    else:
        state.fail(index, attempt, "error", str(body), progress)


def _health_pass(state: _RunState, workers: List[_Worker], context,
                 plan: Optional[FaultPlan], progress, on_result) -> None:
    """Reap dead and overdue workers, requeueing their in-flight job."""
    now = time.monotonic()
    for slot, worker in enumerate(workers):
        if worker.busy is None:
            continue
        index, attempt = worker.busy
        if not worker.proc.is_alive():
            # Drain a result the worker managed to send before dying.
            with contextlib.suppress(EOFError, OSError):
                while worker.conn.poll(0):
                    _handle_message(state, worker, worker.conn.recv(),
                                    progress, on_result)
            if worker.busy is not None:
                exitcode = worker.proc.exitcode
                worker.busy = None
                state.fail(index, attempt, "worker-crash",
                           f"worker died with exit code {exitcode} "
                           f"while running the job", progress)
            worker.kill()
            workers[slot] = _Worker(context, plan)
        elif (state.config.job_timeout_s is not None
              and now - worker.started_at > state.config.job_timeout_s):
            worker.kill()
            worker.busy = None
            state.fail(index, attempt, "timeout",
                       f"job exceeded --job-timeout "
                       f"{state.config.job_timeout_s:.1f}s", progress)
            workers[slot] = _Worker(context, plan)
