"""Experiment harness: every table and figure of the evaluation.

* :mod:`repro.experiments.runner` — runs (benchmark, architecture,
  config) combinations with in-process memoization so figures sharing
  baselines do not repeat work.
* :mod:`repro.experiments.tables` — Tables I-III.
* :mod:`repro.experiments.figures` — Figures 3, 4, 9-16 plus the
  STU-associativity study the paper reports in text, each returning a
  :class:`~repro.experiments.report.FigureResult` with paper-vs-
  measured rows.
* :mod:`repro.experiments.report` — result containers and ASCII
  rendering (the library has no plotting dependency by design).

Run everything from the command line::

    python -m repro.experiments --figure 12
    python -m repro.experiments --all
"""

from repro.experiments.report import FigureResult, Row
from repro.experiments.runner import ExperimentRunner, RunSettings
from repro.experiments import figures, tables

__all__ = [
    "ExperimentRunner",
    "RunSettings",
    "FigureResult",
    "Row",
    "figures",
    "tables",
]
