"""Experiment harness: every table and figure of the evaluation.

* :mod:`repro.experiments.runner` — runs (benchmark, architecture,
  config) combinations with in-process memoization so figures sharing
  baselines do not repeat work.
* :mod:`repro.experiments.tables` — Tables I-III.
* :mod:`repro.experiments.figures` — Figures 3, 4, 9-16 plus the
  STU-associativity study the paper reports in text, each returning a
  :class:`~repro.experiments.report.FigureResult` with paper-vs-
  measured rows.
* :mod:`repro.experiments.sweep` — declarative sweep specs expanded
  over a ``multiprocessing`` pool; results are bit-identical to the
  serial runner because both share :func:`execute_job`.
* :mod:`repro.experiments.cachefile` — lock-safe, conflict-aware
  access to the shared on-disk JSON result cache.
* :mod:`repro.experiments.shardfile` — cross-host sweep sharding:
  per-shard caches and manifests, fingerprinted merge, and cache
  validation against a spec.
* :mod:`repro.experiments.report` — result containers and ASCII
  rendering (the library has no plotting dependency by design).

Run everything from the command line::

    python -m repro.experiments --figure 12
    python -m repro.experiments --all
"""

from repro.experiments.report import FigureResult, Row
from repro.experiments.runner import ExperimentRunner, RunSettings, SweepJob, \
    execute_job
from repro.experiments.shardfile import (
    ShardManifest,
    ValidationReport,
    merge_shards,
    shard_cache_path,
    spec_fingerprint,
    validate_cache,
)
from repro.experiments.sweep import SweepEngine, SweepSpec
from repro.experiments import figures, tables

__all__ = [
    "ExperimentRunner",
    "RunSettings",
    "SweepJob",
    "SweepEngine",
    "SweepSpec",
    "ShardManifest",
    "ValidationReport",
    "execute_job",
    "merge_shards",
    "shard_cache_path",
    "spec_fingerprint",
    "validate_cache",
    "FigureResult",
    "Row",
    "figures",
    "tables",
]
