"""The append-only perf trajectory and its regression verdicts.

``BENCH_core_loop.json`` is the repo's performance history: every
``deact bench`` run *appends* one entry — the full measurement payload
of :func:`repro.experiments.bench.measure_core_loop` plus a
provenance block (host, git commit + dirty flag, UTC timestamp,
python/numpy versions; see
:mod:`repro.experiments.provenance`) — so the committed file is a
time series, not a snapshot that each run clobbers.

On disk (schema 2)::

    {
      "schema": 2,
      "entries": [
        {
          "settings": {...}, "rows": [...], "aggregates": {...},
          "benchmarks": [...], "architectures": [...], "tiers": [...],
          "settings_fingerprint": "sha256...",
          "provenance": {"hostname": ..., "git_commit": ..., ...}
        },
        ...
      ]
    }

The original single-payload file (schema 1) auto-upgrades on load:
its payload becomes entry 0 with ``provenance: null`` — the
measurement predates provenance stamping, and inventing a host or
commit for it would poison the record.

**Settings fingerprints make comparisons honest.**  Each entry is
fingerprinted over everything that defines the measurement regime
(trace-scale settings, repeats, and the sorted benchmark /
architecture / tier sets).  Two entries compare per
(benchmark, architecture, tier) cell only when their fingerprints
match: the ``hot-loop`` workload halves its footprint below 8000
events, so a 4000-event run and a 16000-event run measure different
regimes and a throughput "regression" between them is noise by
construction.  Mismatches raise
:class:`~repro.errors.BenchSettingsMismatch` instead of producing a
verdict.

A comparison scores every cell shared by the two entries:
``ratio = candidate events/s ÷ baseline events/s``, regressed when
the ratio falls below ``1 - tolerance`` for that cell's tier.  The
report renders a per-cell verdict table and the CLI exits non-zero
when any cell regresses — this is the machine-checkable gate CI runs
against the committed baseline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import socket
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import BenchSettingsMismatch, BenchTrajectoryError
from repro.experiments.cachefile import write_json_atomic
from repro.experiments.provenance import collect_provenance

__all__ = [
    "TRAJECTORY_SCHEMA",
    "DEFAULT_TOLERANCES",
    "CellVerdict",
    "CompareReport",
    "FloorVerdict",
    "append_entry",
    "batch_floor_verdicts",
    "compare_entries",
    "describe_entry",
    "entry_from_payload",
    "latest_entry",
    "load_trajectory",
    "runner_pinned",
    "select_comparable",
    "settings_fingerprint",
    "write_trajectory",
]

TRAJECTORY_SCHEMA = 2

#: Per-tier regression tolerance (fraction of baseline throughput a
#: cell may lose before the verdict flips).  Faster tiers finish the
#: fixed-event trace in less wall time, so the same absolute timer /
#: scheduler noise is a larger *fraction* of their measurement —
#: hence the widening ladder.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "reference": 0.20,
    "fast": 0.25,
    "batch": 0.30,
}


# ----------------------------------------------------------------------
# Fingerprints and entries
# ----------------------------------------------------------------------
def settings_fingerprint(entry: Mapping[str, Any]) -> str:
    """SHA-256 over everything that defines a measurement regime.

    Trace-scale settings (``n_events`` drives the hot-loop footprint
    halving), best-of-N repeats, and the benchmark / architecture /
    tier sets — *sorted*, so two runs that listed the same
    architectures in different orders still compare.  Wall-clock
    numbers and provenance deliberately stay out: the fingerprint
    answers "may these be compared", not "are these equal".
    """
    basis = {
        "settings": dict(entry.get("settings", {})),
        "benchmarks": sorted(entry.get("benchmarks", [])),
        "architectures": sorted(entry.get("architectures", [])),
        "tiers": sorted(entry.get("tiers", [])),
    }
    text = json.dumps(basis, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def entry_from_payload(payload: Mapping[str, Any],
                       provenance: Optional[Mapping[str, Any]] = None,
                       ) -> Dict[str, Any]:
    """A trajectory entry from a ``measure_core_loop`` payload.

    ``provenance`` defaults to collecting it fresh; pass ``None``
    explicitly via :func:`_legacy_entry` only for schema-1 upgrades,
    where the producing host/commit are genuinely unknown.
    """
    entry = {key: value for key, value in payload.items()
             if key != "schema"}
    entry["settings_fingerprint"] = settings_fingerprint(entry)
    entry["provenance"] = dict(provenance) if provenance is not None \
        else collect_provenance()
    return entry


def _legacy_entry(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Schema-1 upgrade: the old payload as entry 0, provenance null."""
    entry = {key: value for key, value in payload.items()
             if key != "schema"}
    entry["settings_fingerprint"] = settings_fingerprint(entry)
    entry["provenance"] = None
    return entry


# ----------------------------------------------------------------------
# Load / save
# ----------------------------------------------------------------------
def load_trajectory(path: str) -> Dict[str, Any]:
    """Read a trajectory file, auto-upgrading schema 1.

    A missing file is an empty trajectory (first ``deact bench`` on a
    fresh clone).  Anything unreadable or structurally wrong raises
    :class:`BenchTrajectoryError`: the trajectory is history, and the
    append path must never paper over a corrupt record by treating it
    as empty and overwriting it.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BenchTrajectoryError(
            f"unreadable bench trajectory {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BenchTrajectoryError(
            f"bench trajectory {path} is not a JSON object")
    schema = data.get("schema")
    if schema == 1:
        # The pre-trajectory format: one bare measurement payload.
        if "rows" not in data:
            raise BenchTrajectoryError(
                f"bench trajectory {path} claims schema 1 but has no "
                f"measurement rows")
        return {"schema": TRAJECTORY_SCHEMA,
                "entries": [_legacy_entry(data)]}
    if schema != TRAJECTORY_SCHEMA:
        raise BenchTrajectoryError(
            f"bench trajectory {path} has schema {schema!r}, expected "
            f"{TRAJECTORY_SCHEMA} (or 1 for auto-upgrade)")
    entries = data.get("entries")
    if not isinstance(entries, list) or not all(
            isinstance(entry, dict) and "rows" in entry
            for entry in entries):
        raise BenchTrajectoryError(
            f"bench trajectory {path} entries are malformed")
    return {"schema": TRAJECTORY_SCHEMA, "entries": list(entries)}


def write_trajectory(path: str, trajectory: Mapping[str, Any]) -> str:
    """Atomically write a trajectory (tmp + rename, like every other
    artifact the harness persists)."""
    write_json_atomic(path, dict(trajectory), sort_keys=True, indent=2)
    return path


def append_entry(path: str, payload: Mapping[str, Any],
                 provenance: Optional[Mapping[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """Append one measurement to the trajectory at ``path``.

    Loads (upgrading schema 1 in passing), appends, atomically
    rewrites.  Returns the appended entry.
    """
    trajectory = load_trajectory(path)
    entry = entry_from_payload(payload, provenance=provenance)
    trajectory["entries"].append(entry)
    write_trajectory(path, trajectory)
    return entry


def latest_entry(trajectory: Mapping[str, Any],
                 fingerprint: Optional[str] = None,
                 ) -> Optional[Dict[str, Any]]:
    """Newest entry, optionally restricted to one settings regime."""
    entries: List[Dict[str, Any]] = list(trajectory.get("entries", []))
    for entry in reversed(entries):
        if fingerprint is None or \
                entry.get("settings_fingerprint") == fingerprint:
            return entry
    return None


def select_comparable(trajectory: Mapping[str, Any],
                      candidate: Mapping[str, Any],
                      label: str,
                      hostname: Optional[str] = None) -> Dict[str, Any]:
    """The newest baseline entry measured under ``candidate``'s regime.

    A trajectory legitimately mixes regimes over its life (events
    bumped, a benchmark added), so the baseline pick filters by the
    candidate's fingerprint — and refuses outright when no entry
    matches, rather than comparing across regimes.

    Among matching entries the pick prefers the newest whose
    ``provenance.hostname`` equals ``hostname`` (default: this host).
    Throughput baselines are machine-specific — an entry appended by a
    faster machine would flag phantom regressions on a slower one, and
    vice versa would wave real ones through — so same-host history is
    the honest yardstick.  When no matching entry came from this host
    (first run here, or legacy entries with null provenance), the
    newest fingerprint match is used regardless: a cross-host ratio
    plus the per-tier tolerance is still a coarse sanity gate, and
    refusing would make fresh CI hosts ungateable.
    """
    fingerprint = candidate.get("settings_fingerprint") \
        or settings_fingerprint(candidate)
    matches = [entry for entry in trajectory.get("entries", [])
               if entry.get("settings_fingerprint") == fingerprint]
    if not matches:
        seen = sorted({str(e.get("settings_fingerprint"))[:12]
                       for e in trajectory.get("entries", [])})
        raise BenchSettingsMismatch(
            f"no entry in {label} was measured under the candidate's "
            f"settings (fingerprint {fingerprint[:12]}...; {label} has "
            f"{', '.join(seen) if seen else 'no entries'}): comparing "
            f"across --events/benchmark/architecture sets is "
            f"meaningless")
    if hostname is None:
        hostname = socket.gethostname()
    for entry in reversed(matches):
        provenance = entry.get("provenance") or {}
        if provenance.get("hostname") == hostname:
            return entry
    return matches[-1]


def runner_pinned(trajectory: Mapping[str, Any],
                  candidate: Mapping[str, Any],
                  hostname: Optional[str] = None) -> bool:
    """Whether this host has enough same-regime history to gate at the
    per-tier default tolerances.

    True once **≥ 2** entries matching ``candidate``'s fingerprint
    carry this host's ``provenance.hostname`` — the pick from
    :func:`select_comparable` is then both same-host (the ratio
    measures the code change, not the machine change) and demonstrably
    repeatable on this runner (a single entry might itself be an
    outlier; two establish the regime exists here).  Below that, a
    caller's cross-host fallback tolerance should apply instead.
    """
    fingerprint = candidate.get("settings_fingerprint") \
        or settings_fingerprint(candidate)
    if hostname is None:
        hostname = socket.gethostname()
    pinned = 0
    for entry in trajectory.get("entries", []):
        if entry.get("settings_fingerprint") != fingerprint:
            continue
        provenance = entry.get("provenance") or {}
        if provenance.get("hostname") == hostname:
            pinned += 1
            if pinned >= 2:
                return True
    return False


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CellVerdict:
    """One (benchmark, architecture, tier) cell's before/after."""

    benchmark: str
    architecture: str
    tier: str
    baseline_eps: float
    candidate_eps: float
    tolerance: float

    @property
    def ratio(self) -> float:
        if self.baseline_eps <= 0:
            return float("inf")
        return self.candidate_eps / self.baseline_eps

    @property
    def regressed(self) -> bool:
        return self.ratio < 1.0 - self.tolerance


@dataclasses.dataclass(frozen=True)
class CompareReport:
    """Per-cell verdicts of one baseline-vs-candidate comparison."""

    cells: Tuple[CellVerdict, ...]
    fingerprint: str

    @property
    def regressions(self) -> Tuple[CellVerdict, ...]:
        return tuple(cell for cell in self.cells if cell.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        header = (f"{'benchmark':<10} {'arch':<8} {'tier':<10} "
                  f"{'baseline/s':>12} {'candidate/s':>12} "
                  f"{'ratio':>7} {'tol':>5}  verdict")
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            verdict = "REGRESSED" if cell.regressed else "ok"
            lines.append(
                f"{cell.benchmark:<10} {cell.architecture:<8} "
                f"{cell.tier:<10} {cell.baseline_eps:>12,.0f} "
                f"{cell.candidate_eps:>12,.0f} {cell.ratio:>6.2f}x "
                f"{cell.tolerance:>4.0%}  {verdict}")
        lines.append(
            f"verdict: {len(self.regressions)} of {len(self.cells)} "
            f"cell(s) regressed "
            f"(settings fingerprint {self.fingerprint[:12]}...)")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class FloorVerdict:
    """One benchmark's batch-over-fast speedup against a floor.

    Unlike :class:`CellVerdict` this is absolute, not relative to a
    baseline entry: the batch tier must *be* at least this much faster
    than the fast tier in the candidate measurement itself, so a
    regression cannot hide behind an equally-regressed baseline.
    """

    benchmark: str
    min_speedup: float
    speedup: Optional[float]

    @property
    def ok(self) -> bool:
        return self.speedup is not None and \
            self.speedup >= self.min_speedup

    def render(self) -> str:
        if self.speedup is None:
            detail = "no batch/fast aggregate measured"
        else:
            detail = f"batch/fast {self.speedup:.2f}x " \
                     f"(floor {self.min_speedup:.2f}x)"
        verdict = "ok" if self.ok else "BELOW FLOOR"
        return f"{self.benchmark:<10} {detail}  {verdict}"


def batch_floor_verdicts(entry: Mapping[str, Any],
                         floors: Mapping[str, float],
                         ) -> Tuple[FloorVerdict, ...]:
    """Per-benchmark batch-vs-fast floor verdicts for one entry.

    ``floors`` maps benchmark name to the minimum acceptable
    ``batch_speedup_vs_fast`` (1.0 = "batch at least matches fast").
    A benchmark missing from the entry's aggregates — or measured
    without both tiers — yields a failing verdict rather than a silent
    skip: a gate that vanishes when the measurement shrinks is no
    gate.
    """
    aggregates = entry.get("aggregates") or {}
    verdicts: List[FloorVerdict] = []
    for benchmark in sorted(floors):
        aggregate = aggregates.get(benchmark) or {}
        raw = aggregate.get("batch_speedup_vs_fast")
        verdicts.append(FloorVerdict(
            benchmark=benchmark,
            min_speedup=float(floors[benchmark]),
            speedup=float(raw) if raw is not None else None,
        ))
    return tuple(verdicts)


def _cell_rates(entry: Mapping[str, Any],
                ) -> Dict[Tuple[str, str, str], float]:
    rates: Dict[Tuple[str, str, str], float] = {}
    for row in entry.get("rows", []):
        key = (row["benchmark"], row["architecture"], row["tier"])
        rates[key] = float(row["events_per_sec"])
    return rates


def compare_entries(baseline: Mapping[str, Any],
                    candidate: Mapping[str, Any],
                    tolerances: Optional[Mapping[str, float]] = None,
                    ) -> CompareReport:
    """Score ``candidate`` against ``baseline`` per cell.

    Refuses (``BenchSettingsMismatch``) when the entries' settings
    fingerprints differ — cross-regime events/s ratios measure the
    workload generator, not the simulator.  ``tolerances`` maps tier
    name to allowed fractional loss; a tier not named there falls
    back to the caller's ``"default"`` key, then to
    :data:`DEFAULT_TOLERANCES`, then to the reference tier's default.
    """
    base_fp = baseline.get("settings_fingerprint") \
        or settings_fingerprint(baseline)
    cand_fp = candidate.get("settings_fingerprint") \
        or settings_fingerprint(candidate)
    if base_fp != cand_fp:
        raise BenchSettingsMismatch(
            f"refusing to compare bench entries with different settings "
            f"fingerprints ({base_fp[:12]}... vs {cand_fp[:12]}...): "
            f"events/benchmark/architecture sets differ, so per-cell "
            f"throughput ratios would be meaningless")
    tolerances = dict(tolerances or {})
    base_rates = _cell_rates(baseline)
    cand_rates = _cell_rates(candidate)
    cells: List[CellVerdict] = []
    for key in sorted(set(base_rates) & set(cand_rates)):
        benchmark, architecture, tier = key
        tolerance = tolerances.get(tier, tolerances.get(
            "default", DEFAULT_TOLERANCES.get(
                tier, DEFAULT_TOLERANCES["reference"])))
        cells.append(CellVerdict(
            benchmark=benchmark,
            architecture=architecture,
            tier=tier,
            baseline_eps=base_rates[key],
            candidate_eps=cand_rates[key],
            tolerance=tolerance,
        ))
    if not cells:
        raise BenchTrajectoryError(
            "the entries share no (benchmark, architecture, tier) "
            "cells to compare")
    return CompareReport(cells=tuple(cells), fingerprint=base_fp)


def describe_entry(entry: Mapping[str, Any]) -> str:
    """One provenance line for an entry (CLI append confirmation)."""
    prov = entry.get("provenance") or {}
    commit = prov.get("git_commit")
    commit_text = (commit[:12] + ("+dirty" if prov.get("git_dirty")
                                  else "")) if commit else "unknown"
    host = prov.get("hostname") or "unknown-host"
    return (f"host {host}, commit {commit_text}, "
            f"{len(entry.get('rows', []))} cell row(s), fingerprint "
            f"{entry.get('settings_fingerprint', '')[:12]}...")
