"""Parallel sweep engine for the experiment harness.

A *sweep* is a declarative cross product — benchmarks × architectures
× configuration variants — expanded into independent
:class:`~repro.experiments.runner.SweepJob` units and fanned out over
a ``multiprocessing`` pool.  Because every job runs through the same
pure :func:`~repro.experiments.runner.execute_job` the serial runner
uses, results are bit-identical regardless of worker count or
completion order (the determinism suite in ``tests/test_determinism.py``
enforces this).

Results merge into the same on-disk JSON cache the
:class:`~repro.experiments.runner.ExperimentRunner` reads, through the
lock-safe writer in :mod:`repro.experiments.cachefile`, so concurrent
sweeps (or a sweep racing a figure regeneration) cannot corrupt it.

Typical use::

    spec = SweepSpec.build(benchmarks=["mcf", "canl"],
                           architectures=["i-fam", "deact-n"],
                           axes={"stu-entries": [256, 1024]})
    engine = SweepEngine(RunSettings(), cache_path="results.json", jobs=4)
    results = engine.run(spec)   # {(bench, arch, variant): RunResult}
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config.presets import (
    default_config,
    with_acm_bits,
    with_acm_subways,
    with_allocation_policy,
    with_fabric_latency,
    with_nodes,
    with_stu_associativity,
    with_stu_entries,
)
from repro.config.system import SystemConfig
from repro.core.architectures import ARCHITECTURES
from repro.core.results import RunResult
from repro.errors import ConfigError, SweepFailure, SweepInterrupted
from repro.experiments.cachefile import load_cache, merge_into_cache
from repro.experiments.faults import FaultPlan
from repro.experiments.runner import (
    RunSettings,
    SweepJob,
    _result_from_dict,
    job_key,
    require_jobs,
)
from repro.experiments.supervisor import (
    FailureReport,
    SupervisorConfig,
    _shield_signals,
    run_supervised,
)
from repro.workloads.catalog import benchmark_names

__all__ = ["SWEEP_AXES", "SweepSpec", "SweepEngine", "SweepProgress",
           "parse_shard", "run_jobs"]

#: Declarative sweep axes: name -> (value parser, config transform).
#: Each mirrors one ``with_*`` preset helper, i.e. one sensitivity
#: dimension of the paper (Figures 13-16 and the allocation ablation).
SWEEP_AXES: Dict[str, Tuple[Callable, Callable]] = {
    "stu-entries": (int, with_stu_entries),
    "stu-associativity": (int, with_stu_associativity),
    "acm-bits": (int, with_acm_bits),
    "acm-subways": (int, with_acm_subways),
    "fabric-latency-ns": (float, with_fabric_latency),
    "nodes": (int, with_nodes),
    "allocation-policy": (str, with_allocation_policy),
}


@dataclass(frozen=True)
class SweepSpec:
    """A fully expanded sweep: which cells of the cube to simulate.

    ``variants`` maps a human-readable label (e.g. ``stu-entries=256``)
    to the :class:`SystemConfig` to run; ``default`` denotes the
    unmodified Table II configuration.
    """

    benchmarks: Tuple[str, ...]
    architectures: Tuple[str, ...]
    variants: Tuple[Tuple[str, SystemConfig], ...]

    @classmethod
    def build(cls, benchmarks: Optional[Sequence[str]] = None,
              architectures: Optional[Sequence[str]] = None,
              axes: Optional[Dict[str, Sequence]] = None,
              base_config: Optional[SystemConfig] = None) -> "SweepSpec":
        """Validate names and expand ``axes`` into config variants.

        ``axes`` maps an axis name from :data:`SWEEP_AXES` to the
        values to sweep; multiple axes expand as a cross product.
        Unknown benchmarks, architectures, or axes raise
        :class:`~repro.errors.ConfigError` before any simulation time
        is spent.
        """
        known_benches = benchmark_names()
        benches = tuple(benchmarks) if benchmarks else tuple(known_benches)
        for bench in benches:
            if bench not in known_benches:
                raise ConfigError(
                    f"unknown benchmark {bench!r}; expected one of "
                    f"{', '.join(known_benches)}")
        archs = tuple(architectures) if architectures \
            else tuple(sorted(ARCHITECTURES))
        for arch in archs:
            if arch not in ARCHITECTURES:
                raise ConfigError(
                    f"unknown architecture {arch!r}; expected one of "
                    f"{', '.join(sorted(ARCHITECTURES))}")
        base = base_config or default_config()
        variants: List[Tuple[str, SystemConfig]] = [("default", base)]
        for axis, values in (axes or {}).items():
            if axis not in SWEEP_AXES:
                raise ConfigError(
                    f"unknown sweep axis {axis!r}; expected one of "
                    f"{', '.join(sorted(SWEEP_AXES))}")
            if not values:
                raise ConfigError(f"sweep axis {axis!r} has no values")
            parse, apply = SWEEP_AXES[axis]
            parsed = []
            for raw in values:
                try:
                    parsed.append(parse(raw))
                except (TypeError, ValueError) as exc:
                    raise ConfigError(
                        f"bad value {raw!r} for sweep axis {axis!r}: "
                        f"{exc}") from exc
            expanded = []
            for label, config in variants:
                for value in parsed:
                    point = f"{axis}={value}"
                    new_label = point if label == "default" \
                        else f"{label},{point}"
                    expanded.append((new_label, apply(config, value)))
            variants = expanded
        return cls(benchmarks=benches, architectures=archs,
                   variants=tuple(variants))

    def jobs(self, settings: RunSettings) \
            -> List[Tuple[Tuple[str, str, str], SweepJob]]:
        """Expand to ``((benchmark, architecture, variant), job)`` cells
        in deterministic (spec) order."""
        cells = []
        for label, config in self.variants:
            for benchmark in self.benchmarks:
                for architecture in self.architectures:
                    cells.append(((benchmark, architecture, label),
                                  SweepJob(benchmark, architecture, config,
                                           settings)))
        return cells

    def shard(self, index: int, count: int, settings: RunSettings,
              cells: Optional[List[Tuple[Tuple[str, str, str],
                                         SweepJob]]] = None) \
            -> List[Tuple[Tuple[str, str, str], SweepJob]]:
        """Deterministic partition of :meth:`jobs` for cross-host runs.

        Shard ``index`` of ``count`` (1-based, as in ``--shard I/N``)
        takes every ``count``-th cell of the spec-ordered expansion
        starting at cell ``index - 1`` — a stride partition, so the
        shards are **disjoint**, their union is **exhaustive**, and
        the assignment is **stable** for a given spec on every host.
        Striding (rather than contiguous chunks) also spreads each
        benchmark's variants across shards, which balances load when
        benchmarks differ in cost.

        ``cells`` lets a caller that already expanded :meth:`jobs`
        skip re-expanding it (expansion rebuilds every variant
        config).
        """
        if count < 1:
            raise ConfigError(f"shard count must be >= 1, got {count}")
        if not 1 <= index <= count:
            raise ConfigError(
                f"shard index must be in 1..{count}, got {index}")
        if cells is None:
            cells = self.jobs(settings)
        return cells[index - 1::count]

    def __len__(self) -> int:
        return (len(self.benchmarks) * len(self.architectures)
                * len(self.variants))


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``--shard I/N`` argument into ``(index, count)``."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError("missing '/'")
        index, count = int(index_text), int(count_text)
    except ValueError as exc:
        raise ConfigError(
            f"--shard expects I/N (e.g. 1/4), got {text!r}") from exc
    if count < 1 or not 1 <= index <= count:
        raise ConfigError(
            f"--shard index must be in 1..count, got {text!r}")
    return index, count


# ----------------------------------------------------------------------
# Worker fan-out (supervised)
# ----------------------------------------------------------------------
def run_jobs(jobs: Sequence[SweepJob], n_workers: int,
             progress: Optional[Callable[[int, int], None]] = None,
             supervisor: Optional[SupervisorConfig] = None,
             on_result: Optional[Callable[[int, dict], None]] = None,
             fault_plan: Optional[FaultPlan] = None) -> List[dict]:
    """Execute ``jobs``, returning serialized results in input order.

    A thin wrapper over
    :func:`~repro.experiments.supervisor.run_supervised` that keeps
    this function's historical contract: any permanently failed job
    raises :class:`~repro.errors.SweepFailure` (after the configured
    retries) and the returned list is fully populated, so callers like
    :meth:`~repro.experiments.runner.ExperimentRunner.prewarm` never
    see ``None`` holes.  Callers wanting quarantine semantics — a
    partial result plus a failure report — use
    :func:`~repro.experiments.supervisor.run_supervised` directly, as
    the sweep engine does.

    Output order is by input index, so completion order — the only
    nondeterministic part of a parallel sweep — never leaks into
    results.  ``progress`` is called as ``progress(done, total)`` as
    jobs resolve.
    """
    config = supervisor or SupervisorConfig(fail_fast=True)
    run = run_supervised(jobs, n_workers, config=config,
                         progress=progress, on_result=on_result,
                         fault_plan=fault_plan)
    if run.report:
        raise SweepFailure(
            f"sweep failed: {run.report.render()}", report=run.report,
            payloads=run.completed())
    return run.payloads  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Progress / ETA reporting
# ----------------------------------------------------------------------
class SweepProgress:
    """Line-per-update progress reporter with a running ETA.

    Writes to ``stream`` (default stderr) so figure/table output on
    stdout stays machine-readable.
    """

    def __init__(self, stream=None, min_interval_s: float = 0.0) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._start: Optional[float] = None
        self._last_emit: Optional[float] = None

    def __call__(self, done: int, total: int) -> None:
        now = time.monotonic()
        if self._start is None:
            self._start = now
        elapsed = now - self._start
        # The first and last updates always emit; in between,
        # ``min_interval_s`` rate-limits chatty sweeps.
        if (done < total and self._last_emit is not None
                and now - self._last_emit < self.min_interval_s):
            return
        self._last_emit = now
        eta = (elapsed / done) * (total - done) if done else float("inf")
        self.stream.write(
            f"[sweep] {done}/{total} runs done, "
            f"elapsed {elapsed:.1f}s, eta {eta:.1f}s\n")
        self.stream.flush()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SweepEngine:
    """Expand a :class:`SweepSpec`, execute missing cells on a worker
    pool, and merge results into the shared on-disk cache."""

    def __init__(self, settings: Optional[RunSettings] = None,
                 cache_path: Optional[str] = None, jobs: int = 1,
                 progress: Optional[Callable[[int, int], None]] = None,
                 ) -> None:
        require_jobs(jobs)
        self.settings = settings or RunSettings()
        self.cache_path = cache_path
        self.jobs = jobs
        self.progress = progress
        #: The last run's quarantine list (``None`` until a run under
        #: ``keep_going`` leaves permanent failures behind).
        self.failures: Optional[FailureReport] = None
        self._disk: Dict[str, dict] = (
            load_cache(cache_path) if cache_path else {})

    def run(self, spec: SweepSpec,
            shard: Optional[Tuple[int, int]] = None,
            keep_going: bool = False,
            supervisor: Optional[SupervisorConfig] = None,
            fault_plan: Optional[FaultPlan] = None,
            checkpoint_every: Optional[int] = None) \
            -> Dict[Tuple[str, str, str], RunResult]:
        """Run every cell of ``spec`` (recalling cached ones), returning
        ``(benchmark, architecture, variant) -> RunResult``.

        With ``shard=(index, count)`` only that :meth:`SweepSpec.shard`
        partition runs, and — when the engine has a ``cache_path``,
        which for a shard run should be the per-shard cache from
        :func:`~repro.experiments.shardfile.shard_cache_path` — a
        shard manifest (spec fingerprint, covered cell keys, host
        provenance) is written next to the cache so ``deact cache
        merge``/``validate`` can verify the reassembled sweep.

        Robustness knobs (all optional):

        * ``keep_going`` — quarantine permanently failed jobs instead
          of raising: the result dict simply lacks those cells and the
          structured report lands on :attr:`failures`.  ``supervisor``
          overrides the whole retry/timeout policy at once (its own
          ``fail_fast`` then wins over ``keep_going``).
        * ``checkpoint_every=N`` — merge completed payloads into the
          cache every N results, so a killed sweep resumes from the
          last checkpoint instead of from zero.
        * On :class:`~repro.errors.SweepFailure` (fail-fast) and
          :class:`~repro.errors.SweepInterrupted` (Ctrl-C/SIGTERM),
          every payload completed before the abort is flushed to the
          cache before the exception propagates — an aborted sweep
          loses at most its in-flight jobs.
        """
        all_cells = spec.jobs(self.settings)
        if shard is None:
            cells = all_cells
        else:
            cells = spec.shard(shard[0], shard[1], self.settings,
                               cells=all_cells)
        pending: List[SweepJob] = []
        pending_keys: List[str] = []
        seen = set()
        payloads: Dict[str, dict] = {}
        for _cell, job in cells:
            key = job_key(job)
            if key in seen:
                continue
            seen.add(key)
            cached = self._disk.get(key)
            if cached is not None:
                payloads[key] = cached
            else:
                pending.append(job)
                pending_keys.append(key)
        config = supervisor or SupervisorConfig(fail_fast=not keep_going)
        unflushed: Dict[str, dict] = {}

        def checkpoint(index: int, payload: dict) -> None:
            unflushed[pending_keys[index]] = payload
            if (checkpoint_every and self.cache_path is not None
                    and len(unflushed) >= checkpoint_every):
                self._disk = merge_into_cache(self.cache_path,
                                              dict(unflushed))
                unflushed.clear()

        self.failures = None
        try:
            run = run_supervised(pending, self.jobs, config=config,
                                 progress=self.progress,
                                 on_result=checkpoint,
                                 fault_plan=fault_plan)
        except (SweepFailure, SweepInterrupted) as exc:
            # Salvage: completed cells go to the cache even though the
            # sweep as a whole is aborting.  Shielded — a second Ctrl-C
            # or SIGTERM here would drop every completed payload.
            with _shield_signals():
                salvaged = {pending_keys[i]: p
                            for i, p in exc.payloads.items()}
                if salvaged and self.cache_path is not None:
                    self._disk = merge_into_cache(self.cache_path,
                                                  salvaged)
            raise
        self.failures = run.report if run.report else None
        fresh = {pending_keys[i]: p
                 for i, p in enumerate(run.payloads) if p is not None}
        payloads.update(fresh)
        if fresh and self.cache_path is not None:
            self._disk = merge_into_cache(self.cache_path, fresh)
        else:
            self._disk.update(fresh)
        if shard is not None and self.cache_path is not None:
            # Imported here, not at module top: shardfile imports this
            # module's sibling runner, and keeping the dependency
            # one-way at import time avoids a cycle if shardfile ever
            # needs SweepSpec.
            from repro.experiments.shardfile import (
                build_manifest,
                manifest_path,
                write_manifest,
            )
            if not fresh:
                # Even a shard with nothing fresh to add (all cells
                # recalled, or a stride past the cell count) must
                # leave a cache file: the merge discovers shards by
                # their cache files and checks every index 1..N is
                # present.
                self._disk = merge_into_cache(self.cache_path,
                                              self._disk)
            write_manifest(manifest_path(self.cache_path),
                           build_manifest(spec, self.settings,
                                          shard[0], shard[1],
                                          cells=all_cells))
        # Quarantined cells (keep_going) simply have no entry; callers
        # consult ``self.failures`` for the structured report.
        return {cell: _result_from_dict(payloads[job_key(job)])
                for cell, job in cells
                if job_key(job) in payloads}
