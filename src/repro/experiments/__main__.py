"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments --figure 12
    python -m repro.experiments --figure 3 --figure 4 --events 60000
    python -m repro.experiments --all --cache results.json --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ConfigError
from repro.experiments.figures import ALL_FIGURES, figure_matrix
from repro.experiments.runner import (
    ExperimentRunner,
    RunSettings,
    require_jobs,
)
from repro.experiments.sweep import SweepProgress
from repro.experiments.tables import table1, table2, table3, table3_matrix

#: Figures whose sweep matrices get expensive; the CLI trims their
#: benchmark set to the paper's sensitivity groups automatically.
_SWEEP_FIGURES = {"13", "13a", "14", "14s", "15"}
_SWEEP_BENCHES = ["mcf", "cactus", "astar", "frqm", "canl", "bc", "cc",
                  "ccsv", "sssp", "pf", "dc"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("--figure", action="append", default=[],
                        choices=sorted(ALL_FIGURES) + ["t1", "t2", "t3"],
                        help="figure/table id (repeatable)")
    parser.add_argument("--all", action="store_true",
                        help="run every table and figure")
    parser.add_argument("--events", type=int, default=150_000,
                        help="trace events per run (default 150000)")
    parser.add_argument("--footprint-scale", type=float, default=0.12,
                        help="benchmark footprint scale (default 0.12)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache", default=None,
                        help="JSON file memoizing run results")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the run matrices "
                             "(default 1 = serial)")
    args = parser.parse_args(argv)
    try:
        require_jobs(args.jobs, flag="--jobs")
    except ConfigError as exc:
        parser.error(str(exc))

    wanted = list(args.figure)
    if args.all:
        wanted = ["t1", "t2", "t3"] + sorted(ALL_FIGURES)
    if not wanted:
        parser.error("pick --figure IDs or --all")

    settings = RunSettings(n_events=args.events,
                           footprint_scale=args.footprint_scale,
                           seed=args.seed)
    runner = ExperimentRunner(settings, cache_path=args.cache,
                              jobs=args.jobs)

    if args.jobs > 1:
        # Batch every wanted run matrix through the worker pool first;
        # the figure builders below then assemble rows from the memo
        # without executing anything new.
        triples = []
        for item in wanted:
            if item == "t3":
                triples.extend(table3_matrix())
            elif item in ALL_FIGURES:
                benches = _SWEEP_BENCHES if item in _SWEEP_FIGURES else None
                triples.extend(figure_matrix(item, benches))
        runner.prewarm(triples, progress=SweepProgress())

    for item in wanted:
        start = time.time()
        if item == "t1":
            result = table1()
        elif item == "t2":
            result = table2()
        elif item == "t3":
            result = table3(runner)
        else:
            builder = ALL_FIGURES[item]
            benches = _SWEEP_BENCHES if item in _SWEEP_FIGURES else None
            result = builder(runner, benchmarks=benches)
        print(result.render())
        print(f"[{item} done in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
