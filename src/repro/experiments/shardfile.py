"""Shard caches, manifests, and the merge/validate pipeline.

A sweep partitioned across hosts (``deact sweep --shard I/N``) writes
one *shard cache* per host next to the canonical cache, plus a
*manifest* recording exactly what that shard covered:

    results.json                        canonical (deact cache merge)
    results.shard-1-of-2.json           shard cache, host A
    results.shard-1-of-2.manifest.json  manifest, host A
    results.shard-2-of-2.json           shard cache, host B
    results.shard-2-of-2.manifest.json  manifest, host B

The manifest pins the **spec fingerprint** — an order-independent
SHA-256 over every cache key the *full* spec expands to (see
:func:`~repro.experiments.runner.fingerprint_keys`) — so a merge can
refuse shards produced from different specs or trace-scale settings,
and :func:`validate_cache` can prove a merged cache covers a spec
exactly (no missing cells, no orphan keys, matching fingerprints).

Merging is conflict-aware end to end: the same key arriving from two
shards (or already on disk) with a different simulated outcome is an
error under strict mode, never a silent overwrite — deterministic
jobs that disagree signal nondeterminism, schema drift between hosts,
or a mislabeled shard file.  Because caches are written with sorted
keys, a successful merge is byte-identical to the cache an unsharded
sweep of the same spec would have written (telemetry — wall-clock
measurement metadata — aside; :func:`canonical_cache_text` is the
comparison the determinism suite and CI use).
"""

from __future__ import annotations

import dataclasses
import glob
import json
import logging
import os
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CacheError, CacheMergeConflict
from repro.experiments.cachefile import (
    cache_lock,
    load_cache,
    merge_into_cache,
    payloads_equivalent,
    strip_telemetry,
    write_cache_atomic,
    write_json_atomic,
)
from repro.experiments.provenance import collect_provenance
from repro.experiments.runner import fingerprint_keys, job_key, payload_ok

__all__ = [
    "MANIFEST_SCHEMA",
    "RepairReport",
    "ShardManifest",
    "ValidationReport",
    "build_manifest",
    "canonical_cache_text",
    "discover_manifests",
    "discover_shards",
    "load_manifest",
    "manifest_path",
    "merge_shards",
    "quarantine_path",
    "repair_cache",
    "shard_cache_path",
    "spec_fingerprint",
    "validate_cache",
    "write_manifest",
]

logger = logging.getLogger(__name__)

MANIFEST_SCHEMA = 1

_SHARD_STEM_RE = re.compile(r"\.shard-(\d+)-of-(\d+)$")


# ----------------------------------------------------------------------
# Path conventions
# ----------------------------------------------------------------------
def shard_cache_path(base: str, index: int, count: int) -> str:
    """``results.json`` + shard 1/2 -> ``results.shard-1-of-2.json``."""
    root, ext = os.path.splitext(base)
    return f"{root}.shard-{index}-of-{count}{ext or '.json'}"


def manifest_path(cache_path: str) -> str:
    """The manifest sitting next to a (shard) cache file."""
    root, ext = os.path.splitext(cache_path)
    return f"{root}.manifest{ext or '.json'}"


def discover_shards(base: str) -> List[str]:
    """Shard caches named for the canonical cache at ``base``.

    Matches the :func:`shard_cache_path` convention, skips the
    manifests that share the prefix, and sorts **numerically** by
    (count, index): lexicographic order would visit shard 10 before
    shard 2, breaking the first-seen-wins precedence the forced merge
    documents.
    """
    root, ext = os.path.splitext(base)
    found = []
    for path in glob.glob(
            f"{glob.escape(root)}.shard-*-of-*{ext or '.json'}"):
        match = _SHARD_STEM_RE.search(os.path.splitext(path)[0])
        if match:
            found.append((int(match.group(2)), int(match.group(1)), path))
    return [path for _count, _index, path in sorted(found)]


def discover_manifests(base: str) -> List[str]:
    """Shard manifests named for the canonical cache at ``base``."""
    return [manifest_path(path) for path in discover_shards(base)
            if os.path.exists(manifest_path(path))]


# ----------------------------------------------------------------------
# Fingerprints and manifests
# ----------------------------------------------------------------------
def spec_fingerprint(spec, settings) -> str:
    """Fingerprint of every cache key a spec expands to.

    Identical across hosts, shard assignments, and cell orderings;
    different for any change to benchmarks, architectures, variants,
    or trace-scale settings.
    """
    return fingerprint_keys(
        job_key(job) for _cell, job in spec.jobs(settings))


@dataclasses.dataclass(frozen=True)
class ShardManifest:
    """What one shard run covered, and of which sweep.

    ``fingerprint``/``cell_keys`` are the load-bearing fields the
    merge/validate pipeline checks; host, pid, and timestamp are
    provenance for the operator debugging a fleet run.
    """

    fingerprint: str
    index: int
    count: int
    cell_keys: Tuple[str, ...]
    cells: Tuple[Tuple[str, str, str], ...]
    total_cells: int
    settings: Dict[str, float]
    hostname: str
    pid: int
    created_unix: float
    schema: int = MANIFEST_SCHEMA


def build_manifest(spec, settings, index: int, count: int,
                   cells=None) -> ShardManifest:
    """Manifest for shard ``index``/``count`` of ``spec`` (pure: no
    simulation).  ``cells`` takes an already-expanded ``spec.jobs``
    list so a caller that has one (the sweep engine) avoids a second
    full variant-config expansion."""
    all_cells = spec.jobs(settings) if cells is None else cells
    covered = spec.shard(index, count, settings, cells=all_cells)
    # Provenance comes from the shared collector (also stamped on
    # bench-trajectory entries); the manifest keeps its original
    # field subset for schema stability.
    provenance = collect_provenance()
    return ShardManifest(
        fingerprint=fingerprint_keys(
            job_key(job) for _cell, job in all_cells),
        index=index,
        count=count,
        cell_keys=tuple(sorted({job_key(job) for _cell, job in covered})),
        cells=tuple(cell for cell, _job in covered),
        total_cells=len(all_cells),
        settings={"n_events": settings.n_events,
                  "footprint_scale": settings.footprint_scale,
                  "seed": settings.seed},
        hostname=provenance["hostname"],
        pid=provenance["pid"],
        created_unix=provenance["created_unix"],
    )


def write_manifest(path: str, manifest: ShardManifest) -> str:
    """Write a manifest as pretty JSON (it is operator-facing).

    Atomic like every cache write: the manifest is the shard's
    integrity record, so a host killed mid-write must leave either no
    manifest or a complete one, never truncated JSON for the merge
    host to choke on.
    """
    write_json_atomic(path, dataclasses.asdict(manifest),
                      sort_keys=True, indent=2)
    return path


def load_manifest(path: str) -> ShardManifest:
    """Load and structurally validate a shard manifest.

    Unlike :func:`load_cache`, a bad manifest raises
    :class:`CacheError`: the manifest is the integrity record — if it
    cannot be trusted, the merge/validate pipeline must stop, not
    degrade.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CacheError(f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise CacheError(f"shard manifest {path} is not a JSON object")
    if data.get("schema") != MANIFEST_SCHEMA:
        raise CacheError(
            f"shard manifest {path} has schema {data.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA}")
    try:
        return ShardManifest(
            fingerprint=data["fingerprint"],
            index=int(data["index"]),
            count=int(data["count"]),
            cell_keys=tuple(data["cell_keys"]),
            cells=tuple(tuple(cell) for cell in data["cells"]),
            total_cells=int(data["total_cells"]),
            settings=dict(data["settings"]),
            hostname=data.get("hostname", ""),
            pid=int(data.get("pid", 0)),
            created_unix=float(data.get("created_unix", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(
            f"shard manifest {path} is missing or mistypes a required "
            f"field: {exc}") from exc


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_shards(target: str, shard_paths: Optional[Sequence[str]] = None,
                 strict: bool = True,
                 expected_fingerprint: Optional[str] = None,
                 ) -> Tuple[Dict[str, dict], Dict[str, ShardManifest],
                            List[str]]:
    """Merge shard caches into the canonical cache at ``target``.

    ``shard_paths`` defaults to :func:`discover_shards`.  Before any
    disk write, the shards are cross-checked:

    * every shard cache must carry a readable manifest (the sweep
      engine always writes one; a shard without one is a stray or
      mislabeled file), and all manifests must agree on one spec
      fingerprint, which must also equal ``expected_fingerprint``
      when given;
    * every key a manifest claims must actually be in its shard cache
      (a missing key means the shard run died between cache write and
      manifest write, or the files were mixed up);
    * the shard set must be complete and consistently partitioned:
      one shard count across all manifests, with every index 1..N
      present — merging half a sweep must not exit 0;
    * the same key arriving twice — from two shards, or from a shard
      and the canonical cache on disk — with different simulated
      outcomes is a conflict.

    Under ``strict`` (the ``deact cache merge`` default) any of these
    raises :class:`CacheError`/:class:`CacheMergeConflict`; otherwise
    they are logged and the first-seen payload wins (spec order
    across shards, and what the canonical cache already held beats
    incoming shards).

    Returns ``(merged mapping, manifests by shard path, the shard
    paths that were merged)``.
    """
    paths = list(shard_paths) if shard_paths else discover_shards(target)
    if not paths:
        root, ext = os.path.splitext(target)
        raise CacheError(
            f"no shard caches to merge into {target} (looked for "
            f"{root}.shard-*-of-*{ext or '.json'})")
    manifests: Dict[str, ShardManifest] = {}
    combined: Dict[str, dict] = {}
    origin: Dict[str, str] = {}
    conflicts: List[Tuple[str, str, str]] = []  # key, first shard, other
    for path in paths:
        entries = load_cache(path)
        mpath = manifest_path(path)
        manifest = None
        if not os.path.exists(mpath):
            # The sweep engine always writes a manifest, so its
            # absence means a stray/mislabeled/foreign shard file —
            # exactly what the fingerprint check exists to catch.
            message = (f"shard cache {path} has no manifest ({mpath}); "
                       f"cannot verify it belongs to this sweep")
            if strict:
                raise CacheError(message)
            logger.warning(message)
        else:
            try:
                manifest = load_manifest(mpath)
            except CacheError:
                if strict:
                    raise
                logger.warning("ignoring unreadable shard manifest %s",
                               mpath)
        if manifest is not None:
            manifests[path] = manifest
            claimed_missing = [key for key in manifest.cell_keys
                               if key not in entries]
            if claimed_missing:
                message = (f"shard cache {path} is missing "
                           f"{len(claimed_missing)} key(s) its "
                           f"manifest claims (incomplete shard run?)")
                if strict:
                    raise CacheError(message)
                logger.warning(message)
        if not entries and manifest is None:
            # A zero-cell shard (stride past the cell count) is
            # legitimate when its manifest says so, and an empty
            # cache whose manifest claims keys was already diagnosed
            # above; only a manifest-less empty (unreadable file, or
            # forced merge of a bare empty shard) is left to flag.
            message = f"shard cache {path} is empty or unreadable"
            if strict:
                raise CacheError(message)
            logger.warning(message)
        for key, payload in entries.items():
            if key in combined:
                if not payloads_equivalent(combined[key], payload):
                    conflicts.append((key, origin[key], path))
                continue
            combined[key] = payload
            origin[key] = path
    # Completeness of the shard set: the manifests say how the sweep
    # was partitioned (count) and which partitions are here (index) —
    # merging 1 of 2 shards must not exit 0 with half the sweep
    # silently missing.  (The fingerprint alone cannot catch this:
    # a 2-way and a 3-way sharding of the same spec share it.)
    counts = {m.count for m in manifests.values()}
    if len(counts) > 1:
        message = (f"shards were partitioned differently (counts "
                   f"{sorted(counts)}): stale files from a previous "
                   f"sharding?")
        if strict:
            raise CacheError(message)
        logger.warning(message)
    elif counts:
        count = counts.pop()
        absent = sorted(set(range(1, count + 1))
                        - {m.index for m in manifests.values()})
        if absent:
            message = (f"shard set is incomplete: missing shard(s) "
                       f"{'/'.join(str(i) for i in absent)} of {count}")
            if strict:
                raise CacheError(message)
            logger.warning(message)
    fingerprints = {m.fingerprint for m in manifests.values()}
    if expected_fingerprint is not None:
        fingerprints.add(expected_fingerprint)
    if len(fingerprints) > 1:
        detail = (f"shards disagree on the spec fingerprint "
                  f"({', '.join(sorted(f[:12] for f in fingerprints))}...):"
                  f" they were produced from different sweep specs or "
                  f"settings")
        if strict:
            raise CacheMergeConflict(detail)
        logger.warning("%s", detail)
    if conflicts:
        key, first, other = conflicts[0]
        detail = (f"{len(conflicts)} key(s) have different payloads "
                  f"across shards (nondeterminism or schema drift?); "
                  f"first: {key} differs between {first} and {other}")
        if strict:
            raise CacheMergeConflict(
                f"refusing to merge shards into {target}: {detail}",
                keys=[key for key, _first, _other in conflicts])
        logger.warning("%s", detail)
    # First-seen payload wins everywhere under a forced merge: what
    # the canonical cache already holds predates the incoming shards,
    # so keep_existing makes the locked merge keep it (deciding under
    # the lock, so a concurrent writer cannot slip a fresh entry in
    # between a pre-read and the merge).  Strict mode raises on any
    # disk conflict instead.
    merged = merge_into_cache(target, combined, strict=strict,
                              keep_existing=not strict)
    return merged, manifests, paths


# ----------------------------------------------------------------------
# Validate
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ValidationReport:
    """Outcome of validating a cache against a sweep spec."""

    cache_path: str
    fingerprint: str
    expected_cells: int
    present_cells: int
    missing: Tuple[Tuple[Tuple[str, str, str], str], ...]
    orphan_keys: Tuple[str, ...]
    manifest_fingerprints: Dict[str, str]

    @property
    def fingerprint_ok(self) -> bool:
        return all(fp == self.fingerprint
                   for fp in self.manifest_fingerprints.values())

    @property
    def ok(self) -> bool:
        """Complete coverage and consistent fingerprints.

        Orphan keys do not fail validation by themselves: a canonical
        cache legitimately accumulates several sweeps' results.  The
        CLI's ``--strict`` flag promotes them to failures (see
        :meth:`passes`).
        """
        return self.passes(strict=False)

    def passes(self, strict: bool = False) -> bool:
        return (not self.missing and self.fingerprint_ok
                and not (strict and self.orphan_keys))

    def render(self, strict: bool = False) -> str:
        """Human-readable report; pass the same ``strict`` used for
        the pass/fail decision so the verdict line agrees with it."""
        lines = [f"cache     : {self.cache_path}",
                 f"spec      : {self.expected_cells} cells, fingerprint "
                 f"{self.fingerprint[:12]}...",
                 f"coverage  : {self.present_cells}/{self.expected_cells} "
                 f"cells present"]
        for cell, _key in self.missing[:10]:
            lines.append(f"  missing : {'/'.join(cell)}")
        if len(self.missing) > 10:
            lines.append(f"  missing : ... and {len(self.missing) - 10} more")
        lines.append(f"orphans   : {len(self.orphan_keys)} key(s) outside "
                     f"the spec"
                     + (" (fatal under --strict)"
                        if strict and self.orphan_keys else ""))
        for path, fp in sorted(self.manifest_fingerprints.items()):
            mark = "ok" if fp == self.fingerprint else "MISMATCH"
            lines.append(f"manifest  : {os.path.basename(path)} "
                         f"fingerprint {fp[:12]}... {mark}")
        lines.append(f"verdict   : {'OK' if self.passes(strict) else 'FAIL'}")
        return "\n".join(lines)


def validate_cache(cache_path: str, spec, settings,
                   manifest_paths: Optional[Sequence[str]] = None,
                   ) -> ValidationReport:
    """Check a cache against the spec that should have produced it.

    Reports missing cells (spec cells with no cache entry), orphan
    keys (cache entries no spec cell produces), and — for every shard
    manifest found next to the cache, or passed explicitly — whether
    its recorded fingerprint matches the spec's.
    """
    entries = load_cache(cache_path)
    expected: Dict[str, Tuple[str, str, str]] = {}
    for cell, job in spec.jobs(settings):
        expected.setdefault(job_key(job), cell)
    missing = tuple((cell, key) for key, cell in expected.items()
                    if key not in entries)
    orphans = tuple(sorted(key for key in entries if key not in expected))
    if manifest_paths is None:
        manifest_paths = discover_manifests(cache_path)
        own = manifest_path(cache_path)
        if os.path.exists(own):  # validating a shard cache directly
            manifest_paths = [own] + list(manifest_paths)
    manifest_fps = {path: load_manifest(path).fingerprint
                    for path in manifest_paths}
    return ValidationReport(
        cache_path=cache_path,
        fingerprint=fingerprint_keys(expected),
        expected_cells=len(expected),
        present_cells=len(expected) - len(missing),
        missing=missing,
        orphan_keys=orphans,
        manifest_fingerprints=manifest_fps,
    )


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def quarantine_path(cache_path: str) -> str:
    """The quarantine sidecar next to a cache file."""
    root, ext = os.path.splitext(cache_path)
    return f"{root}.quarantine{ext or '.json'}"


@dataclasses.dataclass
class RepairReport:
    """Outcome of ``deact cache validate --repair``."""

    cache_path: str
    quarantined_corrupt: Tuple[str, ...]
    quarantined_orphans: Tuple[str, ...]
    removed_tmp_files: Tuple[str, ...]
    manifestless_shards: Tuple[str, ...]
    missing_cells: int

    @property
    def changed(self) -> bool:
        return bool(self.quarantined_corrupt or self.quarantined_orphans
                    or self.removed_tmp_files)

    def render(self) -> str:
        lines = [f"repair    : {self.cache_path}"]
        lines.append(f"corrupt   : {len(self.quarantined_corrupt)} "
                     f"cell(s) quarantined")
        for key in self.quarantined_corrupt[:5]:
            lines.append(f"  corrupt : {key}")
        lines.append(f"orphans   : {len(self.quarantined_orphans)} "
                     f"cell(s) quarantined")
        for key in self.quarantined_orphans[:5]:
            lines.append(f"  orphan  : {key}")
        if self.quarantined_corrupt or self.quarantined_orphans:
            lines.append(f"moved to  : "
                         f"{quarantine_path(self.cache_path)}")
        lines.append(f"tmp files : {len(self.removed_tmp_files)} dead "
                     f"temp file(s) removed")
        for path in self.removed_tmp_files[:5]:
            lines.append(f"  removed : {os.path.basename(path)}")
        for shard in self.manifestless_shards:
            lines.append(f"re-run    : shard {os.path.basename(shard)} "
                         f"has no manifest — its host never finished; "
                         f"re-run that shard")
        lines.append(f"missing   : {self.missing_cells} cell(s) still "
                     f"need (re-)simulation")
        return "\n".join(lines)


def repair_cache(cache_path: str, spec, settings) -> RepairReport:
    """Quarantine bad cells and clean write debris, under the lock.

    Three classes of damage a crashed or faulty sweep leaves behind:

    * **corrupt cells** — entries that are not structurally valid
      serialized results (a worker died mid-nonsense, or a tool
      bypassed the atomic writer).  Moved to the ``.quarantine``
      sidecar so the evidence survives while the cache heals;
    * **orphan cells** — keys no cell of ``spec`` produces (stale
      settings, a mislabeled shard).  Also quarantined: unlike plain
      ``validate`` (where orphans are tolerated as other sweeps'
      results), ``--repair`` is an explicit request to make the cache
      match *this* spec;
    * **dead temp files** — ``.tmp.`` leftovers of writers killed
      mid-write, for the cache and every shard cache next to it.
      Holding the cache lock guarantees no well-behaved local writer
      is mid-replace while we sweep them up.

    Shard caches with no manifest are *flagged* (their host died
    before finishing — the shard must be re-run), never deleted: the
    completed cells they hold are still mergeable.

    Quarantined payloads merge into any existing quarantine sidecar
    (last writer wins per key) so repeated repairs never lose
    evidence.  Missing cells are counted, not fixed — re-running the
    sweep recalls everything healthy and simulates only the holes.
    """
    expected: Dict[str, Tuple[str, str, str]] = {}
    for cell, job in spec.jobs(settings):
        expected.setdefault(job_key(job), cell)
    with cache_lock(cache_path):
        entries = load_cache(cache_path)
        corrupt = tuple(sorted(
            key for key, payload in entries.items()
            if not payload_ok(payload)))
        orphans = tuple(sorted(
            key for key in entries
            if key not in expected and key not in corrupt))
        bad = set(corrupt) | set(orphans)
        if bad:
            side = quarantine_path(cache_path)
            quarantined = load_cache(side)
            quarantined.update(
                {key: entries[key] for key in sorted(bad)})
            write_cache_atomic(side, quarantined)
            entries = {key: payload for key, payload in entries.items()
                       if key not in bad}
            write_cache_atomic(cache_path, entries)
        removed = []
        targets = [cache_path] + discover_shards(cache_path)
        for target in targets:
            directory = os.path.dirname(os.path.abspath(target))
            pattern = f"{glob.escape(os.path.basename(target))}.tmp.*"
            for tmp in sorted(glob.glob(os.path.join(directory,
                                                     pattern))):
                try:
                    os.unlink(tmp)
                except OSError:  # pragma: no cover - racing cleanup
                    continue
                removed.append(tmp)
        manifestless = tuple(
            shard for shard in discover_shards(cache_path)
            if not os.path.exists(manifest_path(shard)))
        missing = sum(1 for key in expected if key not in entries)
    return RepairReport(
        cache_path=cache_path,
        quarantined_corrupt=corrupt,
        quarantined_orphans=orphans,
        removed_tmp_files=tuple(removed),
        manifestless_shards=manifestless,
        missing_cells=missing,
    )


# ----------------------------------------------------------------------
# Canonical comparison
# ----------------------------------------------------------------------
def canonical_cache_text(path: str) -> str:
    """A cache's *simulated outcome* as canonical JSON text.

    Telemetry — per-execution wall-clock measurement metadata — is
    stripped and keys are sorted, so two caches holding identical
    simulated results render identical text even when they were
    produced by different hosts in different orders.  This is the
    bit-identity comparison between a merged shard union and the
    unsharded sweep (used by the determinism suite and the CI step).
    """
    entries = load_cache(path)
    return json.dumps({key: strip_telemetry(payload)
                       for key, payload in entries.items()},
                      sort_keys=True)
