"""Result containers and ASCII rendering for the experiment harness.

Each figure builder returns a :class:`FigureResult`: an ordered list of
:class:`Row` records (one per bar/point in the paper's plot) plus
enough metadata to render a readable table and to diff against the
paper's reported values in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Row", "FigureResult", "render_table", "render_bars",
           "render_telemetry"]


@dataclass
class Row:
    """One plotted entity (a benchmark bar, a sweep point, ...).

    ``values`` maps series name (e.g. ``"I-FAM"``) to the measured
    number; ``paper`` optionally maps series name to the paper's
    reported value for the same entity.
    """

    label: str
    values: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)


@dataclass
class FigureResult:
    """A regenerated table or figure."""

    figure_id: str
    title: str
    series: List[str]
    rows: List[Row]
    unit: str = ""
    notes: str = ""

    def value(self, label: str, series: str) -> Optional[float]:
        for row in self.rows:
            if row.label == label:
                return row.values.get(series)
        return None

    def series_values(self, series: str) -> List[float]:
        return [row.values[series] for row in self.rows
                if series in row.values]

    def render(self, width: int = 10, precision: int = 2) -> str:
        """Plain-text rendering of the figure as a table."""
        return render_table(self, width=width, precision=precision)

    def to_dict(self) -> Dict:
        """JSON-serializable form (used by the results cache)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "series": list(self.series),
            "unit": self.unit,
            "notes": self.notes,
            "rows": [
                {"label": row.label, "values": dict(row.values),
                 "paper": dict(row.paper)}
                for row in self.rows
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FigureResult":
        return cls(
            figure_id=data["figure_id"],
            title=data["title"],
            series=list(data["series"]),
            unit=data.get("unit", ""),
            notes=data.get("notes", ""),
            rows=[Row(label=r["label"], values=dict(r["values"]),
                      paper=dict(r.get("paper", {})))
                  for r in data["rows"]],
        )


def render_bars(figure: FigureResult, series: str, width: int = 40,
                precision: int = 2) -> str:
    """Horizontal ASCII bar chart for one series of a figure.

    Useful in terminals where the full table is too dense — e.g.
    ``render_bars(figure3(runner), "I-FAM")`` shows the slowdown
    profile at a glance.
    """
    values = [(row.label, row.values[series]) for row in figure.rows
              if series in row.values]
    if not values:
        return f"{figure.figure_id}: series {series!r} has no data"
    peak = max(value for _label, value in values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _value in values)
    lines = [f"{figure.figure_id}: {figure.title} — {series}"
             + (f" [{figure.unit}]" if figure.unit else "")]
    for label, value in values:
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:<{label_width}}  "
                     f"{value:>8.{precision}f}  {bar}")
    return "\n".join(lines)


def render_telemetry(summary: Dict[str, float],
                     title: str = "harness telemetry") -> str:
    """Format an :meth:`ExperimentRunner.telemetry_summary` aggregate.

    Shows how much simulation work a report cost and the core-loop
    throughput it achieved — the per-job numbers live in the result
    cache under each entry's ``telemetry`` key.
    """
    lines = [f"{title}:"]
    runs = int(summary.get("runs", 0))
    with_telemetry = int(summary.get("runs_with_telemetry", 0))
    lines.append(f"  runs measured      : {with_telemetry} of {runs}")
    lines.append(f"  trace events       : {summary.get('events', 0.0):,.0f}")
    lines.append(f"  simulation wall    : {summary.get('wall_s', 0.0):.2f} s")
    lines.append(f"  events per second  : "
                 f"{summary.get('events_per_sec', 0.0):,.0f}")
    lines.append(f"  tag-store probes   : "
                 f"{summary.get('tag_probes', 0.0):,.0f} "
                 f"({summary.get('probes_per_event', 0.0):.2f}/event)")
    return "\n".join(lines)


def render_table(figure: FigureResult, width: int = 10,
                 precision: int = 2) -> str:
    """Format a :class:`FigureResult` as an aligned ASCII table."""
    label_width = max([len(r.label) for r in figure.rows] + [len("bench")])
    headers = [f"{'bench':<{label_width}}"]
    for series in figure.series:
        headers.append(f"{series:>{width}}")
    lines = [f"{figure.figure_id}: {figure.title}"
             + (f" [{figure.unit}]" if figure.unit else "")]
    lines.append("  ".join(headers))
    lines.append("-" * len(lines[-1]))
    for row in figure.rows:
        cells = [f"{row.label:<{label_width}}"]
        for series in figure.series:
            value = row.values.get(series)
            if value is None:
                cells.append(" " * width)
            else:
                cells.append(f"{value:>{width}.{precision}f}")
        lines.append("  ".join(cells))
    if figure.notes:
        lines.append(f"note: {figure.notes}")
    return "\n".join(lines)
