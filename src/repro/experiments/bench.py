"""Core-loop tier measurement: the machine-readable perf trajectory.

One measurement pass runs the same traces through all three execution
tiers — ``reference`` (the frozen seed loop), ``fast`` (the PR-2
allocation-free scalar loop) and ``batch`` (the hit-run engine of
:mod:`repro.core.batch`) — on fresh systems, checks the tiers
bit-identical, and reports events/s per (benchmark, architecture,
tier).  Both the pytest microbenchmark
(``benchmarks/test_bench_core_loop.py``) and ``deact bench`` consume
this module, and both *append* the result to the trajectory file
``BENCH_core_loop.json`` (schema 2, provenance-stamped entries; see
:mod:`repro.experiments.trajectory`) so successive PRs leave a
comparable speed trail.

The workload set:

* ``hot-loop`` — a synthetic *hit-dominated* microworkload (sequential
  sweep over an L1-resident footprint): after one warm-up lap every
  access hits the L1 TLB and L1 data cache, which is the regime the
  batch tier exists for.  The catalog's synthetic benchmarks
  deliberately use page-granular reuse (caches miss while translation
  structures hit), so none of them is L1-hit-dominated at harness
  scale — the batch acceptance gate therefore measures here.
* ``lu`` / ``bc`` — the PR-2 headline and secondary catalog workloads,
  kept for tier-over-tier trajectory on miss-heavy traces (where the
  batch tier's job is simply to not be slower than the scalar loop).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config.presets import default_config
from repro.core.system import FamSystem
from repro.experiments.runner import (
    RunSettings,
    _result_to_dict,
    build_traces,
)
from repro.workloads.synthetic import PatternSpec, generate_trace

__all__ = ["TIERS", "HOT_BENCH", "hot_loop_trace", "build_bench_traces",
           "measure_core_loop", "write_bench_json", "default_json_path"]

#: Execution tiers measured, slowest first.
TIERS = ("reference", "fast", "batch")

#: Name of the synthetic hit-dominated workload (not a catalog entry).
HOT_BENCH = "hot-loop"

#: ``hot-loop`` geometry: 8 pages × 64 blocks = 512 blocks — exactly
#: the Table II L1 capacity, so after the first lap the working set is
#: L1-resident and every access is a provable hit.
_HOT_PAGES = 8

_SCHEMA = 1


def hot_loop_trace(n_events: int, seed: int = 99) -> object:
    """The hit-dominated microworkload trace (deterministic).

    Short (smoke-scale) traces halve the footprint so the cold
    warm-up lap stays a small fraction of the trace — the measurement
    targets the steady hit-dominated phase, not first-touch misses.
    """
    pages = _HOT_PAGES if n_events >= 8000 else _HOT_PAGES // 2
    return generate_trace(
        HOT_BENCH, n_events, footprint_pages=pages,
        patterns=(PatternSpec("sequential", 1.0),),
        gap_mean=4.0, write_fraction=0.2, dependent_fraction=0.3,
        seed=seed)


def build_bench_traces(benchmark: str, settings: RunSettings) -> List:
    """Single-node traces for a bench workload (catalog or hot-loop)."""
    if benchmark == HOT_BENCH:
        return [hot_loop_trace(settings.n_events, seed=settings.seed)]
    return build_traces(benchmark, 1, settings)


def _best_time(run: Callable, repeats: int) -> Tuple[float, object]:
    """Best-of-N wall time (and the last result) for ``run()``."""
    best: Optional[float] = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best, result


def measure_core_loop(settings: RunSettings,
                      benchmarks: Sequence[str],
                      architectures: Sequence[str],
                      repeats: int = 3,
                      tiers: Sequence[str] = TIERS) -> Dict:
    """Measure every (benchmark, architecture, tier) cell.

    Returns the serializable payload: per-cell rows (wall seconds,
    events/s, bit-identity with the reference tier) plus per-benchmark
    aggregates with the tier-over-tier speedups the acceptance gates
    read.
    """
    config = default_config()
    seed = settings.seed * 31 + 5
    rows: List[Dict] = []
    for benchmark in benchmarks:
        traces = build_bench_traces(benchmark, settings)
        for architecture in architectures:
            baseline: Optional[dict] = None
            for tier in tiers:
                def run(tier=tier):
                    system = FamSystem(config, architecture, seed=seed)
                    if tier == "reference":
                        return system.run(traces, benchmark=benchmark,
                                          reference=True)
                    return system.run(traces, benchmark=benchmark,
                                      mode=tier)
                wall_s, result = _best_time(run, repeats)
                serialized = _result_to_dict(result)
                if baseline is None:
                    baseline = serialized
                rows.append({
                    "benchmark": benchmark,
                    "architecture": architecture,
                    "tier": tier,
                    "wall_s": wall_s,
                    "events_per_sec": settings.n_events / wall_s,
                    "identical_to_first_tier": serialized == baseline,
                })
    return {
        "schema": _SCHEMA,
        "settings": {
            "n_events": settings.n_events,
            "footprint_scale": settings.footprint_scale,
            "seed": settings.seed,
            "repeats": repeats,
        },
        "benchmarks": list(benchmarks),
        "architectures": list(architectures),
        "tiers": list(tiers),
        "rows": rows,
        "aggregates": _aggregate(rows, benchmarks, tiers, settings),
    }


def _aggregate(rows: Sequence[Dict], benchmarks: Sequence[str],
               tiers: Sequence[str], settings: RunSettings) -> Dict:
    aggregates: Dict[str, Dict] = {}
    for benchmark in benchmarks:
        per_tier: Dict[str, float] = {}
        for tier in tiers:
            walls = [row["wall_s"] for row in rows
                     if row["benchmark"] == benchmark
                     and row["tier"] == tier]
            if not walls:
                continue
            total = sum(walls)
            per_tier[tier] = total
        entry: Dict[str, object] = {
            "wall_s": per_tier,
            "events_per_sec": {
                tier: len([r for r in rows
                           if r["benchmark"] == benchmark
                           and r["tier"] == tier]) * settings.n_events
                / total
                for tier, total in per_tier.items()
            },
        }
        if "fast" in per_tier and "reference" in per_tier:
            entry["fast_speedup_vs_reference"] = (
                per_tier["reference"] / per_tier["fast"])
        if "batch" in per_tier and "fast" in per_tier:
            entry["batch_speedup_vs_fast"] = (
                per_tier["fast"] / per_tier["batch"])
        aggregates[benchmark] = entry
    return aggregates


def default_json_path() -> str:
    """Where the perf trajectory lands: ``REPRO_BENCH_JSON``, else
    ``BENCH_core_loop.json`` at the enclosing git toplevel, else cwd.

    Deriving the root from this module's ``__file__`` (the old
    behavior) pointed into site-packages for an installed package —
    the trajectory of record lives with the *checkout* being
    measured, not with wherever the library happens to be installed.
    """
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return override
    from repro.experiments.provenance import git_toplevel

    root = git_toplevel() or os.getcwd()
    return os.path.join(root, "BENCH_core_loop.json")


def write_bench_json(payload: Dict, path: Optional[str] = None) -> str:
    """Append a :func:`measure_core_loop` payload to the trajectory.

    The trajectory at ``path`` (schema 2, auto-upgrading a committed
    schema-1 file) gains one provenance-stamped entry; the write is
    atomic (mkstemp + rename via the shared cache helper), so a crash
    mid-write can never leave a truncated history.  Returns the path.
    """
    from repro.experiments.trajectory import append_entry

    path = path or default_json_path()
    append_entry(path, payload)
    return path


def render_census(payload: Dict) -> str:
    """Human-readable census of a measurement payload."""
    lines = [f"core-loop tiers ({payload['settings']['n_events']} events, "
             f"best of {payload['settings']['repeats']}):"]
    cells: Dict[Tuple[str, str], Dict[str, Dict]] = {}
    for row in payload["rows"]:
        cells.setdefault((row["benchmark"], row["architecture"]),
                         {})[row["tier"]] = row
    for (benchmark, architecture), tiers in cells.items():
        parts = [f"  {benchmark:<8} {architecture:<8}"]
        for tier, row in tiers.items():
            parts.append(f"{tier}={row['events_per_sec']:>10,.0f}/s")
        identical = all(row["identical_to_first_tier"]
                        for row in tiers.values())
        parts.append(f"identical={identical}")
        lines.append(" ".join(parts))
    for benchmark, aggregate in payload["aggregates"].items():
        notes = []
        if "fast_speedup_vs_reference" in aggregate:
            notes.append(f"fast/ref="
                         f"{aggregate['fast_speedup_vs_reference']:.2f}x")
        if "batch_speedup_vs_fast" in aggregate:
            notes.append(f"batch/fast="
                         f"{aggregate['batch_speedup_vs_fast']:.2f}x")
        lines.append(f"  {benchmark}: {'  '.join(notes)}")
    return "\n".join(lines)
