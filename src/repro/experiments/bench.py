"""Core-loop tier measurement: the machine-readable perf trajectory.

One measurement pass runs the same traces through all three execution
tiers — ``reference`` (the frozen seed loop), ``fast`` (the PR-2
allocation-free scalar loop) and ``batch`` (the segment consumer of
:mod:`repro.core.batch` over :mod:`repro.core.runplan` plans) — on
fresh systems, checks the tiers bit-identical, and reports events/s
per (benchmark, architecture, tier), with each non-reference row
carrying its per-segment-kind census (how the plan layer classified
the trace).  Both the pytest microbenchmark
(``benchmarks/test_bench_core_loop.py``) and ``deact bench`` consume
this module, and both *append* the result to the trajectory file
``BENCH_core_loop.json`` (schema 2, provenance-stamped entries; see
:mod:`repro.experiments.trajectory`) so successive PRs leave a
comparable speed trail.

The workload set:

* ``hotspot`` — the catalog's L1-hit-dominated kernel (one hot page,
  block-granular reuse, 20% writes): after ~64 compulsory misses
  every access hits both L1 structures, which is the regime the batch
  tier exists for — the 3x batch acceptance gate measures here.
* ``hot-loop`` — a synthetic *hit-dominated* microworkload (sequential
  sweep over an L1-resident footprint).  Hit-dominated but
  warm-up-bound: its 512-block cold lap runs scalar and caps the
  achievable batch-over-fast ratio near 2x, so it keeps a lower floor
  and serves as the streaming-shaped trajectory point.
* ``lu`` / ``bc`` — the PR-2 headline and secondary catalog workloads,
  kept for tier-over-tier trajectory on miss-heavy traces (where the
  batch tier's job is simply to not be slower than the scalar loop).
"""

from __future__ import annotations

import gc
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config.presets import default_config
from repro.core.system import FamSystem
from repro.experiments.runner import (
    RunSettings,
    _result_to_dict,
    build_traces,
)
from repro.workloads.synthetic import PatternSpec, generate_trace

__all__ = ["TIERS", "HOT_BENCH", "hot_loop_trace", "build_bench_traces",
           "measure_core_loop", "write_bench_json", "default_json_path"]

#: Execution tiers measured, slowest first.
TIERS = ("reference", "fast", "batch")

#: Name of the synthetic hit-dominated workload (not a catalog entry).
HOT_BENCH = "hot-loop"

#: ``hot-loop`` geometry: 8 pages × 64 blocks = 512 blocks — exactly
#: the Table II L1 capacity, so after the first lap the working set is
#: L1-resident and every access is a provable hit.
_HOT_PAGES = 8

_SCHEMA = 1


def hot_loop_trace(n_events: int, seed: int = 99) -> object:
    """The hit-dominated microworkload trace (deterministic).

    Short (smoke-scale) traces halve the footprint so the cold
    warm-up lap stays a small fraction of the trace — the measurement
    targets the steady hit-dominated phase, not first-touch misses.
    """
    pages = _HOT_PAGES if n_events >= 8000 else _HOT_PAGES // 2
    return generate_trace(
        HOT_BENCH, n_events, footprint_pages=pages,
        patterns=(PatternSpec("sequential", 1.0),),
        gap_mean=4.0, write_fraction=0.2, dependent_fraction=0.3,
        seed=seed)


def build_bench_traces(benchmark: str, settings: RunSettings) -> List:
    """Single-node traces for a bench workload (catalog or hot-loop)."""
    if benchmark == HOT_BENCH:
        return [hot_loop_trace(settings.n_events, seed=settings.seed)]
    return build_traces(benchmark, 1, settings)


#: Wall-clock floor per measured cell.  A best-of-3 estimate is fine
#: for a 200 ms reference wall but hopeless for a 4 ms batch wall on a
#: shared host, where a single scheduler preemption is a 50% error —
#: exactly the cells the batch-over-fast gates read.  Short-wall cells
#: therefore keep repeating past ``repeats`` (up to
#: :data:`MAX_REPEATS`) until this much total measurement has
#: accumulated, equalizing noise rejection across cell scales.
MIN_SAMPLE_S = 0.15

#: Repetition cap for the :data:`MIN_SAMPLE_S` top-up, bounding bench
#: runtime on hosts where even short cells run slow.
MAX_REPEATS = 10


def _measure_cell(runs: "Dict[str, Callable]", repeats: int
                  ) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Interleaved best-of-N walls for every tier of one cell.

    Tiers are timed in rotating rounds rather than back-to-back
    blocks: the batch-over-fast gates are *ratios*, and on a shared
    host a sustained slow stretch (noisy neighbor, frequency dip)
    that lands entirely inside one tier's block skews the ratio no
    matter how many repeats that block took.  Rotation puts each
    tier's samples in adjacent time windows, so host-condition drift
    cancels out of the ratio.  A tier leaves the rotation once it has
    both ``repeats`` samples and :data:`MIN_SAMPLE_S` of accumulated
    measurement (or hits :data:`MAX_REPEATS`).
    """
    best: Dict[str, float] = {}
    result: Dict[str, object] = {}
    total = {tier: 0.0 for tier in runs}
    count = {tier: 0 for tier in runs}

    def needs(tier: str) -> bool:
        return count[tier] < repeats or (total[tier] < MIN_SAMPLE_S
                                         and count[tier] < MAX_REPEATS)

    # One collect before any timed sample, then the collector stays
    # off for the whole cell: the reference tier allocates millions
    # of boxed events, and with the collector live its collection
    # debt lands in whichever tier's sample runs next.  Collecting
    # *per sample* is no better — a full collection returns arenas to
    # the OS, so the following sample pays thousands of page re-faults
    # inside its timed window, a cost that lands hardest on the
    # shortest (batch) walls the ratio gates read.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        while any(needs(tier) for tier in runs):
            for tier, run in runs.items():
                if not needs(tier):
                    continue
                start = time.perf_counter()
                result[tier] = run()
                elapsed = time.perf_counter() - start
                total[tier] += elapsed
                count[tier] += 1
                if tier not in best or elapsed < best[tier]:
                    best[tier] = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


def measure_core_loop(settings: RunSettings,
                      benchmarks: Sequence[str],
                      architectures: Sequence[str],
                      repeats: int = 3,
                      tiers: Sequence[str] = TIERS) -> Dict:
    """Measure every (benchmark, architecture, tier) cell.

    Returns the serializable payload: per-cell rows (wall seconds,
    events/s, bit-identity with the reference tier) plus per-benchmark
    aggregates with the tier-over-tier speedups the acceptance gates
    read.
    """
    config = default_config()
    seed = settings.seed * 31 + 5
    rows: List[Dict] = []
    for benchmark in benchmarks:
        traces = build_bench_traces(benchmark, settings)
        for architecture in architectures:
            # Per-segment-kind census of each tier's (deterministic)
            # run plan, captured outside the timed wall: counting is
            # always on in the executors, so reading it costs nothing,
            # and per-segment *timing* stays off — walls must not pay
            # two monotonic calls per segment.  Reference rows carry
            # ``None`` (no plan layer).
            censuses: Dict[str, Optional[Dict]] = {}

            def run(tier, architecture=architecture,
                    benchmark=benchmark, traces=traces,
                    censuses=censuses):
                system = FamSystem(config, architecture, seed=seed)
                if tier == "reference":
                    result = system.run(traces, benchmark=benchmark,
                                        reference=True)
                else:
                    result = system.run(traces, benchmark=benchmark,
                                        mode=tier)
                stats = system.segment_stats
                censuses[tier] = (stats.as_dict()
                                  if stats is not None else None)
                return result

            walls, results = _measure_cell(
                {tier: (lambda tier=tier: run(tier)) for tier in tiers},
                repeats)
            baseline: Optional[dict] = None
            for tier in tiers:
                serialized = _result_to_dict(results[tier])
                if baseline is None:
                    baseline = serialized
                rows.append({
                    "benchmark": benchmark,
                    "architecture": architecture,
                    "tier": tier,
                    "wall_s": walls[tier],
                    "events_per_sec": settings.n_events / walls[tier],
                    "identical_to_first_tier": serialized == baseline,
                    "segments": censuses.get(tier),
                })
    return {
        "schema": _SCHEMA,
        "settings": {
            "n_events": settings.n_events,
            "footprint_scale": settings.footprint_scale,
            "seed": settings.seed,
            "repeats": repeats,
            "min_sample_s": MIN_SAMPLE_S,
            "max_repeats": MAX_REPEATS,
        },
        "benchmarks": list(benchmarks),
        "architectures": list(architectures),
        "tiers": list(tiers),
        "rows": rows,
        "aggregates": _aggregate(rows, benchmarks, tiers, settings),
    }


def _aggregate(rows: Sequence[Dict], benchmarks: Sequence[str],
               tiers: Sequence[str], settings: RunSettings) -> Dict:
    aggregates: Dict[str, Dict] = {}
    for benchmark in benchmarks:
        per_tier: Dict[str, float] = {}
        for tier in tiers:
            walls = [row["wall_s"] for row in rows
                     if row["benchmark"] == benchmark
                     and row["tier"] == tier]
            if not walls:
                continue
            total = sum(walls)
            per_tier[tier] = total
        entry: Dict[str, object] = {
            "wall_s": per_tier,
            "events_per_sec": {
                tier: len([r for r in rows
                           if r["benchmark"] == benchmark
                           and r["tier"] == tier]) * settings.n_events
                / total
                for tier, total in per_tier.items()
            },
        }
        if "fast" in per_tier and "reference" in per_tier:
            entry["fast_speedup_vs_reference"] = (
                per_tier["reference"] / per_tier["fast"])
        if "batch" in per_tier and "fast" in per_tier:
            entry["batch_speedup_vs_fast"] = (
                per_tier["fast"] / per_tier["batch"])
        aggregates[benchmark] = entry
    return aggregates


def default_json_path() -> str:
    """Where the perf trajectory lands: ``REPRO_BENCH_JSON``, else
    ``BENCH_core_loop.json`` at the enclosing git toplevel, else cwd.

    Deriving the root from this module's ``__file__`` (the old
    behavior) pointed into site-packages for an installed package —
    the trajectory of record lives with the *checkout* being
    measured, not with wherever the library happens to be installed.
    """
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return override
    from repro.experiments.provenance import git_toplevel

    root = git_toplevel() or os.getcwd()
    return os.path.join(root, "BENCH_core_loop.json")


def write_bench_json(payload: Dict, path: Optional[str] = None) -> str:
    """Append a :func:`measure_core_loop` payload to the trajectory.

    The trajectory at ``path`` (schema 2, auto-upgrading a committed
    schema-1 file) gains one provenance-stamped entry; the write is
    atomic (mkstemp + rename via the shared cache helper), so a crash
    mid-write can never leave a truncated history.  Returns the path.
    """
    from repro.experiments.trajectory import append_entry

    path = path or default_json_path()
    append_entry(path, payload)
    return path


def render_census(payload: Dict) -> str:
    """Human-readable census of a measurement payload."""
    lines = [f"core-loop tiers ({payload['settings']['n_events']} events, "
             f"best of >={payload['settings']['repeats']}):"]
    cells: Dict[Tuple[str, str], Dict[str, Dict]] = {}
    for row in payload["rows"]:
        cells.setdefault((row["benchmark"], row["architecture"]),
                         {})[row["tier"]] = row
    for (benchmark, architecture), tiers in cells.items():
        parts = [f"  {benchmark:<8} {architecture:<8}"]
        for tier, row in tiers.items():
            parts.append(f"{tier}={row['events_per_sec']:>10,.0f}/s")
        identical = all(row["identical_to_first_tier"]
                        for row in tiers.values())
        parts.append(f"identical={identical}")
        lines.append(" ".join(parts))
    for benchmark, aggregate in payload["aggregates"].items():
        notes = []
        if "fast_speedup_vs_reference" in aggregate:
            notes.append(f"fast/ref="
                         f"{aggregate['fast_speedup_vs_reference']:.2f}x")
        if "batch_speedup_vs_fast" in aggregate:
            notes.append(f"batch/fast="
                         f"{aggregate['batch_speedup_vs_fast']:.2f}x")
        lines.append(f"  {benchmark}: {'  '.join(notes)}")
    return "\n".join(lines)
