"""Run management and memoization for the experiment harness.

A figure is a set of (benchmark, architecture, config-variant) runs;
several figures share runs (Figures 3, 4, 9-12 all consume the default
configuration matrix), so the runner memoizes results by a structural
key.  An optional on-disk JSON cache lets the benchmark harness and
repeated CLI invocations skip completed work.

Execution itself is a pure function of a :class:`SweepJob` —
:func:`execute_job` builds the traces, runs the system, and returns a
plain serialized dict.  The serial path (:meth:`ExperimentRunner.run`)
and the multiprocessing workers of :mod:`repro.experiments.sweep`
share that function, which is what makes ``--jobs N`` bit-identical to
serial execution.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.config.presets import default_config
from repro.config.system import SystemConfig
from repro.core.results import NodeMetrics, RunResult
from repro.core.system import FamSystem
from repro.experiments.cachefile import load_cache, merge_into_cache
from repro.workloads.catalog import get_profile

__all__ = ["RunSettings", "SweepJob", "ExperimentRunner", "execute_job",
           "job_key", "build_traces", "fingerprint_keys", "payload_ok",
           "require_jobs"]


def require_jobs(n: int, flag: str = "jobs") -> int:
    """The one home of the worker-count rule: ``jobs`` must be >= 1.

    Every layer that accepts a worker count (CLI flags, the sweep
    engine, the memoizing runner, the raw pool fan-out) funnels
    through here, so the rule and its message cannot drift apart.
    """
    if n < 1:
        raise ConfigError(f"{flag} must be >= 1, got {n}")
    return n


def fingerprint_keys(keys: Iterable[str]) -> str:
    """Order-independent fingerprint of a set of cache keys.

    SHA-256 over the sorted, deduplicated keys: two hosts expanding
    the same sweep spec with the same settings compute the same
    fingerprint no matter how their cells are ordered or sharded,
    while any drift in benchmarks, architectures, variants, or
    trace-scale settings changes it.  Shard manifests carry it so a
    merge can refuse shards of a different sweep.
    """
    digest = hashlib.sha256()
    for key in sorted(set(keys)):
        digest.update(key.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class RunSettings:
    """Trace-scale settings shared by every run of a harness instance.

    The paper simulates >=100M instructions per configuration in SST —
    far beyond a Python budget — so the harness runs shorter traces
    over proportionally scaled footprints.  The defaults keep roughly
    the paper's ratio of working set to translation-structure reach
    while giving each page enough revisits for warm hit rates.
    """

    n_events: int = 150_000
    footprint_scale: float = 0.12
    seed: int = 7

    def scaled(self, factor: float) -> "RunSettings":
        """Settings with the event count scaled by ``factor`` (>= 1
        event); used by the pytest benches to run quickly."""
        return RunSettings(n_events=max(1000, int(self.n_events * factor)),
                           footprint_scale=self.footprint_scale,
                           seed=self.seed)


@dataclass(frozen=True)
class SweepJob:
    """One independent unit of simulation work.

    Everything a worker process needs to reproduce the run exactly:
    the workload, the architecture, the full system configuration, and
    the trace-scale settings.  All fields are plain frozen dataclasses,
    so a job pickles cleanly across ``multiprocessing`` boundaries.
    """

    benchmark: str
    architecture: str
    config: SystemConfig
    settings: RunSettings


def _variant_key(config: SystemConfig) -> Tuple:
    """A structural key capturing everything that changes results."""
    return (
        config.nodes,
        config.stu.entries, config.stu.associativity,
        config.stu.acm_bits, config.stu.subways_per_way,
        config.stu.encrypted_memory_mode,
        config.stu.walk_cache_entries,
        config.fabric.node_to_stu_ns, config.fabric.stu_to_fam_ns,
        config.fabric.port_occupancy_ns,
        config.translation_cache.size_bytes,
        config.allocation.fam_policy,
        config.allocation.local_fraction,
        config.ptw.cache_entries,
        config.fam.read_ns, config.fam.write_ns,
        config.local_memory.access_ns,
    )


def _memo_key(benchmark: str, architecture: str, config: SystemConfig,
              settings: RunSettings) -> Tuple:
    return (benchmark, architecture, _variant_key(config),
            settings.n_events, settings.footprint_scale, settings.seed)


def job_key(job: SweepJob) -> str:
    """The on-disk cache key for a job (stable across processes)."""
    return repr(_memo_key(job.benchmark, job.architecture, job.config,
                          job.settings))


def build_traces(benchmark: str, nodes: int, settings: RunSettings) -> List:
    """Materialize the deterministic per-node traces for a benchmark."""
    profile = get_profile(benchmark)
    return [
        profile.build_trace(
            n_events=settings.n_events,
            seed=settings.seed + 1009 * node,
            footprint_scale=settings.footprint_scale)
        for node in range(nodes)
    ]


def _run_system(job: SweepJob, traces: Sequence) -> RunResult:
    """The single execution path shared by serial runs and workers.

    Attaches per-job telemetry (wall time, events/sec, tag-store probe
    counts) to the result — measurement metadata, never compared (see
    :class:`~repro.core.results.RunResult`).
    """
    system = FamSystem(job.config, job.architecture,
                       seed=job.settings.seed * 31 + 5)
    start = time.perf_counter()
    result = system.run(traces, benchmark=job.benchmark)
    wall_s = time.perf_counter() - start
    events = sum(len(trace) for trace in traces)
    probes = system.tag_store_probes()
    result.telemetry = {
        "wall_s": wall_s,
        "events": float(events),
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "tag_probes": float(probes),
        "probes_per_event": probes / events if events else 0.0,
    }
    return result


#: Trace memo for :func:`execute_job` only.  Pool workers persist
#: across jobs, so without it a sweep regenerates a benchmark's traces
#: once per (benchmark, architecture, variant) job instead of once per
#:  benchmark per worker.  Bounded: cleared when it outgrows the
#: benchmark catalog, which only happens under many distinct settings.
_EXECUTE_TRACE_MEMO: Dict[Tuple, List] = {}
_EXECUTE_TRACE_MEMO_MAX = 32


def execute_job(job: SweepJob) -> dict:
    """Execute one job from scratch and return the serialized result.

    Pure apart from a deterministic trace memo, and picklable: no open
    handles — a worker process rebuilds the traces itself (trace
    generation is a deterministic function of the job) and ships back
    a plain dict.  The payload carries a ``telemetry`` key (wall time,
    events/sec, probes, trace-build time); comparisons of run *results*
    use :func:`_result_to_dict`, which excludes it.
    """
    key = (job.benchmark, job.config.nodes, job.settings)
    traces = _EXECUTE_TRACE_MEMO.get(key)
    build_s = 0.0
    if traces is None:
        build_start = time.perf_counter()
        traces = build_traces(job.benchmark, job.config.nodes, job.settings)
        build_s = time.perf_counter() - build_start
        if len(_EXECUTE_TRACE_MEMO) >= _EXECUTE_TRACE_MEMO_MAX:
            _EXECUTE_TRACE_MEMO.clear()
        _EXECUTE_TRACE_MEMO[key] = traces
    result = _run_system(job, traces)
    if result.telemetry is not None:
        result.telemetry["trace_build_s"] = build_s
    return _payload_from_result(result)


class ExperimentRunner:
    """Memoizing runner for (benchmark, architecture, variant) runs.

    ``jobs`` > 1 fans :meth:`run_matrix` and :meth:`prewarm` out over a
    worker pool (see :mod:`repro.experiments.sweep`); individual
    :meth:`run` calls stay in-process and hit the shared memo.
    """

    def __init__(self, settings: Optional[RunSettings] = None,
                 cache_path: Optional[str] = None, jobs: int = 1) -> None:
        require_jobs(jobs)
        self.settings = settings or RunSettings()
        self.cache_path = cache_path
        self.jobs = jobs
        self._memo: Dict[Tuple, RunResult] = {}
        self._trace_memo: Dict[Tuple, List] = {}
        self._disk: Dict[str, dict] = {}
        if cache_path:
            self._disk = load_cache(cache_path)

    # ------------------------------------------------------------------
    def _trace_for(self, benchmark: str, nodes: int):
        """Build (and memoize per-runner) the traces for a benchmark.

        Deliberately per-instance, not process-wide: the pytest
        benches rely on a fresh runner re-doing trace generation each
        measurement round."""
        key = (benchmark, nodes, self.settings)
        traces = self._trace_memo.get(key)
        if traces is None:
            traces = build_traces(benchmark, nodes, self.settings)
            self._trace_memo[key] = traces
        return traces

    @staticmethod
    def _variant_key(config: SystemConfig) -> Tuple:
        return _variant_key(config)

    def run(self, benchmark: str, architecture: str,
            config: Optional[SystemConfig] = None) -> RunResult:
        """Run (or recall) one benchmark on one architecture."""
        config = config or default_config()
        key = _memo_key(benchmark, architecture, config, self.settings)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        disk_key = repr(key)
        if disk_key in self._disk:
            result = _result_from_dict(self._disk[disk_key])
            self._memo[key] = result
            return result
        job = SweepJob(benchmark, architecture, config, self.settings)
        traces = self._trace_for(benchmark, config.nodes)
        result = _run_system(job, traces)
        self._memo[key] = result
        if self.cache_path is not None:
            self._disk[disk_key] = _payload_from_result(result)
            self._flush()
        return result

    def run_matrix(self, benchmarks: Sequence[str],
                   architectures: Sequence[str],
                   config: Optional[SystemConfig] = None,
                   jobs: Optional[int] = None,
                   ) -> Dict[Tuple[str, str], RunResult]:
        """Run the cross product, returning ``(bench, arch) -> result``.

        With ``jobs`` (or the runner's own ``jobs``) > 1 the missing
        cells execute on a worker pool; results are identical to the
        serial path because both call :func:`execute_job`'s core.
        """
        config = config or default_config()
        self.prewarm([(bench, arch, config)
                      for bench in benchmarks for arch in architectures],
                     jobs=jobs)
        return {(bench, arch): self.run(bench, arch, config)
                for bench in benchmarks for arch in architectures}

    def prewarm(self, triples: Sequence[Tuple[str, str, SystemConfig]],
                jobs: Optional[int] = None, progress=None) -> int:
        """Execute any not-yet-memoized ``(bench, arch, config)`` runs,
        fanning out over ``jobs`` workers.  Returns the number of runs
        actually executed (as opposed to recalled)."""
        from repro.experiments.sweep import run_jobs  # avoid import cycle

        n_workers = require_jobs(self.jobs if jobs is None else jobs)
        pending: List[SweepJob] = []
        seen = set()
        for benchmark, architecture, config in triples:
            key = _memo_key(benchmark, architecture, config, self.settings)
            if key in seen or key in self._memo or repr(key) in self._disk:
                continue
            seen.add(key)
            pending.append(SweepJob(benchmark, architecture, config,
                                    self.settings))
        if not pending:
            return 0
        payloads = run_jobs(pending, n_workers, progress=progress)
        entries = {}
        for job, payload in zip(pending, payloads):
            key = _memo_key(job.benchmark, job.architecture, job.config,
                            job.settings)
            self._memo[key] = _result_from_dict(payload)
            entries[repr(key)] = payload
        if self.cache_path is not None:
            self._disk = merge_into_cache(self.cache_path, entries)
        return len(pending)

    # ------------------------------------------------------------------
    def telemetry_summary(self) -> Dict[str, float]:
        """Aggregate per-job telemetry over every memoized run.

        Only runs that carry telemetry (executed or recalled from a
        cache written by this version) contribute; results recalled
        from older caches count toward ``runs`` but not the rates.
        """
        runs = len(self._memo)
        telemetries = [result.telemetry for result in self._memo.values()
                       if result.telemetry is not None]
        total_events = sum(t.get("events", 0.0) for t in telemetries)
        total_wall = sum(t.get("wall_s", 0.0) for t in telemetries)
        total_probes = sum(t.get("tag_probes", 0.0) for t in telemetries)
        return {
            "runs": float(runs),
            "runs_with_telemetry": float(len(telemetries)),
            "events": total_events,
            "wall_s": total_wall,
            "events_per_sec": (total_events / total_wall
                               if total_wall > 0 else 0.0),
            "tag_probes": total_probes,
            "probes_per_event": (total_probes / total_events
                                 if total_events else 0.0),
        }

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if self.cache_path is None:
            return
        self._disk = merge_into_cache(self.cache_path, self._disk)


def _payload_from_result(result: RunResult) -> dict:
    """Cache/worker payload: the serialized result plus telemetry."""
    payload = _result_to_dict(result)
    if result.telemetry is not None:
        payload["telemetry"] = dict(result.telemetry)
    return payload


def _result_to_dict(result: RunResult) -> dict:
    """Serialize the *simulated outcome* (telemetry excluded, so two
    runs of the same job serialize bit-identically)."""
    return {
        "architecture": result.architecture,
        "benchmark": result.benchmark,
        "fam_counters": result.fam_counters,
        "fabric_counters": result.fabric_counters,
        "nodes": [
            {
                "node_id": n.node_id,
                "instructions": n.instructions,
                "memory_accesses": n.memory_accesses,
                "cycles": n.cycles,
                "runtime_ns": n.runtime_ns,
                "llc_misses": n.llc_misses,
                "fam_data_accesses": n.fam_data_accesses,
                "tlb_hit_rate": n.tlb_hit_rate,
                "node_walks": n.node_walks,
                "translation_hit_rate": n.translation_hit_rate,
                "acm_hit_rate": n.acm_hit_rate,
                "counters": n.counters,
            }
            for n in result.nodes
        ],
    }


def payload_ok(payload: object) -> bool:
    """Whether a worker/cache payload is a structurally valid serialized
    :class:`RunResult`.

    The supervisor validates every payload a worker returns before
    accepting it (a fault-injected or memory-corrupted worker can send
    garbage without raising), and ``deact cache validate --repair``
    uses the same predicate to quarantine corrupt cells — one
    definition of "well-formed" for both layers.
    """
    if not isinstance(payload, dict):
        return False
    try:
        _result_from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return False
    return True


def _result_from_dict(data: dict) -> RunResult:
    return RunResult(
        architecture=data["architecture"],
        benchmark=data["benchmark"],
        fam_counters=data.get("fam_counters", {}),
        fabric_counters=data.get("fabric_counters", {}),
        nodes=[NodeMetrics(**n) for n in data["nodes"]],
        telemetry=data.get("telemetry"),
    )
