"""Run management and memoization for the experiment harness.

A figure is a set of (benchmark, architecture, config-variant) runs;
several figures share runs (Figures 3, 4, 9-12 all consume the default
configuration matrix), so the runner memoizes results by a structural
key.  An optional on-disk JSON cache lets the benchmark harness and
repeated CLI invocations skip completed work.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.presets import default_config
from repro.config.system import SystemConfig
from repro.core.results import RunResult
from repro.core.system import FamSystem
from repro.workloads.catalog import get_profile

__all__ = ["RunSettings", "ExperimentRunner"]


@dataclass(frozen=True)
class RunSettings:
    """Trace-scale settings shared by every run of a harness instance.

    The paper simulates >=100M instructions per configuration in SST —
    far beyond a Python budget — so the harness runs shorter traces
    over proportionally scaled footprints.  The defaults keep roughly
    the paper's ratio of working set to translation-structure reach
    while giving each page enough revisits for warm hit rates.
    """

    n_events: int = 150_000
    footprint_scale: float = 0.12
    seed: int = 7

    def scaled(self, factor: float) -> "RunSettings":
        """Settings with the event count scaled by ``factor`` (>= 1
        event); used by the pytest benches to run quickly."""
        return RunSettings(n_events=max(1000, int(self.n_events * factor)),
                           footprint_scale=self.footprint_scale,
                           seed=self.seed)


class ExperimentRunner:
    """Memoizing runner for (benchmark, architecture, variant) runs."""

    def __init__(self, settings: Optional[RunSettings] = None,
                 cache_path: Optional[str] = None) -> None:
        self.settings = settings or RunSettings()
        self.cache_path = cache_path
        self._memo: Dict[Tuple, RunResult] = {}
        self._trace_memo: Dict[Tuple, object] = {}
        self._disk: Dict[str, dict] = {}
        if cache_path and os.path.exists(cache_path):
            with open(cache_path) as handle:
                self._disk = json.load(handle)

    # ------------------------------------------------------------------
    def _trace_for(self, benchmark: str, nodes: int):
        """Build (and memoize) the per-node traces for a benchmark."""
        key = (benchmark, nodes, self.settings.n_events,
               self.settings.footprint_scale, self.settings.seed)
        traces = self._trace_memo.get(key)
        if traces is None:
            profile = get_profile(benchmark)
            traces = [
                profile.build_trace(
                    n_events=self.settings.n_events,
                    seed=self.settings.seed + 1009 * node,
                    footprint_scale=self.settings.footprint_scale)
                for node in range(nodes)
            ]
            self._trace_memo[key] = traces
        return traces

    @staticmethod
    def _variant_key(config: SystemConfig) -> Tuple:
        """A structural key capturing everything that changes results."""
        return (
            config.nodes,
            config.stu.entries, config.stu.associativity,
            config.stu.acm_bits, config.stu.subways_per_way,
            config.stu.encrypted_memory_mode,
            config.stu.walk_cache_entries,
            config.fabric.node_to_stu_ns, config.fabric.stu_to_fam_ns,
            config.fabric.port_occupancy_ns,
            config.translation_cache.size_bytes,
            config.allocation.fam_policy,
            config.allocation.local_fraction,
            config.ptw.cache_entries,
            config.fam.read_ns, config.fam.write_ns,
            config.local_memory.access_ns,
        )

    def run(self, benchmark: str, architecture: str,
            config: Optional[SystemConfig] = None) -> RunResult:
        """Run (or recall) one benchmark on one architecture."""
        config = config or default_config()
        key = (benchmark, architecture, self._variant_key(config),
               self.settings.n_events, self.settings.footprint_scale,
               self.settings.seed)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        disk_key = repr(key)
        if disk_key in self._disk:
            result = _result_from_dict(self._disk[disk_key])
            self._memo[key] = result
            return result
        traces = self._trace_for(benchmark, config.nodes)
        system = FamSystem(config, architecture,
                           seed=self.settings.seed * 31 + 5)
        result = system.run(traces, benchmark=benchmark)
        self._memo[key] = result
        if self.cache_path is not None:
            self._disk[disk_key] = _result_to_dict(result)
            self._flush()
        return result

    def run_matrix(self, benchmarks: Sequence[str],
                   architectures: Sequence[str],
                   config: Optional[SystemConfig] = None,
                   ) -> Dict[Tuple[str, str], RunResult]:
        """Run the cross product, returning ``(bench, arch) -> result``."""
        results = {}
        for benchmark in benchmarks:
            for architecture in architectures:
                results[(benchmark, architecture)] = self.run(
                    benchmark, architecture, config)
        return results

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if self.cache_path is None:
            return
        tmp = f"{self.cache_path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(self._disk, handle)
        os.replace(tmp, self.cache_path)


def _result_to_dict(result: RunResult) -> dict:
    return {
        "architecture": result.architecture,
        "benchmark": result.benchmark,
        "fam_counters": result.fam_counters,
        "fabric_counters": result.fabric_counters,
        "nodes": [
            {
                "node_id": n.node_id,
                "instructions": n.instructions,
                "memory_accesses": n.memory_accesses,
                "cycles": n.cycles,
                "runtime_ns": n.runtime_ns,
                "llc_misses": n.llc_misses,
                "fam_data_accesses": n.fam_data_accesses,
                "tlb_hit_rate": n.tlb_hit_rate,
                "node_walks": n.node_walks,
                "translation_hit_rate": n.translation_hit_rate,
                "acm_hit_rate": n.acm_hit_rate,
                "counters": n.counters,
            }
            for n in result.nodes
        ],
    }


def _result_from_dict(data: dict) -> RunResult:
    from repro.core.results import NodeMetrics

    return RunResult(
        architecture=data["architecture"],
        benchmark=data["benchmark"],
        fam_counters=data.get("fam_counters", {}),
        fabric_counters=data.get("fabric_counters", {}),
        nodes=[NodeMetrics(**n) for n in data["nodes"]],
    )
