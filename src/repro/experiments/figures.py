"""Regeneration of every figure in the paper's evaluation.

Each ``figureN`` function runs (or recalls) the necessary simulations
through an :class:`~repro.experiments.runner.ExperimentRunner` and
returns a :class:`~repro.experiments.report.FigureResult` whose rows
carry both our measured values and the paper's reported numbers where
the text states them.

The sensitivity figures (13-15) follow the paper's presentation:
geometric means over the SPEC / PARSEC / GAP groups plus ``pf`` and
``dc`` individually ("we show geometric mean of the evaluated SPEC,
PARSEC and GAP benchmarks separately ... we show sensitivity results
only for dc benchmark among NPB benchmarks").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.presets import (
    default_config,
    with_acm_bits,
    with_acm_subways,
    with_fabric_latency,
    with_nodes,
    with_stu_associativity,
    with_stu_entries,
)
from repro.experiments.report import FigureResult, Row
from repro.experiments.runner import ExperimentRunner
from repro.sim.stats import geometric_mean
from repro.workloads.catalog import SUITE_GROUPS, benchmark_names, get_profile

__all__ = [
    "figure3", "figure4", "figure9", "figure10", "figure11", "figure12",
    "figure13", "figure13_assoc", "figure14", "figure14_subways",
    "figure15", "figure16", "ALL_FIGURES", "figure_matrix",
]

#: Sensitivity-group x-axis entries (Figures 13-15).
_GROUP_LABELS = ["SPEC", "PARSEC", "GAP", "pf", "dc"]

#: Default sweep values, shared between each figure function's keyword
#: defaults and :func:`figure_matrix` so the prewarmed matrix always
#: covers exactly the runs the figure requests.
_FIG13_SIZES = (256, 512, 1024, 2048, 4096)
_FIG13A_ASSOCIATIVITIES = (4, 8, 16, 32, 64)
_FIG14_WIDTHS = (8, 16, 32)
_FIG14S_SUBWAYS = (1, 2, 3)
_FIG15_LATENCIES_NS = (100.0, 250.0, 500.0, 750.0, 1000.0, 3000.0, 6000.0)
_FIG16_NODE_COUNTS = (1, 2, 4, 8)

#: Architecture sets, shared the same way.
_ALL_ARCHS = ("e-fam", "i-fam", "deact-w", "deact-n")
_MOTIVATION_ARCHS = ("e-fam", "i-fam")
_DESIGN_ARCHS = ("i-fam", "deact-w", "deact-n")
_SPEEDUP_ARCHS = ("i-fam", "deact-n")

#: Paper-reported values quoted in the text (used for the paper columns
#: and EXPERIMENTS.md).  Keys follow (figure, label, series).
_PAPER_TEXT_VALUES: Dict[tuple, float] = {
    ("fig4", "canl", "E-FAM"): 44.36,
    ("fig4", "canl", "I-FAM"): 84.13,
    ("fig4", "cactus", "E-FAM"): 1.81,
    ("fig4", "cactus", "I-FAM"): 53.69,
    ("fig9", "cactus", "DeACT-N"): 76.0,
    ("fig10", "canl", "I-FAM"): 46.44,
    ("fig10", "canl", "DeACT"): 95.88,
    ("fig12", "mcf", "I-FAM"): 0.39,
    ("fig12", "mcf", "DeACT-W"): 0.70,
    ("fig12", "mcf", "DeACT-N"): 0.92,
    ("fig12", "canl", "DeACT-N"): 0.14,
    ("fig13", "PARSEC", "256"): 3.45,
    ("fig13", "PARSEC", "4096"): 1.75,
    ("fig13", "dc", "256"): 4.68,
    ("fig15", "pf", "100"): 1.79,
    ("fig15", "pf", "6000"): 3.30,
    ("fig16", "dc", "1"): 2.92,
    ("fig16", "dc", "8"): 3.26,
}


def _benchmarks(subset: Optional[Sequence[str]] = None) -> List[str]:
    return list(subset) if subset else benchmark_names()


def _group_members(subset: Optional[Sequence[str]] = None) -> Dict[str, List[str]]:
    """Sensitivity groups filtered to an optional benchmark subset."""
    members = {}
    for label in _GROUP_LABELS:
        names = SUITE_GROUPS[label] if label in SUITE_GROUPS else [label]
        if subset:
            names = [n for n in names if n in subset]
        if names:
            members[label] = names
    return members


# ----------------------------------------------------------------------
# Motivation figures
# ----------------------------------------------------------------------
def figure3(runner: ExperimentRunner,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 3: slowdown of I-FAM with respect to E-FAM."""
    rows = []
    for bench in _benchmarks(benchmarks):
        efam = runner.run(bench, "e-fam")
        ifam = runner.run(bench, "i-fam")
        paper = {}
        profile = get_profile(bench)
        if profile.paper_ifam_slowdown is not None:
            paper["I-FAM"] = profile.paper_ifam_slowdown
        rows.append(Row(label=bench,
                        values={"I-FAM": ifam.slowdown_vs(efam)},
                        paper=paper))
    return FigureResult(
        figure_id="fig3", title="Slowdown of I-FAM wrt E-FAM",
        series=["I-FAM"], rows=rows, unit="x",
        notes="higher = worse; paper outliers: cactus 11.6x, canl "
              "18.7x, ccsv 9.1x, sssp 20.6x")


def figure4(runner: ExperimentRunner,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 4: % of requests at FAM that are address translation,
    E-FAM vs I-FAM."""
    rows = []
    for bench in _benchmarks(benchmarks):
        values = {}
        paper = {}
        for arch, series in (("e-fam", "E-FAM"), ("i-fam", "I-FAM")):
            result = runner.run(bench, arch)
            values[series] = 100.0 * result.fam_at_fraction
            key = ("fig4", bench, series)
            if key in _PAPER_TEXT_VALUES:
                paper[series] = _PAPER_TEXT_VALUES[key]
        rows.append(Row(label=bench, values=values, paper=paper))
    return FigureResult(
        figure_id="fig4",
        title="Address-translation share of FAM requests",
        series=["E-FAM", "I-FAM"], rows=rows, unit="%")


# ----------------------------------------------------------------------
# Design-evaluation figures
# ----------------------------------------------------------------------
def figure9(runner: ExperimentRunner,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 9: access-control-metadata hit rate."""
    series_archs = [("I-FAM", "i-fam"), ("DeACT-W", "deact-w"),
                    ("DeACT-N", "deact-n")]
    rows = []
    for bench in _benchmarks(benchmarks):
        values = {}
        paper = {}
        for series, arch in series_archs:
            result = runner.run(bench, arch)
            values[series] = 100.0 * result.acm_hit_rate
            key = ("fig9", bench, series)
            if key in _PAPER_TEXT_VALUES:
                paper[series] = _PAPER_TEXT_VALUES[key]
        rows.append(Row(label=bench, values=values, paper=paper))
    return FigureResult(
        figure_id="fig9", title="Access control metadata hit rate",
        series=[s for s, _ in series_archs], rows=rows, unit="%",
        notes="DeACT-W ~= I-FAM (random FAM allocation defeats "
              "contiguity); DeACT-N highest")


def figure10(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 10: FAM address-translation hit rate, I-FAM vs DeACT.

    DeACT-W and DeACT-N share the same in-DRAM translation cache, so
    the paper plots a single DeACT series; we measure it on DeACT-N.
    """
    rows = []
    for bench in _benchmarks(benchmarks):
        ifam = runner.run(bench, "i-fam")
        deact = runner.run(bench, "deact-n")
        values = {"I-FAM": 100.0 * ifam.translation_hit_rate,
                  "DeACT": 100.0 * deact.translation_hit_rate}
        paper = {}
        for series in ("I-FAM", "DeACT"):
            key = ("fig10", bench, series)
            if key in _PAPER_TEXT_VALUES:
                paper[series] = _PAPER_TEXT_VALUES[key]
        rows.append(Row(label=bench, values=values, paper=paper))
    return FigureResult(
        figure_id="fig10", title="FAM address translation hit rate",
        series=["I-FAM", "DeACT"], rows=rows, unit="%",
        notes="DeACT's in-DRAM cache dwarfs the STU cache: paper "
              "reports >90% for DeACT")


def figure11(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 11: % address-translation requests observed at FAM."""
    series_archs = [("I-FAM", "i-fam"), ("DeACT-W", "deact-w"),
                    ("DeACT-N", "deact-n")]
    rows = []
    for bench in _benchmarks(benchmarks):
        values = {}
        for series, arch in series_archs:
            result = runner.run(bench, arch)
            values[series] = 100.0 * result.fam_at_fraction
        rows.append(Row(label=bench, values=values))
    return FigureResult(
        figure_id="fig11",
        title="Address translation share of FAM requests",
        series=[s for s, _ in series_archs], rows=rows, unit="%",
        notes="paper averages: I-FAM 23.97% -> DeACT-W 11.82% -> "
              "DeACT-N 1.77%")


def figure12(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 12: performance normalized to E-FAM (all four schemes)."""
    series_archs = [("E-FAM", "e-fam"), ("I-FAM", "i-fam"),
                    ("DeACT-W", "deact-w"), ("DeACT-N", "deact-n")]
    rows = []
    for bench in _benchmarks(benchmarks):
        efam = runner.run(bench, "e-fam")
        values = {}
        paper = {}
        for series, arch in series_archs:
            result = runner.run(bench, arch)
            values[series] = result.normalized_performance(efam)
            key = ("fig12", bench, series)
            if key in _PAPER_TEXT_VALUES:
                paper[series] = _PAPER_TEXT_VALUES[key]
        rows.append(Row(label=bench, values=values, paper=paper))
    return FigureResult(
        figure_id="fig12", title="Normalized performance wrt E-FAM",
        series=[s for s, _ in series_archs], rows=rows, unit="x",
        notes="paper: DeACT-N up to 4.59x over I-FAM (1.8x average); "
              "bc/lu/mg/sp see no gain")


# ----------------------------------------------------------------------
# Sensitivity figures
# ----------------------------------------------------------------------
def _group_speedup_rows(runner: ExperimentRunner, configs: Dict[str, object],
                        figure_key: str,
                        benchmarks: Optional[Sequence[str]] = None,
                        architecture: str = "deact-n") -> List[Row]:
    """Rows of geomean speedup-vs-I-FAM per sensitivity group.

    ``configs`` maps the series label (e.g. STU size) to the
    :class:`SystemConfig` to evaluate; each label becomes a series and
    each group a row, mirroring the paper's grouped bar charts.
    """
    members = _group_members(benchmarks)
    rows = []
    for label, names in members.items():
        values = {}
        paper = {}
        for series, config in configs.items():
            speedups = []
            for bench in names:
                ifam = runner.run(bench, "i-fam", config)
                deact = runner.run(bench, architecture, config)
                speedups.append(max(deact.speedup_over(ifam), 1e-9))
            values[series] = geometric_mean(speedups)
            key = (figure_key, label, series)
            if key in _PAPER_TEXT_VALUES:
                paper[series] = _PAPER_TEXT_VALUES[key]
        rows.append(Row(label=label, values=values, paper=paper))
    return rows


def figure13(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None,
             sizes: Sequence[int] = _FIG13_SIZES,
             ) -> FigureResult:
    """Figure 13: DeACT-N speedup over I-FAM vs STU cache size."""
    base = default_config()
    configs = {str(size): with_stu_entries(base, size) for size in sizes}
    rows = _group_speedup_rows(runner, configs, "fig13", benchmarks)
    return FigureResult(
        figure_id="fig13",
        title="Speedup wrt I-FAM vs STU cache entries",
        series=[str(s) for s in sizes], rows=rows, unit="x",
        notes="smaller STU -> bigger DeACT win (paper: PARSEC 3.45x at "
              "256 entries down to 1.75x at 4096)")


def figure13_assoc(runner: ExperimentRunner,
                   benchmarks: Optional[Sequence[str]] = None,
                   associativities: Sequence[int] = _FIG13A_ASSOCIATIVITIES,
                   ) -> FigureResult:
    """Section V-D.1 (text): the STU-associativity sweep."""
    base = default_config()
    configs = {str(assoc): with_stu_associativity(base, assoc)
               for assoc in associativities}
    rows = _group_speedup_rows(runner, configs, "fig13a", benchmarks)
    return FigureResult(
        figure_id="fig13a",
        title="Speedup wrt I-FAM vs STU associativity",
        series=[str(a) for a in associativities], rows=rows, unit="x",
        notes="paper (text): dc 3.26x at 4 ways, 2.66x at 32, "
              "saturating ~2.5x beyond")


def figure14(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None,
             widths: Sequence[int] = _FIG14_WIDTHS) -> FigureResult:
    """Figure 14: ACM width (8/16/32 bits) effect on speedup.

    Series are ``<arch>/<bits>`` pairs, matching the paper's grouped
    bars (I-FAM is the 1.0 reference at every width).
    """
    base = default_config()
    members = _group_members(benchmarks)
    series = []
    for bits in widths:
        series.extend([f"W/{bits}", f"N/{bits}"])
    rows = []
    for label, names in members.items():
        values = {}
        for bits in widths:
            config = with_acm_bits(base, bits)
            for arch, prefix in (("deact-w", "W"), ("deact-n", "N")):
                speedups = []
                for bench in names:
                    ifam = runner.run(bench, "i-fam", config)
                    deact = runner.run(bench, arch, config)
                    speedups.append(max(deact.speedup_over(ifam), 1e-9))
                values[f"{prefix}/{bits}"] = geometric_mean(speedups)
        rows.append(Row(label=label, values=values))
    return FigureResult(
        figure_id="fig14", title="ACM size effect on performance",
        series=series, rows=rows, unit="x",
        notes="DeACT-W barely moves with width (contiguous caching is "
              "wasted under random allocation)")


def figure14_subways(runner: ExperimentRunner,
                     benchmarks: Optional[Sequence[str]] = None,
                     subways: Sequence[int] = _FIG14S_SUBWAYS) -> FigureResult:
    """Figure 14's DeACT-N pairs-per-way study (1, 2 or 3 {tag, ACM}
    pairs per STU way)."""
    base = default_config()
    configs = {str(n): with_acm_subways(base, n) for n in subways}
    rows = _group_speedup_rows(runner, configs, "fig14s", benchmarks)
    return FigureResult(
        figure_id="fig14s",
        title="DeACT-N speedup vs {tag, ACM} pairs per way",
        series=[str(n) for n in subways], rows=rows, unit="x",
        notes="paper (SPEC): 2.62x/2.52x/1.85x for 1/2/3 pairs at "
              "32/16/8-bit ACM respectively — one pair reduces "
              "DeACT-N to DeACT-W-level ACM reach")


def figure15(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None,
             latencies_ns: Sequence[float] = _FIG15_LATENCIES_NS,
             ) -> FigureResult:
    """Figure 15: fabric network latency sweep."""
    base = default_config()
    configs = {f"{int(lat)}": with_fabric_latency(base, lat)
               for lat in latencies_ns}
    rows = _group_speedup_rows(runner, configs, "fig15", benchmarks)
    return FigureResult(
        figure_id="fig15",
        title="Speedup wrt I-FAM vs fabric latency (ns)",
        series=list(configs), rows=rows, unit="x",
        notes="longer fabric -> each avoided walk saves more (paper: "
              "pf 1.79x at 100ns, 3.3x at 6us)")


def figure16(runner: ExperimentRunner,
             benchmarks: Optional[Sequence[str]] = None,
             node_counts: Sequence[int] = _FIG16_NODE_COUNTS) -> FigureResult:
    """Figure 16: node-count sweep (pf and dc, as in the paper)."""
    base = default_config()
    benches = list(benchmarks) if benchmarks else ["pf", "dc"]
    rows = []
    for bench in benches:
        values = {}
        paper = {}
        for nodes in node_counts:
            config = with_nodes(base, nodes)
            ifam = runner.run(bench, "i-fam", config)
            deact = runner.run(bench, "deact-n", config)
            values[str(nodes)] = deact.speedup_over(ifam)
            key = ("fig16", bench, str(nodes))
            if key in _PAPER_TEXT_VALUES:
                paper[str(nodes)] = _PAPER_TEXT_VALUES[key]
        rows.append(Row(label=bench, values=values, paper=paper))
    return FigureResult(
        figure_id="fig16",
        title="Speedup wrt I-FAM vs number of nodes",
        series=[str(n) for n in node_counts], rows=rows, unit="x",
        notes="sharing the fabric amplifies I-FAM's walk traffic, so "
              "DeACT's win grows with node count")


# ----------------------------------------------------------------------
# Run matrices (for parallel prewarming)
# ----------------------------------------------------------------------
#: Sensitivity sweeps that plot DeACT-N speedup over I-FAM: the config
#: transform and the shared default-value constants.
_FIGURE_SWEEPS = {
    "13": (with_stu_entries, _FIG13_SIZES),
    "13a": (with_stu_associativity, _FIG13A_ASSOCIATIVITIES),
    "14s": (with_acm_subways, _FIG14S_SUBWAYS),
    "15": (with_fabric_latency, _FIG15_LATENCIES_NS),
}

#: Architectures each default-config figure runs.
_FIGURE_ARCHS = {
    "3": _MOTIVATION_ARCHS,
    "4": _MOTIVATION_ARCHS,
    "9": _DESIGN_ARCHS,
    "10": _SPEEDUP_ARCHS,
    "11": _DESIGN_ARCHS,
    "12": _ALL_ARCHS,
}


def figure_matrix(figure_id: str,
                  benchmarks: Optional[Sequence[str]] = None,
                  ) -> List[tuple]:
    """The ``(benchmark, architecture, config)`` runs ``figureN`` will
    request, for batch execution by a sweep pool.

    :meth:`ExperimentRunner.prewarm` consumes this to run a figure's
    whole matrix in parallel before the (serial, memo-hitting) figure
    builder assembles rows; the builder then performs zero new runs.
    (``tests/test_experiments.py::TestRunMatrices`` enforces exact
    coverage for every figure.)
    """
    base = default_config()
    if figure_id in _FIGURE_ARCHS:
        return [(bench, arch, base) for bench in _benchmarks(benchmarks)
                for arch in _FIGURE_ARCHS[figure_id]]
    if figure_id in _FIGURE_SWEEPS:
        transform, values = _FIGURE_SWEEPS[figure_id]
        members = _group_members(benchmarks)
        benches = sorted({b for names in members.values() for b in names})
        return [(bench, arch, transform(base, value))
                for value in values for bench in benches
                for arch in _SPEEDUP_ARCHS]
    if figure_id == "14":
        members = _group_members(benchmarks)
        benches = sorted({b for names in members.values() for b in names})
        return [(bench, arch, with_acm_bits(base, bits))
                for bits in _FIG14_WIDTHS for bench in benches
                for arch in _DESIGN_ARCHS]
    if figure_id == "16":
        benches = list(benchmarks) if benchmarks else ["pf", "dc"]
        return [(bench, arch, with_nodes(base, nodes))
                for nodes in _FIG16_NODE_COUNTS for bench in benches
                for arch in _SPEEDUP_ARCHS]
    raise KeyError(f"no run matrix for figure {figure_id!r}")


#: Registry used by the CLI and the bench harness.
ALL_FIGURES = {
    "3": figure3,
    "4": figure4,
    "9": figure9,
    "10": figure10,
    "11": figure11,
    "12": figure12,
    "13": figure13,
    "13a": figure13_assoc,
    "14": figure14,
    "14s": figure14_subways,
    "15": figure15,
    "16": figure16,
}
