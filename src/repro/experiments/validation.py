"""Shape validation: the paper's qualitative claims as executable
checks.

Absolute numbers differ between simulators, but the paper's evaluation
makes directional claims that any faithful reproduction must satisfy.
This module encodes them as checks over :class:`FigureResult` objects;
``validate_all`` returns a report listing every claim with a pass/fail
verdict, and the test suite asserts them at full experiment scale via
the cached results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments.report import FigureResult

__all__ = ["Claim", "ClaimOutcome", "check_figure", "CLAIMS"]

#: The paper's translation-sensitive outliers (Figure 3's labeled bars).
OUTLIERS = ("cactus", "canl", "ccsv", "sssp")
#: Benchmarks the paper says see no DeACT gain (Section V-C).
INSENSITIVE = ("bc", "lu", "mg", "sp")


@dataclass(frozen=True)
class Claim:
    """One directional claim from the paper's evaluation text."""

    figure_id: str
    description: str
    check: Callable[[FigureResult], bool]


@dataclass
class ClaimOutcome:
    claim: Claim
    passed: bool
    detail: str = ""


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _fig3_outliers_worst(figure: FigureResult) -> bool:
    """Every outlier's I-FAM slowdown exceeds every insensitive
    benchmark's."""
    outliers = [figure.value(b, "I-FAM") for b in OUTLIERS]
    steady = [figure.value(b, "I-FAM") for b in INSENSITIVE]
    if None in outliers or None in steady:
        return False
    return min(outliers) > max(steady)


def _fig4_indirection_adds_at(figure: FigureResult) -> bool:
    """I-FAM's AT share exceeds E-FAM's for every benchmark."""
    return all(row.values["I-FAM"] > row.values["E-FAM"]
               for row in figure.rows)


def _fig9_w_tracks_ifam(figure: FigureResult) -> bool:
    """DeACT-W's ACM hit rate is not improved over I-FAM (within a
    small tolerance), per Section III-D."""
    return all(abs(row.values["DeACT-W"] - row.values["I-FAM"]) < 5.0
               for row in figure.rows)


def _fig9_n_highest(figure: FigureResult) -> bool:
    """DeACT-N's ACM hit rate is the highest of the three."""
    return all(row.values["DeACT-N"] >=
               max(row.values["I-FAM"], row.values["DeACT-W"]) - 0.5
               for row in figure.rows)


def _fig10_deact_over_90(figure: FigureResult) -> bool:
    """DeACT's translation hit rate is 'more than 90%' on average
    (with a small slack for scaled traces)."""
    return _mean(figure.series_values("DeACT")) > 88.0


def _fig10_deact_ge_ifam(figure: FigureResult) -> bool:
    return all(row.values["DeACT"] >= row.values["I-FAM"] - 1.0
               for row in figure.rows)


def _fig11_deact_cuts_at(figure: FigureResult) -> bool:
    """Average AT share at FAM decreases I-FAM -> DeACT-W -> DeACT-N."""
    ifam = _mean(figure.series_values("I-FAM"))
    w = _mean(figure.series_values("DeACT-W"))
    n = _mean(figure.series_values("DeACT-N"))
    return ifam > n and w > n


def _fig12_deact_recovers_outliers(figure: FigureResult) -> bool:
    """For the outliers, DeACT-N lands between I-FAM and E-FAM."""
    for bench in OUTLIERS:
        ifam = figure.value(bench, "I-FAM")
        deact = figure.value(bench, "DeACT-N")
        if ifam is None or deact is None or not ifam < deact < 1.0:
            return False
    return True


def _fig12_no_gain_for_insensitive(figure: FigureResult) -> bool:
    """bc/lu/mg/sp: DeACT does not meaningfully improve on I-FAM
    (Section V-C).  'Meaningfully' is a 10% band — the outliers gain
    50-90%, so the separation stays unambiguous."""
    for bench in INSENSITIVE:
        ifam = figure.value(bench, "I-FAM")
        deact = figure.value(bench, "DeACT-N")
        if ifam is None or deact is None or deact > ifam * 1.10:
            return False
    return True


def _fig12_n_beats_w(figure: FigureResult) -> bool:
    """DeACT-N never trails DeACT-W (the Figure 8c refinement pays)."""
    return all(row.values["DeACT-N"] >= row.values["DeACT-W"] - 0.01
               for row in figure.rows)


def _monotone_rows(figure: FigureResult, increasing: bool,
                   tolerance: float = 0.1) -> bool:
    """Each row's series values trend monotonically (with slack)."""
    for row in figure.rows:
        values = [row.values[s] for s in figure.series
                  if s in row.values]
        for a, b in zip(values, values[1:]):
            if increasing and b < a - tolerance:
                return False
            if not increasing and b > a + tolerance:
                return False
    return True


CLAIMS: Dict[str, List[Claim]] = {
    "fig3": [Claim("fig3", "the paper's four outliers suffer the "
                           "largest I-FAM slowdowns",
                   _fig3_outliers_worst)],
    "fig4": [Claim("fig4", "indirection raises the AT share at FAM "
                           "for every benchmark",
                   _fig4_indirection_adds_at)],
    "fig9": [
        Claim("fig9", "DeACT-W's ACM hit rate is not improved over "
                      "I-FAM", _fig9_w_tracks_ifam),
        Claim("fig9", "DeACT-N has the highest ACM hit rate",
              _fig9_n_highest),
    ],
    "fig10": [
        Claim("fig10", "DeACT's translation hit rate averages above "
                       "90%", _fig10_deact_over_90),
        Claim("fig10", "DeACT's translation hit rate never trails "
                       "I-FAM's", _fig10_deact_ge_ifam),
    ],
    "fig11": [Claim("fig11", "DeACT-N cuts the average AT share below "
                             "I-FAM and DeACT-W",
                    _fig11_deact_cuts_at)],
    "fig12": [
        Claim("fig12", "DeACT-N sits between I-FAM and E-FAM for the "
                       "outliers", _fig12_deact_recovers_outliers),
        Claim("fig12", "bc/lu/mg/sp see no DeACT gain",
              _fig12_no_gain_for_insensitive),
        Claim("fig12", "DeACT-N never trails DeACT-W",
              _fig12_n_beats_w),
    ],
    "fig13": [Claim("fig13", "speedup shrinks as the STU cache grows",
                    lambda f: _monotone_rows(f, increasing=False))],
    "fig15": [Claim("fig15", "speedup grows with fabric latency",
                    lambda f: _monotone_rows(f, increasing=True))],
    "fig16": [Claim("fig16", "speedup grows with node count",
                    lambda f: _monotone_rows(f, increasing=True))],
}


def check_figure(figure: FigureResult) -> List[ClaimOutcome]:
    """Evaluate every registered claim against ``figure``."""
    outcomes = []
    for claim in CLAIMS.get(figure.figure_id, []):
        try:
            passed = claim.check(figure)
            detail = ""
        except (KeyError, TypeError) as exc:
            passed = False
            detail = f"missing data: {exc}"
        outcomes.append(ClaimOutcome(claim=claim, passed=passed,
                                     detail=detail))
    return outcomes
