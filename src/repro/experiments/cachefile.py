"""Lock-safe access to the on-disk JSON result cache.

The cache is one JSON object mapping a structural run key (the
``repr`` of the runner's memo key) to a serialized
:class:`~repro.core.results.RunResult` dict.  Several processes may
finish sweep jobs against the same cache file concurrently — the
sweep engine in one terminal, a figure regeneration in another — so
every write goes through :func:`merge_into_cache`:

1. take an exclusive ``flock`` on a sidecar ``<cache>.lock`` file,
2. re-read the cache from disk (someone else may have flushed since
   we loaded it),
3. merge our entries over the on-disk state,
4. write to a per-process temporary file and ``os.replace`` it into
   place (atomic on POSIX), then release the lock.

Readers never need the lock: ``os.replace`` guarantees they see
either the old or the new complete file, and :func:`load_cache`
treats a truncated/corrupt file as empty rather than crashing.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import time
from typing import Dict

try:  # pragma: no cover - fcntl is always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["load_cache", "merge_into_cache", "cache_lock"]

logger = logging.getLogger(__name__)


def load_cache(path: str) -> Dict[str, dict]:
    """Read a result cache, tolerating absent or corrupt files.

    A truncated or garbage cache (killed process, disk-full partial
    write from a tool that bypassed the atomic path) is worth a
    warning, not a crash: the runs it memoized can always be redone.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {}
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        logger.warning("ignoring unreadable result cache %s: %s", path, exc)
        return {}
    if not isinstance(data, dict):
        logger.warning("ignoring result cache %s: expected a JSON object, "
                       "got %s", path, type(data).__name__)
        return {}
    return data


#: Non-POSIX fallback tuning: how long to spin for the lock, and when
#: an existing lock file counts as leftover from a crashed process.
_LOCK_TIMEOUT_S = 30.0
_LOCK_STALE_S = 60.0


@contextlib.contextmanager
def cache_lock(path: str):
    """Hold an exclusive advisory lock for the cache at ``path``.

    Uses a sidecar ``<path>.lock`` file so the lock survives the
    ``os.replace`` of the cache file itself (locking the data file
    directly would lock an inode that the replace immediately
    orphans).  On POSIX the lock is ``flock``; elsewhere it falls back
    to an exclusive-create spin lock (with stale-lock breaking), which
    still serializes well-behaved writers.
    """
    lock_path = f"{path}.lock"
    if fcntl is not None:
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        return
    deadline = time.monotonic() + _LOCK_TIMEOUT_S
    while True:
        try:
            fd = os.open(lock_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                age = time.time() - os.path.getmtime(lock_path)
            except OSError:  # holder just released it; retry at once
                continue
            if age > _LOCK_STALE_S or time.monotonic() > deadline:
                logger.warning("breaking stale/overdue cache lock %s",
                               lock_path)
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass
                continue
            time.sleep(0.02)
    try:
        yield
    finally:
        os.close(fd)
        try:
            os.unlink(lock_path)
        except OSError:  # pragma: no cover - someone broke our lock
            pass


def merge_into_cache(path: str, entries: Dict[str, dict]) -> Dict[str, dict]:
    """Merge ``entries`` into the cache at ``path`` under the lock.

    Returns the full merged mapping so callers can refresh their
    in-memory view with results other processes contributed.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with cache_lock(path):
        merged = load_cache(path)
        merged.update(entries)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(merged, handle)
        os.replace(tmp, path)
    return merged
