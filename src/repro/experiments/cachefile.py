"""Lock-safe access to the on-disk JSON result cache.

The cache is one JSON object mapping a structural run key (the
``repr`` of the runner's memo key) to a serialized
:class:`~repro.core.results.RunResult` dict.  Several processes may
finish sweep jobs against the same cache file concurrently — the
sweep engine in one terminal, a figure regeneration in another, shard
merges arriving from other hosts over a shared filesystem — so every
write goes through :func:`merge_into_cache`:

1. take an exclusive ``flock`` on a sidecar ``<cache>.lock`` file,
2. re-read the cache from disk (someone else may have flushed since
   we loaded it),
3. merge our entries over the on-disk state, refusing (or warning
   about) keys whose simulated outcome differs from what the disk
   already holds — same key + different payload signals
   nondeterminism or schema drift, never something to overwrite
   silently,
4. write to a collision-proof temporary file (``tempfile.mkstemp`` in
   the cache directory, so the name is unique even across hosts that
   happen to share a PID) and ``os.replace`` it into place (atomic on
   POSIX), then release the lock.

Cache files are written with sorted keys, so two caches holding the
same entries are byte-identical regardless of insertion order — the
property the sharded-sweep pipeline relies on to prove a merged shard
union equals an unsharded sweep.

Readers never need the lock: ``os.replace`` guarantees they see
either the old or the new complete file, and :func:`load_cache`
treats a truncated/corrupt file as empty rather than crashing.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import random
import socket
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.errors import CacheLockTimeout, CacheMergeConflict

try:  # pragma: no cover - fcntl is always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["load_cache", "merge_into_cache", "cache_lock",
           "payloads_equivalent", "strip_telemetry",
           "write_cache_atomic", "write_json_atomic"]

logger = logging.getLogger(__name__)


def load_cache(path: str) -> Dict[str, dict]:
    """Read a result cache, tolerating absent or corrupt files.

    A truncated or garbage cache (killed process, disk-full partial
    write from a tool that bypassed the atomic path) is worth a
    warning, not a crash: the runs it memoized can always be redone.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return {}
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        logger.warning("ignoring unreadable result cache %s: %s", path, exc)
        return {}
    if not isinstance(data, dict):
        logger.warning("ignoring result cache %s: expected a JSON object, "
                       "got %s", path, type(data).__name__)
        return {}
    return data


#: Non-POSIX fallback tuning: how long to spin for the lock, and when
#: an existing lock file counts as leftover from a crashed process.
_LOCK_TIMEOUT_S = 30.0
_LOCK_STALE_S = 60.0

#: Lock-retry backoff: exponential from ``_BACKOFF_BASE_S`` capped at
#: ``_BACKOFF_CAP_S``, with seeded jitter so N waiters blocked on the
#: same holder don't retry in lockstep (a fixed 20ms spin makes every
#: waiter hammer the lock at the same instant the holder releases it).
_BACKOFF_BASE_S = 0.01
_BACKOFF_CAP_S = 0.25


def _lock_backoff_rng(lock_path: str) -> random.Random:
    """A per-(host, process, lock) seeded RNG for retry jitter.

    Seeding from identity rather than entropy keeps this module clean
    under DET001: the jitter desynchronizes *different* waiters — which
    differ in hostname or pid — while any single process's retry
    schedule stays reproducible.  The draws are never serialized.
    """
    return random.Random(
        f"{socket.gethostname()}:{os.getpid()}:{lock_path}")


def _backoff_sleep(rng: random.Random, attempt: int) -> None:
    base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** min(attempt, 16)))
    time.sleep(base * rng.uniform(0.5, 1.5))


def _holder_note(lock_path: str) -> str:
    """Who holds the lock, per the ``hostname:pid`` line the acquiring
    process wrote — best-effort, for the timeout message only."""
    try:
        with open(lock_path) as handle:
            holder = handle.readline().strip()
    except OSError:
        return ""
    return f"; lock file names holder {holder}" if holder else ""


def _write_holder(handle_or_fd) -> None:
    """Record our identity in the (held) lock file."""
    note = f"{socket.gethostname()}:{os.getpid()}\n"
    try:
        if isinstance(handle_or_fd, int):
            os.write(handle_or_fd, note.encode("utf-8"))
        else:
            handle_or_fd.seek(0)
            handle_or_fd.truncate()
            handle_or_fd.write(note)
            handle_or_fd.flush()
    except OSError:  # pragma: no cover - diagnostics only, never fatal
        pass


@contextlib.contextmanager
def cache_lock(path: str, timeout_s: float = _LOCK_TIMEOUT_S):
    """Hold an exclusive advisory lock for the cache at ``path``.

    Uses a sidecar ``<path>.lock`` file so the lock survives the
    ``os.replace`` of the cache file itself (locking the data file
    directly would lock an inode that the replace immediately
    orphans).  On POSIX the lock is ``flock``; elsewhere it falls back
    to an exclusive-create spin lock, which still serializes
    well-behaved writers.

    The fallback breaks a lock only when its mtime proves the holder
    crashed long ago (older than ``_LOCK_STALE_S``).  A *fresh* lock
    that outlives ``timeout_s`` raises :class:`CacheLockTimeout`
    instead: the holder is alive, and stealing its lock would let two
    writers race the same file.
    """
    lock_path = f"{path}.lock"
    deadline = time.monotonic() + timeout_s
    rng = _lock_backoff_rng(lock_path)
    attempt = 0
    if fcntl is not None:
        # Non-blocking flock in a deadline loop rather than a bare
        # LOCK_EX: the timeout contract must hold on POSIX too, or a
        # hung lock holder wedges every merger forever.  Open "a+" —
        # "w" would truncate the holder identity the current holder
        # wrote while it still owns the flock.
        with open(lock_path, "a+") as handle:
            while True:
                try:
                    fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except BlockingIOError:
                    if time.monotonic() > deadline:
                        raise CacheLockTimeout(
                            f"timed out after {timeout_s:.1f}s waiting "
                            f"for cache lock {lock_path} (flock held by "
                            f"a live process{_holder_note(lock_path)})")
                    _backoff_sleep(rng, attempt)
                    attempt += 1
            _write_holder(handle)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        return
    while True:
        try:
            fd = os.open(lock_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            _write_holder(fd)
            break
        except FileExistsError:
            try:
                # Lock staleness vs. an on-disk mtime must use the wall
                # clock; the age is never serialized.
                # deact: allow(DET001)
                age = time.time() - os.path.getmtime(lock_path)
            except OSError:  # holder just released it; retry at once
                continue
            if age > _LOCK_STALE_S:
                logger.warning("breaking stale cache lock %s "
                               "(age %.0fs)", lock_path, age)
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass
                continue
            if time.monotonic() > deadline:
                raise CacheLockTimeout(
                    f"timed out after {timeout_s:.1f}s waiting for cache "
                    f"lock {lock_path} (held by a live process for "
                    f"{age:.1f}s{_holder_note(lock_path)}; remove it "
                    f"only if that process is gone)")
            _backoff_sleep(rng, attempt)
            attempt += 1
    try:
        yield
    finally:
        os.close(fd)
        try:
            os.unlink(lock_path)
        except OSError:  # pragma: no cover - someone broke our lock
            pass


def strip_telemetry(payload):
    """A payload reduced to its simulated outcome.

    The single definition of "what counts as the outcome": telemetry
    (wall time, events/sec, probe counts) is measurement metadata of
    one particular execution that two hosts legitimately disagree on.
    Both the merge-conflict comparison and the shard bit-identity
    check (:func:`~repro.experiments.shardfile.canonical_cache_text`)
    strip through here, so they can never drift apart.
    """
    if not isinstance(payload, dict):
        return payload
    return {k: v for k, v in payload.items() if k != "telemetry"}


def payloads_equivalent(ours: dict, theirs: dict) -> bool:
    """Whether two cache payloads describe the same simulated outcome
    (telemetry excluded, see :func:`strip_telemetry`)."""
    if ours == theirs:
        return True
    if not isinstance(ours, dict) or not isinstance(theirs, dict):
        return False
    return strip_telemetry(ours) == strip_telemetry(theirs)


#: Fault-injection hook for the atomic write path, installed only by
#: :mod:`repro.experiments.faults` (chaos tests) and ``None`` in every
#: production run.  Called as ``hook(phase, path, text, handle)`` with
#: ``phase="pre"`` before the temp-file write and ``"post"`` after the
#: ``os.replace`` — the two points a real crash can interleave with.
#: A torn-write hook kills the process outright (``os._exit``), so the
#: normal write below must remain correct when the hook returns.
_WRITE_FAULT_HOOK: Optional[Callable[[str, str, str, object], None]] = None


def write_json_atomic(path: str, obj: object,
                      **dump_kwargs: object) -> None:
    """Atomically replace the JSON file at ``path`` with ``obj``.

    The one crash-safe write path for everything the experiment
    harness persists (caches, shard manifests).  The temporary file
    comes from ``tempfile.mkstemp`` in the target's own directory
    (same filesystem, so ``os.replace`` stays atomic) with the
    hostname in the prefix: PID-based names collide across hosts
    sharing a filesystem, mkstemp's random suffix cannot.

    Serializing to text before opening the temp file means a crash at
    *any* byte of the write leaves only a dead ``.tmp.`` file behind —
    never a half-written ``path`` — which the torn-write property
    suite verifies offset by offset through ``_WRITE_FAULT_HOOK``.
    """
    text = json.dumps(obj, **dump_kwargs)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    prefix = f"{os.path.basename(path)}.tmp.{socket.gethostname()}."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=prefix)
    try:
        # mkstemp creates 0600; widen to the umask-honoring mode a
        # plain open() would have used, or other-uid readers on a
        # shared filesystem (the cross-host merge scenario) get
        # PermissionError on the replaced file.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w") as handle:
            if _WRITE_FAULT_HOOK is not None:
                _WRITE_FAULT_HOOK("pre", path, text, handle)
            handle.write(text)
        os.replace(tmp, path)
        if _WRITE_FAULT_HOOK is not None:
            _WRITE_FAULT_HOOK("post", path, text, None)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def write_cache_atomic(path: str, entries: Dict[str, dict]) -> None:
    """Atomically replace the cache at ``path`` with ``entries``.

    Sorted keys make cache bytes a function of contents, not write
    order — the property the sharded-sweep bit-identity check relies
    on.
    """
    write_json_atomic(path, entries, sort_keys=True)


def merge_into_cache(path: str, entries: Dict[str, dict],
                     strict: bool = False,
                     timeout_s: float = _LOCK_TIMEOUT_S,
                     keep_existing: bool = False) -> Dict[str, dict]:
    """Merge ``entries`` into the cache at ``path`` under the lock.

    A key already on disk with a *different* payload (telemetry aside,
    see :func:`payloads_equivalent`) is a merge conflict: it means two
    supposedly deterministic executions of the same job disagreed.
    By default the conflict is logged as a warning and the incoming
    payload wins; under ``strict=True`` (the ``deact cache merge``
    path) it raises :class:`CacheMergeConflict` before touching disk;
    with ``keep_existing=True`` (the *forced* shard merge, whose
    precedence is first-payload-wins) the on-disk payload is kept
    instead.  The conflict decision happens under the lock, so a
    concurrent writer's fresh entries cannot slip between a read and
    the merge.

    Returns the full merged mapping so callers can refresh their
    in-memory view with results other processes contributed.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with cache_lock(path, timeout_s=timeout_s):
        merged = load_cache(path)
        conflicts: List[str] = [
            key for key, payload in entries.items()
            if key in merged
            and not payloads_equivalent(merged[key], payload)]
        if conflicts:
            detail = (f"{len(conflicts)} cache key(s) map to different "
                      f"payloads (nondeterminism or schema drift?); "
                      f"first: {conflicts[0]}")
            if strict:
                raise CacheMergeConflict(
                    f"refusing to merge into {path}: {detail}",
                    keys=conflicts)
            if keep_existing:
                logger.warning("keeping existing entries of %s over "
                               "conflicting incoming ones: %s",
                               path, detail)
                skip = set(conflicts)
                entries = {key: payload
                           for key, payload in entries.items()
                           if key not in skip}
            else:
                logger.warning("overwriting conflicting entries in "
                               "%s: %s", path, detail)
        merged.update(entries)
        write_cache_atomic(path, merged)
    return merged
