"""Execution provenance shared by shard manifests and the bench trajectory.

Both the shard-manifest pipeline (:mod:`repro.experiments.shardfile`)
and the perf-trajectory file (:mod:`repro.experiments.trajectory`)
stamp their artifacts with *who produced this, where, and from what
tree*: an operator debugging a fleet merge and a reviewer reading a
bench regression both need to know which host and which commit a
number came from.  This module is the single definition of that
record so the two never drift apart.

Everything here degrades gracefully: outside a git checkout the git
fields are ``None``, and a missing NumPy (impossible in this repo,
but the record format should not assume it) reports ``None`` rather
than crashing the measurement that asked for provenance.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import time
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["PROVENANCE_FIELDS", "collect_provenance", "git_toplevel"]

#: Every key a provenance block carries, in one place so the
#: round-trip tests for manifests and trajectory entries pin the same
#: contract.
PROVENANCE_FIELDS = (
    "hostname",
    "pid",
    "created_unix",
    "python",
    "numpy",
    "git_commit",
    "git_dirty",
)

_GIT_TIMEOUT_S = 5.0


def _run_git(args: Sequence[str], cwd: Optional[str]) -> Optional[str]:
    """One git query, or ``None`` when git/repo/permission is absent."""
    try:
        out = subprocess.run(
            ["git", *args], cwd=cwd or None, timeout=_GIT_TIMEOUT_S,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, check=True)
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.decode("utf-8", "replace").strip()


def git_toplevel(cwd: Optional[str] = None) -> Optional[str]:
    """The repository root containing ``cwd``, or ``None`` outside git."""
    top = _run_git(["rev-parse", "--show-toplevel"], cwd)
    return top or None


def _git_state(cwd: Optional[str]) -> Tuple[Optional[str], Optional[bool]]:
    """``(commit hash, dirty flag)`` — both ``None`` outside a repo."""
    commit = _run_git(["rev-parse", "HEAD"], cwd)
    if not commit:
        return None, None
    status = _run_git(["status", "--porcelain"], cwd)
    return commit, None if status is None else bool(status)


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy ships with the repo
        return None
    return str(numpy.__version__)


def collect_provenance(cwd: Optional[str] = None) -> Dict[str, object]:
    """The provenance block for an artifact produced *right now, here*.

    ``cwd`` anchors the git queries (defaults to the process cwd): a
    bench run invoked from inside the checkout records the commit its
    numbers were measured against, plus whether the tree was dirty —
    a dirty-tree measurement is a valid trajectory point but not a
    citable baseline.
    """
    commit, dirty = _git_state(cwd)
    return {
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "git_commit": commit,
        "git_dirty": dirty,
    }
