"""Memory device models and the request taxonomy.

* :mod:`repro.mem.request` — request/response records with the
  paper's classification (data vs address-translation vs ACM traffic)
  and the ``V`` verification flag DeACT adds to packets.
* :mod:`repro.mem.device` — banked busy-until DRAM and NVM devices
  with Table II latencies and outstanding-request limits.
"""

from repro.mem.request import MemoryRequest, RequestKind
from repro.mem.device import DramDevice, NvmDevice

__all__ = ["MemoryRequest", "RequestKind", "DramDevice", "NvmDevice"]
