"""Memory request records and the paper's traffic taxonomy.

Figure 4 and Figure 11 classify requests arriving at the FAM into
address-translation (AT) and non-AT traffic; DeACT additionally tags
packets with a verification flag ``V`` so the STU can tell a
pre-translated request (verify only) from an untranslated one (walk the
FAM page table).  Both concepts live here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["RequestKind", "MemoryRequest"]

_request_ids = itertools.count()


class RequestKind(Enum):
    """What a memory request is *for* (the paper's AT / non-AT split,
    refined so the harness can break traffic down further)."""

    #: Application load/store data.
    DATA = "data"
    #: A node page-table walk read (node virtual -> node physical).
    NODE_PTW = "node_ptw"
    #: A system (FAM) page-table walk read issued by the STU.
    FAM_PTW = "fam_ptw"
    #: An access-control-metadata fetch issued by the STU.
    ACM = "acm"
    #: A dirty-block write-back.
    WRITEBACK = "writeback"


#: Values of the kinds counted as address translation.
_AT_KIND_VALUES = frozenset(("node_ptw", "fam_ptw", "acm"))

# ``is_translation`` is consulted on every memory-device access, so it
# is precomputed onto each member as a plain attribute (a property
# would re-evaluate set membership per call on the hot path).
for _kind in RequestKind:
    _kind.is_translation = _kind.value in _AT_KIND_VALUES
del _kind


@dataclass
class MemoryRequest:
    """One request travelling through the memory system.

    Attributes
    ----------
    addr:
        The address in the request's current address space (node
        physical until translated, FAM afterwards).
    is_write:
        Store vs load.
    kind:
        Traffic class (see :class:`RequestKind`).
    node_id:
        Originating node (used by the STU for verification).
    verified:
        The DeACT ``V`` flag: set by the FAM translator when the node
        already holds the FAM address, clear when the STU must walk.
    fam_addr:
        The FAM address once translation has happened.
    request_id:
        Monotonic id, used by the outstanding-mapping list.
    """

    addr: int
    is_write: bool = False
    kind: RequestKind = RequestKind.DATA
    node_id: int = 0
    verified: bool = False
    fam_addr: int | None = None
    needs_response: bool = True
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def with_fam_address(self, fam_addr: int) -> "MemoryRequest":
        """A copy of the request re-addressed into FAM space with the
        verification flag set (what the FAM translator emits)."""
        return MemoryRequest(addr=fam_addr, is_write=self.is_write,
                             kind=self.kind, node_id=self.node_id,
                             verified=True, fam_addr=fam_addr,
                             needs_response=self.needs_response,
                             request_id=self.request_id)
