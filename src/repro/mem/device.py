"""Banked DRAM and NVM device models.

Both devices are banks of busy-until FIFO servers (see
:mod:`repro.sim.resource`).  The NVM FAM additionally enforces the
Table II outstanding-request limit (128) and keeps the AT/non-AT
request census behind Figures 4 and 11.

Counters are plain attributes (these methods run a dozen times per
trace event); :meth:`snapshot` materializes them into the dict shape
the experiment harness consumes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config.system import FamConfig, LocalMemoryConfig
from repro.mem.request import RequestKind
from repro.sim.resource import BankedResource, OutstandingWindow

__all__ = ["DramDevice", "NvmDevice"]


class DramDevice:
    """Node-local DRAM: symmetric read/write latency, a few banks."""

    def __init__(self, config: LocalMemoryConfig, name: str = "dram") -> None:
        self.config = config
        self.name = name
        self.banks = BankedResource(name, config.banks,
                                    config.interleave_bytes)
        self._access_ns = config.access_ns
        self.reads = 0
        self.writes = 0
        self.at_accesses = 0

    def access(self, addr: int, now: float, is_write: bool = False,
               kind: RequestKind = RequestKind.DATA) -> float:
        """Issue one 64 B access; returns completion time."""
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        if kind.is_translation:
            self.at_accesses += 1
        return self.banks.reserve(addr, now, self._access_ns)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> Dict[str, float]:
        return {"accesses": float(self.accesses),
                "reads": float(self.reads),
                "writes": float(self.writes),
                "at_accesses": float(self.at_accesses)}

    def reset(self) -> None:
        self.banks.reset()
        self.reads = self.writes = self.at_accesses = 0


class NvmDevice:
    """The fabric-attached NVM pool (Table II: 16 GB, 60/150 ns
    read/write, 32 banks, 128 outstanding requests).

    The outstanding window applies back-pressure: when 128 requests are
    in flight, a new arrival waits for the oldest completion before its
    bank reservation begins — the admission rule the paper's simulated
    FAM controller enforces.
    """

    def __init__(self, config: FamConfig, name: str = "fam") -> None:
        self.config = config
        self.name = name
        self.banks = BankedResource(name, config.banks,
                                    config.interleave_bytes)
        self.window = OutstandingWindow(config.max_outstanding,
                                        name=f"{name}.outstanding")
        self._read_ns = config.read_ns
        self._write_ns = config.write_ns
        self.reads = 0
        self.writes = 0
        self.at_accesses = 0
        self.kind_counts: Dict[RequestKind, int] = {
            kind: 0 for kind in RequestKind}
        self.node_counts: Dict[int, int] = {}

    def access(self, addr: int, now: float, is_write: bool = False,
               kind: RequestKind = RequestKind.DATA,
               node_id: Optional[int] = None) -> float:
        """Issue one 64 B access; returns completion time.

        Also maintains the AT/non-AT census of requests *observed at
        the FAM* — the quantity plotted in Figures 4 and 11.
        """
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.kind_counts[kind] += 1
        if kind.is_translation:
            self.at_accesses += 1
        if node_id is not None:
            self.node_counts[node_id] = self.node_counts.get(node_id, 0) + 1
        issue = self.window.admit(now)
        service = self._write_ns if is_write else self._read_ns
        completion = self.banks.reserve(addr, issue, service)
        self.window.record(completion)
        return completion

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def at_fraction(self) -> float:
        """Fraction of requests at the FAM that are address translation
        (Figure 4 / Figure 11 y-axis)."""
        total = self.accesses
        return self.at_accesses / total if total else 0.0

    @property
    def stats(self) -> "_StatsView":
        """Stats-like read access (``stats.snapshot()``) for harness
        compatibility."""
        return _StatsView(self)

    def snapshot(self) -> Dict[str, float]:
        counters: Dict[str, float] = {
            "accesses": float(self.accesses),
            "reads": float(self.reads),
            "writes": float(self.writes),
            "at_accesses": float(self.at_accesses),
            "non_at_accesses": float(self.accesses - self.at_accesses),
        }
        for kind, count in self.kind_counts.items():
            counters[f"kind.{kind.value}"] = float(count)
        for node_id, count in self.node_counts.items():
            counters[f"node.{node_id}.accesses"] = float(count)
        return counters

    def reset(self) -> None:
        self.banks.reset()
        self.window.reset()
        self.reads = self.writes = self.at_accesses = 0
        self.kind_counts = {kind: 0 for kind in RequestKind}
        self.node_counts.clear()


class _StatsView:
    """Adapter exposing ``snapshot()``/``get()`` over device counters."""

    def __init__(self, device: NvmDevice) -> None:
        self._device = device

    def snapshot(self) -> Dict[str, float]:
        return self._device.snapshot()

    def get(self, key: str, default: float = 0.0) -> float:
        return self._device.snapshot().get(key, default)
