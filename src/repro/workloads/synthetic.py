"""Vectorized synthetic access-pattern generators.

Each benchmark profile is a *mixture* of primitive patterns; the
generator draws, per event, which pattern produces the address:

* ``sequential`` — a cursor advancing one block at a time (streaming
  kernels; excellent TLB/STU/ACM locality).
* ``strided`` — a cursor advancing ``stride_bytes`` per access
  (stencils and blocked array codes; few blocks touched per page, so
  translation traffic per data access is high).
* ``zipf`` — pages drawn from a Zipf(``alpha``) distribution over the
  footprint, uniform block within the page (graph/irregular codes;
  ``alpha`` is the reuse-skew knob that positions a benchmark between
  "hub-dominated, cache-friendly" and "uniform random, TLB-hostile").
* ``chase`` — uniform random page, always dependent (pointer chasing:
  the core cannot overlap these misses).
* ``hotcold`` — a small hot page set absorbing most accesses, the rest
  uniform over the footprint.

Everything is generated with seeded NumPy for determinism and speed,
then materialized to plain lists in one ``tolist`` pass per column
(the simulator's per-event loop is pure Python and consumes the
pre-decomposed columns of :meth:`repro.workloads.trace.Trace.decoded`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.workloads.trace import Trace

__all__ = ["PatternSpec", "generate_trace"]

#: Base of the synthetic heap in virtual address space.
_HEAP_BASE = 0x1000_0000
_PAGE = 4096
_BLOCK = 64
_BLOCKS_PER_PAGE = _PAGE // _BLOCK


@dataclass(frozen=True)
class PatternSpec:
    """One component of an access-pattern mixture.

    ``weight`` is the fraction of events drawn from this pattern;
    ``params`` are pattern-specific (``alpha`` for zipf, ``stride_bytes``
    for strided, ``hot_fraction`` / ``hot_pages`` for hotcold).
    """

    kind: str
    weight: float
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("sequential", "strided", "zipf", "chase",
                             "hotcold"):
            raise TraceError(f"unknown pattern kind {self.kind!r}")
        if self.weight <= 0:
            raise TraceError(f"pattern weight must be positive: {self}")


def _zipf_page_sampler(rng: np.random.Generator, n_pages: int,
                       alpha: float, size: int) -> np.ndarray:
    """Zipf-distributed page indices over ``[0, n_pages)``.

    A permutation decouples popularity rank from page adjacency —
    hot pages are scattered through the footprint, as malloc'd graph
    data would be.
    """
    ranks = np.arange(1, n_pages + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(size)
    pages_by_rank = np.searchsorted(cdf, draws)
    permutation = rng.permutation(n_pages)
    return permutation[pages_by_rank]


def generate_trace(name: str, n_events: int, footprint_pages: int,
                   patterns: Sequence[PatternSpec], gap_mean: float,
                   write_fraction: float, dependent_fraction: float,
                   seed: int = 0, reuse_fraction: float = 0.0,
                   reuse_window: int = 512,
                   reuse_granularity: str = "page") -> Trace:
    """Generate a deterministic synthetic trace.

    Parameters
    ----------
    n_events:
        Number of memory-instruction events.
    footprint_pages:
        Size of the touched virtual region in 4 KB pages.
    patterns:
        The mixture; weights are normalized internally.
    gap_mean:
        Mean non-memory instructions between memory events (geometric
        distribution) — together with miss rates this sets MPKI.
    write_fraction / dependent_fraction:
        Per-event probabilities (``chase`` events are always
        dependent regardless).
    reuse_fraction / reuse_window:
        Temporal-clustering post-pass: each event re-references the
        address of one of the previous ``reuse_window`` events with
        probability ``reuse_fraction``.  This is the knob that decides
        how effective capacity-limited translation structures (TLB,
        STU, ACM cache) are — real programs revisit recent pages far
        more than an i.i.d. popularity draw admits.
    reuse_granularity:
        ``"page"`` (default) revisits a recent *page* at a fresh
        block — temporal locality for the translation structures while
        the data caches still miss.  ``"block"`` revisits the exact
        recent *address*, so the reuse stream hits in the L1 data
        cache too — the regime where the batch tier's hit-run engine
        does all the work (exercised by the ``hotspot`` catalog
        preset).
    """
    if n_events <= 0:
        raise TraceError("trace needs at least one event")
    if footprint_pages <= 0:
        raise TraceError("footprint must be at least one page")
    if not patterns:
        raise TraceError("need at least one pattern")
    if gap_mean < 0:
        raise TraceError("gap mean cannot be negative")

    rng = np.random.default_rng(seed)
    weights = np.array([p.weight for p in patterns], dtype=np.float64)
    weights /= weights.sum()
    choice = rng.choice(len(patterns), size=n_events, p=weights)

    pages = np.zeros(n_events, dtype=np.int64)
    blocks = np.zeros(n_events, dtype=np.int64)
    forced_dependent = np.zeros(n_events, dtype=bool)

    for index, spec in enumerate(patterns):
        mask = choice == index
        count = int(mask.sum())
        if count == 0:
            continue
        if spec.kind == "sequential":
            # A block cursor that wraps around the footprint.
            start = int(rng.integers(0, footprint_pages * _BLOCKS_PER_PAGE))
            cursor = (start + np.arange(count, dtype=np.int64)) % (
                footprint_pages * _BLOCKS_PER_PAGE)
            pages[mask] = cursor // _BLOCKS_PER_PAGE
            blocks[mask] = cursor % _BLOCKS_PER_PAGE
        elif spec.kind == "strided":
            stride_blocks = max(1, int(spec.params.get("stride_bytes",
                                                       1024)) // _BLOCK)
            start = int(rng.integers(0, footprint_pages * _BLOCKS_PER_PAGE))
            cursor = (start + stride_blocks *
                      np.arange(count, dtype=np.int64)) % (
                footprint_pages * _BLOCKS_PER_PAGE)
            pages[mask] = cursor // _BLOCKS_PER_PAGE
            blocks[mask] = cursor % _BLOCKS_PER_PAGE
        elif spec.kind == "zipf":
            alpha = float(spec.params.get("alpha", 0.8))
            pages[mask] = _zipf_page_sampler(rng, footprint_pages, alpha,
                                             count)
            blocks[mask] = rng.integers(0, _BLOCKS_PER_PAGE, size=count)
        elif spec.kind == "chase":
            pages[mask] = rng.integers(0, footprint_pages, size=count)
            blocks[mask] = rng.integers(0, _BLOCKS_PER_PAGE, size=count)
            forced_dependent[mask] = True
        elif spec.kind == "hotcold":
            hot_fraction = float(spec.params.get("hot_fraction", 0.9))
            hot_pages = max(1, int(spec.params.get(
                "hot_pages", footprint_pages // 100)))
            hot_pages = min(hot_pages, footprint_pages)
            is_hot = rng.random(count) < hot_fraction
            # Hot pages are scattered, not the first N of the heap.
            hot_set = rng.permutation(footprint_pages)[:hot_pages]
            drawn = np.where(
                is_hot,
                hot_set[rng.integers(0, hot_pages, size=count)],
                rng.integers(0, footprint_pages, size=count))
            pages[mask] = drawn
            blocks[mask] = rng.integers(0, _BLOCKS_PER_PAGE, size=count)

    vaddrs = _HEAP_BASE + pages * _PAGE + blocks * _BLOCK

    if reuse_granularity not in ("page", "block"):
        raise TraceError(
            f"unknown reuse granularity {reuse_granularity!r} "
            f"(expected 'page' or 'block')")
    if reuse_fraction > 0.0 and n_events > 1:
        if not 0.0 <= reuse_fraction <= 1.0:
            raise TraceError("reuse fraction must be within [0, 1]")
        if reuse_window <= 0:
            raise TraceError("reuse window must be positive")
        reuse_mask = rng.random(n_events) < reuse_fraction
        reuse_mask[0] = False
        distances = rng.integers(1, reuse_window + 1, size=n_events)
        # Drawn unconditionally so the RNG stream (and therefore every
        # existing page-granular trace) is independent of granularity.
        fresh_blocks = rng.integers(0, _BLOCKS_PER_PAGE, size=n_events)
        # Page-granular reuse revisits a recent *page* at a fresh
        # block: block-granular reuse would be absorbed by the data
        # caches and never reach the translation structures, while
        # page-granular reuse gives the TLB/STU/ACM stream its
        # temporal locality while the cache hierarchy still misses.
        # Block-granular reuse revisits the exact address — the
        # L1-hit-dominated regime the batch tier is built for.
        # Sequential resolution so reuse chains land on final values.
        indices = np.flatnonzero(reuse_mask)
        if reuse_granularity == "block":
            for i in indices:
                j = i - distances[i]
                if j >= 0:
                    vaddrs[i] = vaddrs[j]
        else:
            for i in indices:
                j = i - distances[i]
                if j >= 0:
                    page_base = vaddrs[j] - (vaddrs[j] % _PAGE)
                    vaddrs[i] = page_base + fresh_blocks[i] * _BLOCK

    if gap_mean > 0:
        # Geometric gaps with the requested mean, shifted to allow 0.
        p = 1.0 / (gap_mean + 1.0)
        gaps = rng.geometric(p, size=n_events) - 1
    else:
        gaps = np.zeros(n_events, dtype=np.int64)

    writes = rng.random(n_events) < write_fraction
    dependents = (rng.random(n_events) < dependent_fraction) | \
        forced_dependent
    # Stores never stall the core on their result.
    dependents = dependents & ~writes

    # ``tolist`` converts whole arrays to plain Python ints/bools in C,
    # rather than round-tripping one NumPy scalar at a time.
    return Trace(name=name,
                 gaps=gaps.tolist(),
                 vaddrs=vaddrs.tolist(),
                 writes=writes.tolist(),
                 dependents=dependents.tolist())
