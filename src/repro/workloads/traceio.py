"""Trace persistence.

Traces are deterministic given (profile, seed), but saving them lets a
user pin down the exact access stream for debugging, diff two
generator versions, or feed externally captured traces (e.g. converted
PIN/DynamoRIO output) into the simulator.

Format: a compact text format, one event per line —
``gap vaddr flags`` with ``flags`` bit 0 = write, bit 1 = dependent —
preceded by a one-line header.  It gzips well and stays greppable.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import List, Union

from repro.errors import TraceError
from repro.workloads.trace import Trace

__all__ = ["save_trace", "load_trace"]

_MAGIC = "#deact-trace-v1"


def _open_write(path: str):
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "wb"))
    return open(path, "w")


def _open_read(path: str):
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path)


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (gzip if it ends in ``.gz``)."""
    with _open_write(path) as handle:
        handle.write(f"{_MAGIC} name={trace.name} events={len(trace)}\n")
        for gap, vaddr, write, dep in zip(trace.gaps, trace.vaddrs,
                                          trace.writes, trace.dependents):
            flags = (1 if write else 0) | (2 if dep else 0)
            handle.write(f"{gap} {vaddr:x} {flags}\n")


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises
    ------
    TraceError
        On a missing/garbled header or malformed event lines, with the
        offending line number.
    """
    if not os.path.exists(path):
        raise TraceError(f"trace file not found: {path}")
    gaps: List[int] = []
    vaddrs: List[int] = []
    writes: List[bool] = []
    dependents: List[bool] = []
    with _open_read(path) as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_MAGIC):
            raise TraceError(f"{path}: not a deact trace (bad header)")
        name = "loaded"
        for field in header.split():
            if field.startswith("name="):
                name = field[len("name="):]
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise TraceError(f"{path}:{line_no}: expected "
                                 f"'gap vaddr flags', got {line!r}")
            try:
                gap = int(parts[0])
                vaddr = int(parts[1], 16)
                flags = int(parts[2])
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
            if gap < 0 or vaddr < 0 or not 0 <= flags <= 3:
                raise TraceError(f"{path}:{line_no}: out-of-range field")
            gaps.append(gap)
            vaddrs.append(vaddr)
            writes.append(bool(flags & 1))
            dependents.append(bool(flags & 2))
    if not gaps:
        raise TraceError(f"{path}: empty trace")
    return Trace(name=name, gaps=gaps, vaddrs=vaddrs, writes=writes,
                 dependents=dependents)
