"""Table III: the benchmark catalog.

Each entry pairs the paper's published properties (suite, MPKI, and
where derivable from the text, the I-FAM slowdown) with the synthetic
locality profile that reproduces its translation behaviour:

* **footprint** — paper average is 309 MB per application; 20 % is
  served from local DRAM, 80 % from FAM (footnote 3).
* **pattern mixture** — positions the benchmark on the
  cache-friendly <-> TLB/STU-hostile axis.  Graph kernels with
  power-law reuse (``bc``) keep their hot pages inside the 1024-entry
  STU; near-uniform page accesses (``canl``, ``sssp``, ``ccsv``)
  thrash it — those are the paper's outliers.
* **gap_mean** — non-memory instructions between memory events,
  steering measured MPKI toward Table III's values.
* **dependent_fraction** — how much of the miss latency the core can
  hide (pointer chasing cannot be overlapped).

``lu`` appears in the paper's figures without a Table III row; its
profile is inferred from its behaviour (insensitive to indirection,
like ``mg``/``sp``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.workloads.synthetic import PatternSpec, generate_trace
from repro.workloads.trace import Trace

__all__ = ["BenchmarkProfile", "BENCHMARKS", "SUITE_GROUPS",
           "benchmark_names", "get_profile"]

_MB = 1024 * 1024
_PAGE = 4096


@dataclass(frozen=True)
class BenchmarkProfile:
    """One Table III benchmark plus its synthetic locality profile."""

    name: str
    suite: str
    paper_mpki: Optional[int]
    footprint_mb: int
    patterns: Tuple[PatternSpec, ...]
    gap_mean: float
    write_fraction: float
    dependent_fraction: float
    #: Temporal-clustering knobs (see
    #: :func:`repro.workloads.synthetic.generate_trace`): how often the
    #: workload revisits a recently touched address, how far back, and
    #: whether the revisit lands on the same page (fresh block) or the
    #: exact same block address.
    reuse_fraction: float = 0.5
    reuse_window: int = 1024
    reuse_granularity: str = "page"
    #: I-FAM slowdown wrt E-FAM stated or derivable from the paper's
    #: text/Figure 3 (None when the figure bar is unlabeled).
    paper_ifam_slowdown: Optional[float] = None
    description: str = ""

    @property
    def footprint_pages(self) -> int:
        return (self.footprint_mb * _MB) // _PAGE

    def build_trace(self, n_events: int, seed: int = 0,
                    footprint_scale: float = 1.0) -> Trace:
        """Materialize a deterministic trace for this benchmark.

        ``footprint_scale`` shrinks the touched region proportionally;
        the experiment harness uses it to trade trace length for warm
        reuse (the paper runs 100M-instruction windows we cannot afford
        per configuration — see EXPERIMENTS.md for the scaling note).
        """
        if footprint_scale <= 0:
            raise TraceError("footprint scale must be positive")
        pages = max(64, int(self.footprint_pages * footprint_scale))
        return generate_trace(
            name=self.name, n_events=n_events,
            footprint_pages=pages,
            patterns=self.patterns, gap_mean=self.gap_mean,
            write_fraction=self.write_fraction,
            dependent_fraction=self.dependent_fraction,
            seed=seed ^ _stable_hash(self.name),
            reuse_fraction=self.reuse_fraction,
            reuse_window=self.reuse_window,
            reuse_granularity=self.reuse_granularity)


def _stable_hash(text: str) -> int:
    """A seed component that does not depend on PYTHONHASHSEED."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) & 0x7FFFFFFF
    return value


def _zipf(weight: float, alpha: float) -> PatternSpec:
    return PatternSpec("zipf", weight, {"alpha": alpha})


def _seq(weight: float) -> PatternSpec:
    return PatternSpec("sequential", weight)


def _strided(weight: float, stride_bytes: int) -> PatternSpec:
    return PatternSpec("strided", weight, {"stride_bytes": stride_bytes})


def _chase(weight: float) -> PatternSpec:
    return PatternSpec("chase", weight)


def _hotcold(weight: float, hot_fraction: float,
             hot_pages: int) -> PatternSpec:
    return PatternSpec("hotcold", weight, {"hot_fraction": hot_fraction,
                                           "hot_pages": hot_pages})


BENCHMARKS: Dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in [
        # ----------------------------------------------------- SPEC 2006
        BenchmarkProfile(
            name="mcf", suite="SPEC 2006", paper_mpki=73,
            footprint_mb=280, gap_mean=5.0,
            patterns=(_zipf(0.65, 0.85), _chase(0.2), _seq(0.15)),
            write_fraction=0.25, dependent_fraction=0.5,
            paper_ifam_slowdown=2.56,
            reuse_fraction=0.82, reuse_window=3600,
            description="Pointer-heavy network simplex; moderate skew."),
        BenchmarkProfile(
            name="cactus", suite="SPEC 2006", paper_mpki=60,
            footprint_mb=360, gap_mean=7.0,
            patterns=(_strided(0.8, 1024), _zipf(0.2, 0.6)),
            write_fraction=0.3, dependent_fraction=0.5,
            paper_ifam_slowdown=11.6,
            reuse_fraction=0.4, reuse_window=512,
            description="Stencil streaming a huge grid: few accesses "
                        "per page, so translation dominates in I-FAM."),
        BenchmarkProfile(
            name="astar", suite="SPEC 2006", paper_mpki=9,
            footprint_mb=150, gap_mean=45.0,
            patterns=(_hotcold(0.8, 0.95, 2000), _zipf(0.2, 1.1)),
            write_fraction=0.2, dependent_fraction=0.5,
            reuse_fraction=0.96, reuse_window=1400,
            description="Path search over a mostly-resident graph."),
        # -------------------------------------------------------- PARSEC
        BenchmarkProfile(
            name="frqm", suite="PARSEC", paper_mpki=16,
            footprint_mb=200, gap_mean=28.0,
            patterns=(_zipf(0.85, 1.05), _seq(0.15)),
            write_fraction=0.3, dependent_fraction=0.4,
            reuse_fraction=0.96, reuse_window=1600,
            description="Freqmine: FP-tree mining with skewed reuse."),
        BenchmarkProfile(
            name="canl", suite="PARSEC", paper_mpki=57,
            footprint_mb=280, gap_mean=7.0,
            patterns=(_zipf(0.9, 0.5), _seq(0.1)),
            write_fraction=0.3, dependent_fraction=0.65,
            paper_ifam_slowdown=18.7,
            reuse_fraction=0.85, reuse_window=5000,
            description="Canneal: near-uniform random element swaps — "
                        "the paper's lowest STU hit rate (46.44%)."),
        # ----------------------------------------------------- Intel GAP
        BenchmarkProfile(
            name="bc", suite="Intel GAP", paper_mpki=113,
            footprint_mb=250, gap_mean=3.5,
            patterns=(_zipf(0.85, 1.3), _chase(0.15)),
            write_fraction=0.2, dependent_fraction=0.5,
            reuse_fraction=0.96, reuse_window=1100,
            description="Betweenness centrality: power-law hub reuse "
                        "keeps the STU effective; DeACT gains little."),
        BenchmarkProfile(
            name="cc", suite="Intel GAP", paper_mpki=56,
            footprint_mb=250, gap_mean=13.0,
            patterns=(_zipf(0.8, 1.0), _seq(0.2)),
            write_fraction=0.2, dependent_fraction=0.45,
            reuse_fraction=0.95, reuse_window=1500,
            description="Connected components (Afforest sampling)."),
        BenchmarkProfile(
            name="ccsv", suite="Intel GAP", paper_mpki=130,
            footprint_mb=300, gap_mean=4.5,
            patterns=(_zipf(0.8, 0.55), _chase(0.2)),
            write_fraction=0.25, dependent_fraction=0.65,
            paper_ifam_slowdown=9.1,
            reuse_fraction=0.86, reuse_window=4200,
            description="Connected components (Shiloach-Vishkin): "
                        "label propagation over nearly uniform pages."),
        BenchmarkProfile(
            name="sssp", suite="Intel GAP", paper_mpki=144,
            footprint_mb=320, gap_mean=4.0,
            patterns=(_zipf(0.7, 0.5), _chase(0.3)),
            write_fraction=0.25, dependent_fraction=0.7,
            paper_ifam_slowdown=20.6,
            reuse_fraction=0.84, reuse_window=4800,
            description="Single-source shortest paths: the paper's "
                        "worst case — uniform pages + dependent loads."),
        # ------------------------------------------------------- Mantevo
        BenchmarkProfile(
            name="pf", suite="Mantevo", paper_mpki=41,
            footprint_mb=180, gap_mean=16.0,
            patterns=(_strided(0.5, 4096), _zipf(0.5, 0.9)),
            write_fraction=0.3, dependent_fraction=0.4,
            reuse_fraction=0.9, reuse_window=2200,
            description="PathFinder: page-strided sweeps (one access "
                        "per page) mixed with skewed lookups."),
        # ----------------------------------------------------------- NAS
        BenchmarkProfile(
            name="dc", suite="NAS", paper_mpki=49,
            footprint_mb=260, gap_mean=13.0,
            patterns=(_zipf(0.75, 0.65), _strided(0.25, 2048)),
            write_fraction=0.35, dependent_fraction=0.55,
            reuse_fraction=0.88, reuse_window=3200,
            description="Data Cube: the NPB benchmark the paper keeps "
                        "for sensitivity studies (I-FAM-sensitive)."),
        BenchmarkProfile(
            name="lu", suite="NAS", paper_mpki=None,
            footprint_mb=200, gap_mean=6.0,
            patterns=(_seq(0.7), _zipf(0.3, 1.2)),
            write_fraction=0.35, dependent_fraction=0.3,
            reuse_fraction=0.97, reuse_window=900,
            description="LU factorization: blocked sweeps, dense "
                        "reuse — insensitive to indirection."),
        BenchmarkProfile(
            name="mg", suite="NAS", paper_mpki=99,
            footprint_mb=220, gap_mean=8.0,
            patterns=(_seq(0.75), _strided(0.25, 128)),
            write_fraction=0.35, dependent_fraction=0.3,
            reuse_fraction=0.9, reuse_window=500,
            description="Multigrid: sequential grid sweeps."),
        BenchmarkProfile(
            name="sp", suite="NAS", paper_mpki=141,
            footprint_mb=230, gap_mean=5.0,
            patterns=(_seq(0.8), _strided(0.2, 256)),
            write_fraction=0.35, dependent_fraction=0.25,
            reuse_fraction=0.9, reuse_window=500,
            description="Scalar penta-diagonal solver: streaming."),
        # --------------------------------------------------- microkernel
        BenchmarkProfile(
            name="hotspot", suite="microkernel", paper_mpki=None,
            footprint_mb=2, gap_mean=4.0,
            patterns=(_hotcold(1.0, 1.0, 1),),
            write_fraction=0.2, dependent_fraction=0.1,
            reuse_fraction=0.35, reuse_window=96,
            reuse_granularity="block",
            description="L1-hit-dominated hot-set kernel (not from the "
                        "paper): every access lands in one hot page "
                        "(random blocks plus exact-block reuse, 20% "
                        "writes), so after ~64 compulsory misses every "
                        "event hits both L1 structures — the batch "
                        "tier's headline regime in catalog form."),
    ]
}

#: Figure x-axis order used throughout the paper, plus the repo's own
#: ``hotspot`` microkernel at the end (it has no paper counterpart and
#: no published bars, like ``lu``'s missing Table III row).
_FIGURE_ORDER = ["mcf", "cactus", "astar", "frqm", "canl", "bc", "cc",
                 "ccsv", "sssp", "pf", "dc", "lu", "mg", "sp",
                 "hotspot"]

#: Suite groupings used by the sensitivity figures (13-15), which plot
#: geomeans of SPEC / PARSEC / GAP plus pf and dc individually.
SUITE_GROUPS: Dict[str, List[str]] = {
    "SPEC": ["mcf", "cactus", "astar"],
    "PARSEC": ["frqm", "canl"],
    "GAP": ["bc", "cc", "ccsv", "sssp"],
    "pf": ["pf"],
    "dc": ["dc"],
}


def benchmark_names() -> List[str]:
    """All benchmarks in the paper's figure order."""
    return list(_FIGURE_ORDER)


def get_profile(name: str) -> BenchmarkProfile:
    """Fetch a profile by name.

    Raises
    ------
    TraceError
        For unknown names, listing the valid ones.
    """
    profile = BENCHMARKS.get(name)
    if profile is None:
        raise TraceError(
            f"unknown benchmark {name!r}; choose from "
            f"{', '.join(_FIGURE_ORDER)}")
    return profile
