"""Workload traces and the paper's benchmark catalog.

The paper traces SPEC 2006, PARSEC, GAP, Mantevo and NAS binaries in
SST; we substitute seeded synthetic generators whose locality knobs
(footprint, page-access skew, stride, pointer-chasing fraction)
reproduce each benchmark's *translation sensitivity* — the property all
the figures hinge on.

* :mod:`repro.workloads.trace` — the trace container and event type.
* :mod:`repro.workloads.synthetic` — vectorized pattern generators
  (sequential, strided, zipf, pointer-chase, hot/cold).
* :mod:`repro.workloads.catalog` — Table III: the 14 benchmarks with
  their published MPKI and our locality profiles.
"""

from repro.workloads.catalog import (
    BENCHMARKS,
    BenchmarkProfile,
    benchmark_names,
    get_profile,
)
from repro.workloads.synthetic import PatternSpec, generate_trace
from repro.workloads.trace import Trace, TraceEvent
from repro.workloads.traceio import load_trace, save_trace

__all__ = [
    "Trace",
    "TraceEvent",
    "PatternSpec",
    "generate_trace",
    "BenchmarkProfile",
    "BENCHMARKS",
    "benchmark_names",
    "get_profile",
    "save_trace",
    "load_trace",
]
