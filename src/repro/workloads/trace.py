"""Trace containers.

A trace is a sequence of memory-instruction events; each event carries
the number of non-memory instructions since the previous event (the
*gap*), the virtual address, the store flag, and whether the next
instructions depend on the access's result (a *dependent* load stalls
the core until its data returns; independent accesses only occupy an
outstanding-request slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Sequence

from repro.errors import TraceError

__all__ = ["TraceEvent", "Trace"]


class TraceEvent(NamedTuple):
    """One memory instruction in a trace."""

    gap: int
    vaddr: int
    is_write: bool
    dependent: bool


@dataclass
class Trace:
    """An in-memory trace with its provenance.

    Stored as parallel plain-Python lists: the hot simulation loop
    iterates tens of thousands of events, and attribute access on
    NumPy scalars is an order of magnitude slower than list items.
    """

    name: str
    gaps: List[int]
    vaddrs: List[int]
    writes: List[bool]
    dependents: List[bool]

    def __post_init__(self) -> None:
        n = len(self.gaps)
        if not (len(self.vaddrs) == len(self.writes)
                == len(self.dependents) == n):
            raise TraceError(f"trace {self.name!r}: ragged columns")

    def __len__(self) -> int:
        return len(self.gaps)

    def __iter__(self) -> Iterator[TraceEvent]:
        for gap, vaddr, write, dep in zip(self.gaps, self.vaddrs,
                                          self.writes, self.dependents):
            yield TraceEvent(gap, vaddr, write, dep)

    def __getitem__(self, index: int) -> TraceEvent:
        return TraceEvent(self.gaps[index], self.vaddrs[index],
                          self.writes[index], self.dependents[index])

    @property
    def instructions(self) -> int:
        """Total instructions the trace represents (memory events plus
        their gaps)."""
        return len(self.gaps) + sum(self.gaps)

    @property
    def memory_instruction_fraction(self) -> float:
        total = self.instructions
        return len(self.gaps) / total if total else 0.0

    def footprint_pages(self, page_bytes: int = 4096) -> int:
        """Distinct 4 KB pages the trace touches."""
        return len({addr // page_bytes for addr in self.vaddrs})

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace (used to shard a workload across nodes)."""
        return Trace(name=f"{self.name}[{start}:{stop}]",
                     gaps=self.gaps[start:stop],
                     vaddrs=self.vaddrs[start:stop],
                     writes=self.writes[start:stop],
                     dependents=self.dependents[start:stop])
