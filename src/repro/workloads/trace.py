"""Trace containers.

A trace is a sequence of memory-instruction events; each event carries
the number of non-memory instructions since the previous event (the
*gap*), the virtual address, the store flag, and whether the next
instructions depend on the access's result (a *dependent* load stalls
the core until its data returns; independent accesses only occupy an
outstanding-request slot).

:meth:`Trace.decoded` is the vectorized front-end of the simulation
hot path: it decomposes the address column into VPN / page-offset /
block-within-page **once** with NumPy (a handful of whole-array
shifts/masks) instead of re-deriving them per event in Python, then
materializes plain-int columns for the per-event loop (attribute
access on NumPy scalars is an order of magnitude slower than list
items, so the loop consumes lists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Sequence

import numpy as np

from repro.errors import TraceError
from repro.memo import BoundedMemo

__all__ = ["TraceEvent", "Trace", "DecodedTrace", "DecodedArrays"]

#: Per-trace cap on memoized decodings.  Each entry is one (page size,
#: block size, representation) triple; a run only ever uses one
#: geometry, so a small LRU bound keeps long many-geometry sweeps from
#: pinning every decode of every trace for the life of the process.
DECODED_MEMO_CAP = 8


class DecodedTrace(NamedTuple):
    """Hot-loop columns of a trace, pre-decomposed per event.

    ``vpns`` / ``offsets`` / ``blocks`` are the virtual page number,
    page offset, and block index *within* the page for each event —
    everything the per-event path needs so that translation and cache
    indexing reduce to shifts and ors (physical block =
    ``frame << log2(page/block) | block``).
    """

    gaps: List[int]
    vpns: List[int]
    offsets: List[int]
    blocks: List[int]
    writes: List[bool]
    dependents: List[bool]

    def __len__(self) -> int:
        return len(self.gaps)


class DecodedArrays(NamedTuple):
    """The same per-event columns as :class:`DecodedTrace`, kept as
    NumPy arrays for the batch execution tier (:mod:`repro.core.batch`),
    which classifies and charges whole hit-runs with array arithmetic
    instead of consuming one Python scalar per event."""

    gaps: np.ndarray        # int64
    vpns: np.ndarray        # int64
    offsets: np.ndarray     # int64
    blocks: np.ndarray      # int64
    writes: np.ndarray      # bool
    dependents: np.ndarray  # bool

    def __len__(self) -> int:
        return len(self.gaps)


class TraceEvent(NamedTuple):
    """One memory instruction in a trace."""

    gap: int
    vaddr: int
    is_write: bool
    dependent: bool


@dataclass
class Trace:
    """An in-memory trace with its provenance.

    Stored as parallel plain-Python lists: the hot simulation loop
    iterates tens of thousands of events, and attribute access on
    NumPy scalars is an order of magnitude slower than list items.
    """

    name: str
    gaps: List[int]
    vaddrs: List[int]
    writes: List[bool]
    dependents: List[bool]

    def __post_init__(self) -> None:
        n = len(self.gaps)
        if not (len(self.vaddrs) == len(self.writes)
                == len(self.dependents) == n):
            raise TraceError(f"trace {self.name!r}: ragged columns")

    def __len__(self) -> int:
        return len(self.gaps)

    def __iter__(self) -> Iterator[TraceEvent]:
        for gap, vaddr, write, dep in zip(self.gaps, self.vaddrs,
                                          self.writes, self.dependents):
            yield TraceEvent(gap, vaddr, write, dep)

    def __getitem__(self, index: int) -> TraceEvent:
        return TraceEvent(self.gaps[index], self.vaddrs[index],
                          self.writes[index], self.dependents[index])

    @property
    def instructions(self) -> int:
        """Total instructions the trace represents (memory events plus
        their gaps)."""
        return len(self.gaps) + sum(self.gaps)

    @property
    def memory_instruction_fraction(self) -> float:
        total = self.instructions
        return len(self.gaps) / total if total else 0.0

    def footprint_pages(self, page_bytes: int = 4096) -> int:
        """Distinct 4 KB pages the trace touches."""
        return len({addr // page_bytes for addr in self.vaddrs})

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace (used to shard a workload across nodes)."""
        return Trace(name=f"{self.name}[{start}:{stop}]",
                     gaps=self.gaps[start:stop],
                     vaddrs=self.vaddrs[start:stop],
                     writes=self.writes[start:stop],
                     dependents=self.dependents[start:stop])

    def _decode_memo(self) -> BoundedMemo:
        cache = self.__dict__.get("_decoded_cache")
        if cache is None:
            cache = BoundedMemo(DECODED_MEMO_CAP)
            self._decoded_cache = cache
        return cache

    @staticmethod
    def _check_geometry(page_bytes: int, block_bytes: int) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise TraceError(f"page size must be a power of two, "
                             f"got {page_bytes}")
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise TraceError(f"block size must be a power of two, "
                             f"got {block_bytes}")

    def decoded(self, page_bytes: int = 4096,
                block_bytes: int = 64) -> DecodedTrace:
        """Vectorized per-event decomposition (cached per geometry).

        One pass of whole-array NumPy arithmetic replaces the three
        per-event divisions/modulos the scalar loop used to perform;
        the result is memoized on the trace (LRU-bounded to
        ``DECODED_MEMO_CAP`` geometries), so repeated runs (sweeps
        re-using memoized traces) pay for decoding once.
        """
        self._check_geometry(page_bytes, block_bytes)
        cache = self._decode_memo()
        key = (page_bytes, block_bytes, "lists")
        decoded = cache.get(key)
        if decoded is None:
            arrays = self.decoded_arrays(page_bytes, block_bytes)
            decoded = DecodedTrace(
                gaps=self.gaps,
                vpns=arrays.vpns.tolist(),
                offsets=arrays.offsets.tolist(),
                blocks=arrays.blocks.tolist(),
                writes=self.writes,
                dependents=self.dependents)
            cache.put(key, decoded)
        return decoded

    def decoded_arrays(self, page_bytes: int = 4096,
                       block_bytes: int = 64) -> DecodedArrays:
        """The decoded columns as NumPy arrays (cached per geometry).

        This is the batch tier's view of the trace: the run scanner in
        :mod:`repro.core.batch` classifies hit-runs with whole-array
        comparisons over these columns.  Shares the bounded per-trace
        memo with :meth:`decoded` (the list view is derived from this
        one, so asking for both costs one decode).
        """
        self._check_geometry(page_bytes, block_bytes)
        cache = self._decode_memo()
        key = (page_bytes, block_bytes, "arrays")
        arrays = cache.get(key)
        if arrays is None:
            vaddrs = np.asarray(self.vaddrs, dtype=np.int64)
            page_shift = page_bytes.bit_length() - 1
            block_shift = block_bytes.bit_length() - 1
            offsets = vaddrs & (page_bytes - 1)
            arrays = DecodedArrays(
                gaps=np.asarray(self.gaps, dtype=np.int64),
                vpns=vaddrs >> page_shift,
                offsets=offsets,
                blocks=offsets >> block_shift,
                writes=np.asarray(self.writes, dtype=bool),
                dependents=np.asarray(self.dependents, dtype=bool))
            cache.put(key, arrays)
        return arrays
