"""Tests for the compute node model."""

import pytest

from repro.broker.broker import MemoryBroker
from repro.config.presets import small_config
from repro.config.system import PAGE_BYTES
from repro.core.architectures import make_architecture
from repro.core.node import Node
from repro.core.system import FamSystem
from repro.fabric.network import FabricNetwork
from repro.mem.device import NvmDevice
from repro.mem.request import RequestKind
from repro.workloads.trace import Trace, TraceEvent


def make_node(architecture="e-fam", nodes=1, local_fraction=0.2):
    from dataclasses import replace
    config = small_config(nodes=nodes)
    config = config.replace(
        allocation=replace(config.allocation,
                           local_fraction=local_fraction))
    system = FamSystem(config, architecture, seed=42)
    return system.nodes[0], system


class TestDemandPaging:
    def test_first_touch_maps_page(self):
        node, _system = make_node()
        node.access(0x5000_0000, False, 0.0)
        vpn = 0x5000_0000 // PAGE_BYTES
        assert node.page_table.lookup(vpn) is not None
        assert node.stats.get("page_faults") == 1

    def test_second_touch_no_fault(self):
        node, _system = make_node()
        node.access(0x5000_0000, False, 0.0)
        node.access(0x5000_0040, False, 0.0)
        assert node.stats.get("page_faults") == 1

    def test_placement_split(self):
        """With local_fraction=1.0 every frame is local DRAM."""
        node, _system = make_node(local_fraction=1.0)
        for page in range(20):
            node.access(0x5000_0000 + page * PAGE_BYTES, False, 0.0)
        assert node.stats.get("frames.fam") == 0
        assert node.stats.get("frames.local") > 0

    def test_zero_local_fraction_goes_to_fam(self):
        node, _system = make_node(local_fraction=0.0)
        for page in range(20):
            node.access(0x5000_0000 + page * PAGE_BYTES, False, 0.0)
        assert node.stats.get("frames.local") == 0
        assert node.stats.get("frames.fam") >= 20  # data + PT pages

    def test_fam_zone_pages_broker_backed(self):
        node, system = make_node(local_fraction=0.0)
        node.access(0x5000_0000, False, 0.0)
        vpn = 0x5000_0000 // PAGE_BYTES
        frame = node.page_table.lookup(vpn).frame
        node_page = frame  # frame number == node page number
        assert system.broker.translate(0, node_page) is not None


class TestAddressMap:
    def test_fam_zone_starts_after_local(self):
        node, _system = make_node()
        assert node.fam_zone_base == node.config.local_memory.size_bytes
        assert node.in_fam_zone(node.fam_zone_base)
        assert not node.in_fam_zone(node.fam_zone_base - 1)

    def test_deact_reserves_translation_cache_region(self):
        node, _system = make_node("deact-n")
        tcache_bytes = node.config.translation_cache.size_bytes
        expected_base = node.config.local_memory.size_bytes - tcache_bytes
        assert node.fam_translator.region_base == expected_base

    def test_efam_has_no_translator(self):
        node, _system = make_node("e-fam")
        assert node.fam_translator is None
        assert node.stu is None

    def test_ifam_has_stu_but_no_translator(self):
        node, _system = make_node("i-fam")
        assert node.stu is not None
        assert node.fam_translator is None


class TestAccessTiming:
    def test_cache_hit_is_fast(self):
        node, _system = make_node(local_fraction=1.0)
        node.access(0x5000_0000, False, 0.0)
        completion, level = node.access(0x5000_0000, False, 1000.0)
        assert level >= 1
        assert completion - 1000.0 < 30.0

    def test_local_miss_hits_dram(self):
        node, _system = make_node(local_fraction=1.0)
        before = node.dram.accesses
        node.access(0x5000_0000, False, 0.0)
        assert node.dram.accesses > before

    def test_fam_zone_miss_reaches_fam(self):
        node, system = make_node(local_fraction=0.0)
        node.access(0x5000_0000, False, 0.0)
        assert system.fam.accesses > 0

    def test_fam_access_includes_fabric_latency(self):
        node, _system = make_node("e-fam", local_fraction=0.0)
        completion, level = node.access(0x5000_0000, False, 0.0)
        assert level == 0
        assert completion >= 2 * 500.0  # round trip at least

    def test_walk_steps_charged_through_caches(self):
        node, _system = make_node(local_fraction=1.0)
        node.access(0x5000_0000, False, 0.0)
        # A TLB-missing access to a fresh page in the same PMD region:
        # the walk's PTE read goes through the hierarchy.
        llc_before = node.caches.llc.accesses
        node.access(0x5000_0000 + PAGE_BYTES, False, 10_000.0)
        assert node.caches.llc.accesses >= llc_before


class TestCoreStepping:
    def test_gap_advances_core_time(self):
        node, _system = make_node(local_fraction=1.0)
        node.step(TraceEvent(80, 0x5000_0000, False, False))
        # 80 instructions at 8 slots/cycle, 0.5ns cycle = 5ns, plus
        # the access.
        assert node.core_time_ns >= 5.0
        assert node.instructions == 81

    def test_dependent_load_stalls_core(self):
        node_dep, _ = make_node("e-fam", local_fraction=0.0)
        node_ind, _ = make_node("e-fam", local_fraction=0.0)
        node_dep.step(TraceEvent(0, 0x5000_0000, False, True))
        node_ind.step(TraceEvent(0, 0x5000_0000, False, False))
        assert node_dep.core_time_ns > node_ind.core_time_ns

    def test_independent_misses_overlap(self):
        node, _system = make_node("e-fam", local_fraction=0.0)
        for page in range(8):
            node.step(TraceEvent(0, 0x5000_0000 + page * PAGE_BYTES,
                                 False, False))
        # Core time stays small while 8 misses are in flight.
        assert len(node.window) > 1

    def test_drain_waits_for_outstanding(self):
        node, _system = make_node("e-fam", local_fraction=0.0)
        node.step(TraceEvent(0, 0x5000_0000, False, False))
        before = node.core_time_ns
        after = node.drain()
        assert after >= before
        assert after >= node.window.latest_completion()

    def test_metrics_snapshot(self):
        node, _system = make_node("e-fam", local_fraction=0.0)
        for page in range(4):
            node.step(TraceEvent(2, 0x5000_0000 + page * PAGE_BYTES,
                                 False, False))
        node.drain()
        metrics = node.metrics()
        assert metrics.instructions == node.instructions
        assert metrics.memory_accesses == 4
        assert metrics.cycles > 0
        assert 0 < metrics.ipc
