"""Tests for sweep sharding: partitioning, manifests, merge, validate.

Most tests here fabricate cache entries from the spec's own keys
instead of running simulations — partitioning, fingerprinting, and
the merge/validate pipeline are pure bookkeeping over keys and
payloads.  The end-to-end shards-vs-unsharded equivalence (with real
simulations) lives in ``tests/test_determinism.py``.
"""

import json
import os

import pytest

from repro.errors import CacheError, CacheMergeConflict, ConfigError
from repro.experiments.cachefile import load_cache, merge_into_cache
from repro.experiments.runner import RunSettings, fingerprint_keys, job_key
from repro.experiments.shardfile import (
    ShardManifest,
    build_manifest,
    canonical_cache_text,
    discover_manifests,
    discover_shards,
    load_manifest,
    manifest_path,
    merge_shards,
    shard_cache_path,
    spec_fingerprint,
    validate_cache,
    write_manifest,
)
from repro.experiments.sweep import SweepSpec, parse_shard

FAST = RunSettings(n_events=1500, footprint_scale=0.01, seed=3)


def _spec() -> SweepSpec:
    return SweepSpec.build(benchmarks=["mcf", "canl"],
                           architectures=["e-fam", "i-fam"],
                           axes={"stu-entries": [256, 512]})


def _fake_entries(spec: SweepSpec, settings: RunSettings) -> dict:
    """key -> fake payload for every cell (no simulation)."""
    return {job_key(job): {"cell": list(cell)}
            for cell, job in spec.jobs(settings)}


class TestShardPartition:
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_disjoint_and_exhaustive(self, count):
        spec = _spec()
        cells = spec.jobs(FAST)
        union = []
        for index in range(1, count + 1):
            union.extend(spec.shard(index, count, FAST))
        assert sorted(c for c, _ in union) == sorted(c for c, _ in cells)
        assert len(union) == len(cells)  # disjoint: no double counting

    def test_stable_across_calls(self):
        spec = _spec()
        first = [c for c, _ in spec.shard(2, 3, FAST)]
        second = [c for c, _ in spec.shard(2, 3, FAST)]
        assert first == second

    def test_stride_spreads_spec_order(self):
        spec = _spec()
        cells = [c for c, _ in spec.jobs(FAST)]
        assert [c for c, _ in spec.shard(1, 2, FAST)] == cells[0::2]
        assert [c for c, _ in spec.shard(2, 2, FAST)] == cells[1::2]

    def test_shard_of_one_is_everything(self):
        spec = _spec()
        assert spec.shard(1, 1, FAST) == spec.jobs(FAST)

    @pytest.mark.parametrize("index,count", [(0, 2), (3, 2), (-1, 2)])
    def test_bad_index_rejected(self, index, count):
        with pytest.raises(ConfigError, match="shard index"):
            _spec().shard(index, count, FAST)

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigError, match="shard count"):
            _spec().shard(1, 0, FAST)


class TestParseShard:
    def test_parses_index_and_count(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard("1/1") == (1, 1)

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/", "/2", "1/2/3"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ConfigError, match="--shard"):
            parse_shard(text)

    @pytest.mark.parametrize("text", ["0/2", "3/2", "1/0"])
    def test_out_of_range_rejected(self, text):
        with pytest.raises(ConfigError, match="--shard"):
            parse_shard(text)


class TestPaths:
    def test_shard_cache_path(self):
        assert shard_cache_path("results.json", 1, 2) == \
            "results.shard-1-of-2.json"
        assert shard_cache_path("/a/b/r.json", 3, 8) == \
            "/a/b/r.shard-3-of-8.json"

    def test_shard_cache_path_without_extension(self):
        assert shard_cache_path("results", 1, 2) == \
            "results.shard-1-of-2.json"

    def test_manifest_path(self):
        assert manifest_path("r.shard-1-of-2.json") == \
            "r.shard-1-of-2.manifest.json"

    def test_discover_shards_skips_manifests(self, tmp_path):
        base = str(tmp_path / "r.json")
        for index in (1, 2):
            path = shard_cache_path(base, index, 2)
            with open(path, "w") as handle:
                json.dump({}, handle)
            with open(manifest_path(path), "w") as handle:
                json.dump({}, handle)
        assert discover_shards(base) == [
            shard_cache_path(base, 1, 2), shard_cache_path(base, 2, 2)]

    def test_discover_shards_empty_when_none(self, tmp_path):
        assert discover_shards(str(tmp_path / "r.json")) == []

    def test_discover_shards_orders_numerically(self, tmp_path):
        # Lexicographic order would visit shard 10 before shard 2,
        # breaking first-seen-wins precedence in forced merges.
        base = str(tmp_path / "r.json")
        for index in (10, 2, 1, 11):
            with open(shard_cache_path(base, index, 12), "w") as handle:
                json.dump({}, handle)
        assert discover_shards(base) == [
            shard_cache_path(base, index, 12) for index in (1, 2, 10, 11)]


class TestFingerprint:
    def test_order_and_duplicate_independent(self):
        assert fingerprint_keys(["b", "a", "a"]) == \
            fingerprint_keys(["a", "b"])

    def test_spec_fingerprint_stable(self):
        assert spec_fingerprint(_spec(), FAST) == \
            spec_fingerprint(_spec(), FAST)

    def test_spec_fingerprint_tracks_spec_and_settings(self):
        base = spec_fingerprint(_spec(), FAST)
        narrower = SweepSpec.build(benchmarks=["mcf"],
                                   architectures=["e-fam", "i-fam"],
                                   axes={"stu-entries": [256, 512]})
        assert spec_fingerprint(narrower, FAST) != base
        rescaled = RunSettings(n_events=FAST.n_events,
                               footprint_scale=FAST.footprint_scale,
                               seed=FAST.seed + 1)
        assert spec_fingerprint(_spec(), rescaled) != base


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(_spec(), FAST, 2, 3)
        path = str(tmp_path / "r.shard-2-of-3.manifest.json")
        write_manifest(path, manifest)
        loaded = load_manifest(path)
        assert loaded == manifest
        assert isinstance(loaded, ShardManifest)

    def test_covers_exactly_the_shard_keys(self):
        spec = _spec()
        manifest = build_manifest(spec, FAST, 1, 2)
        expected = sorted({job_key(job)
                           for _c, job in spec.shard(1, 2, FAST)})
        assert list(manifest.cell_keys) == expected
        assert manifest.total_cells == len(spec.jobs(FAST))
        assert manifest.fingerprint == spec_fingerprint(spec, FAST)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        with pytest.raises(CacheError, match="unreadable shard manifest"):
            load_manifest(str(path))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(CacheError, match="schema"):
            load_manifest(str(path))

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": 1, "fingerprint": "x"}))
        with pytest.raises(CacheError, match="required"):
            load_manifest(str(path))

    def test_provenance_shared_with_bench_trajectory(self, tmp_path):
        # Manifests and bench-trajectory entries draw provenance from
        # the same collector: the manifest's host fields must round-
        # trip and agree with what a trajectory entry would record.
        from repro.experiments.provenance import collect_provenance

        manifest = build_manifest(_spec(), FAST, 1, 2)
        path = str(tmp_path / "r.shard-1-of-2.manifest.json")
        write_manifest(path, manifest)
        loaded = load_manifest(path)
        provenance = collect_provenance()
        assert loaded.hostname == provenance["hostname"]
        assert loaded.pid == provenance["pid"]
        assert loaded.created_unix <= provenance["created_unix"]


class TestMergeShards:
    def _write_shards(self, base, spec, settings, count=2,
                      with_manifests=True):
        entries = _fake_entries(spec, settings)
        paths = []
        for index in range(1, count + 1):
            covered = {job_key(job): entries[job_key(job)]
                       for _c, job in spec.shard(index, count, settings)}
            path = shard_cache_path(base, index, count)
            merge_into_cache(path, covered)
            if with_manifests:
                write_manifest(manifest_path(path),
                               build_manifest(spec, settings, index, count))
            paths.append(path)
        return entries, paths

    def test_merges_all_shards(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        entries, _paths = self._write_shards(base, spec, FAST)
        merged, manifests, paths = merge_shards(base)
        assert merged == entries
        assert load_cache(base) == entries
        assert len(manifests) == 2

    def test_explicit_shard_list(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        entries, paths = self._write_shards(base, spec, FAST)
        merged, _manifests, used = merge_shards(base, paths)
        assert merged == entries
        assert used == paths

    def test_incomplete_shard_set_rejected(self, tmp_path, caplog):
        # One of two shards present: strict merge must refuse rather
        # than exit 0 with half the sweep silently missing.
        base = str(tmp_path / "r.json")
        spec = _spec()
        entries, paths = self._write_shards(base, spec, FAST)
        os.unlink(paths[1])
        os.unlink(manifest_path(paths[1]))
        with pytest.raises(CacheError, match="missing shard"):
            merge_shards(base)
        with caplog.at_level("WARNING"):
            merged, _manifests, _paths = merge_shards(base, strict=False)
        assert set(merged) < set(entries)
        assert "incomplete" in caplog.text

    def test_mixed_shard_counts_rejected(self, tmp_path):
        # Stale files from a previous partitioning (1-of-2 next to
        # 1-of-3) are inconsistent even though fingerprints agree.
        base = str(tmp_path / "r.json")
        spec = _spec()
        entries = _fake_entries(spec, FAST)
        for index, count in ((1, 2), (2, 2), (1, 3)):
            covered = {job_key(job): entries[job_key(job)]
                       for _c, job in spec.shard(index, count, FAST)}
            path = shard_cache_path(base, index, count)
            merge_into_cache(path, covered)
            write_manifest(manifest_path(path),
                           build_manifest(spec, FAST, index, count))
        with pytest.raises(CacheError, match="partitioned differently"):
            merge_shards(base)

    def test_no_shards_is_an_error(self, tmp_path):
        with pytest.raises(CacheError, match="no shard caches"):
            merge_shards(str(tmp_path / "r.json"))

    def test_zero_cell_shard_with_manifest_is_accepted(self, tmp_path):
        # More shards than cells: the high-index shards legitimately
        # cover zero cells.  Their manifests claim no keys, so strict
        # merge must accept the empty caches and see a complete set.
        base = str(tmp_path / "r.json")
        spec = SweepSpec.build(benchmarks=["mcf"],
                               architectures=["e-fam", "i-fam"])
        entries = _fake_entries(spec, FAST)
        for index in (1, 2, 3):
            covered = {job_key(job): entries[job_key(job)]
                       for _c, job in spec.shard(index, 3, FAST)}
            merge_into_cache(shard_cache_path(base, index, 3), covered)
            write_manifest(manifest_path(shard_cache_path(base, index, 3)),
                           build_manifest(spec, FAST, index, 3))
        assert not load_cache(shard_cache_path(base, 3, 3))  # zero cells
        merged, manifests, _paths = merge_shards(base)
        assert merged == entries
        assert len(manifests) == 3

    def test_zero_cell_shard_engine_round_trip(self, tmp_path):
        # End to end: running a stride past the cell count still
        # leaves a (empty) shard cache + manifest, so merge/validate
        # of the full set succeeds.
        from repro.experiments.sweep import SweepEngine

        base = str(tmp_path / "r.json")
        spec = SweepSpec.build(benchmarks=["mcf"],
                               architectures=["e-fam"])  # one cell
        for index in (1, 2):
            path = shard_cache_path(base, index, 2)
            results = SweepEngine(FAST, cache_path=path, jobs=1).run(
                spec, shard=(index, 2))
            assert os.path.exists(path)
            assert os.path.exists(manifest_path(path))
            assert len(results) == (1 if index == 1 else 0)
        merged, _manifests, _paths = merge_shards(base)
        assert len(merged) == 1
        report = validate_cache(base, spec, FAST)
        assert report.ok, report.render()

    def _write_conflicting_shards(self, base, spec, settings):
        """Two manifest-backed shards that disagree on one key: the
        first shard-2 key also appears in shard 1's cache with a
        doctored payload (manifests stay satisfied — they only claim
        their own shard's keys)."""
        entries = _fake_entries(spec, settings)
        clash_key = job_key(spec.shard(2, 2, settings)[0][1])
        shard1 = {job_key(job): entries[job_key(job)]
                  for _c, job in spec.shard(1, 2, settings)}
        shard1[clash_key] = {"doctored": True}
        shard2 = {job_key(job): entries[job_key(job)]
                  for _c, job in spec.shard(2, 2, settings)}
        paths = []
        for index, covered in ((1, shard1), (2, shard2)):
            path = shard_cache_path(base, index, 2)
            merge_into_cache(path, covered)
            write_manifest(manifest_path(path),
                           build_manifest(spec, settings, index, 2))
            paths.append(path)
        return clash_key, paths

    def test_cross_shard_conflict_rejected(self, tmp_path):
        base = str(tmp_path / "r.json")
        clash_key, paths = self._write_conflicting_shards(
            base, _spec(), FAST)
        with pytest.raises(CacheMergeConflict) as excinfo:
            merge_shards(base)
        assert "different payloads" in str(excinfo.value)
        assert clash_key in excinfo.value.keys
        # The error names the two disagreeing shard files.
        assert paths[0] in str(excinfo.value)
        assert paths[1] in str(excinfo.value)
        assert not os.path.exists(base)  # nothing written

    def test_cross_shard_conflict_forced_keeps_first(self, tmp_path, caplog):
        base = str(tmp_path / "r.json")
        clash_key, _paths = self._write_conflicting_shards(
            base, _spec(), FAST)
        with caplog.at_level("WARNING"):
            merged, _manifests, _paths = merge_shards(base, strict=False)
        assert merged[clash_key] == {"doctored": True}  # first seen wins
        assert "different payloads" in caplog.text

    def test_forced_merge_keeps_existing_canonical_entries(
            self, tmp_path, caplog):
        # --force precedence must be first-wins against the canonical
        # cache too: what the disk already held predates the shards.
        base = str(tmp_path / "r.json")
        merge_into_cache(base, {"k": {"v": "existing"}})
        merge_into_cache(shard_cache_path(base, 1, 1),
                         {"k": {"v": "incoming"}})
        with caplog.at_level("WARNING"):
            merged, _manifests, _paths = merge_shards(base, strict=False)
        assert merged["k"] == {"v": "existing"}
        assert "keeping" in caplog.text

    def test_missing_manifest_rejected_under_strict(self, tmp_path, caplog):
        base = str(tmp_path / "r.json")
        merge_into_cache(shard_cache_path(base, 1, 1), {"k": {"v": 1}})
        with pytest.raises(CacheError, match="no manifest"):
            merge_shards(base)
        with caplog.at_level("WARNING"):
            merged, _manifests, _paths = merge_shards(base, strict=False)
        assert merged == {"k": {"v": 1}}
        assert "no manifest" in caplog.text

    def test_telemetry_difference_is_not_a_conflict(self, tmp_path, caplog):
        base = str(tmp_path / "r.json")
        payload = {"architecture": "e-fam", "nodes": []}
        merge_into_cache(shard_cache_path(base, 1, 2),
                         {"k": dict(payload, telemetry={"wall_s": 1.0})})
        merge_into_cache(shard_cache_path(base, 2, 2),
                         {"k": dict(payload, telemetry={"wall_s": 9.0})})
        with caplog.at_level("WARNING"):
            merged, _manifests, _paths = merge_shards(base, strict=False)
        assert merged["k"]["architecture"] == "e-fam"
        assert "different payloads" not in caplog.text

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        other = SweepSpec.build(benchmarks=["mcf"],
                                architectures=["e-fam"])
        entries = _fake_entries(spec, FAST)
        path1 = shard_cache_path(base, 1, 2)
        merge_into_cache(path1, entries)
        write_manifest(manifest_path(path1),
                       build_manifest(spec, FAST, 1, 2))
        path2 = shard_cache_path(base, 2, 2)
        merge_into_cache(path2, _fake_entries(other, FAST))
        write_manifest(manifest_path(path2),
                       build_manifest(other, FAST, 2, 2))
        with pytest.raises(CacheMergeConflict, match="fingerprint"):
            merge_shards(base)

    def test_fingerprint_mismatch_forced_warns(self, tmp_path, caplog):
        base = str(tmp_path / "r.json")
        spec = _spec()
        other = SweepSpec.build(benchmarks=["mcf"],
                                architectures=["e-fam"])
        path1 = shard_cache_path(base, 1, 2)
        merge_into_cache(path1, _fake_entries(spec, FAST))
        write_manifest(manifest_path(path1),
                       build_manifest(spec, FAST, 1, 2))
        path2 = shard_cache_path(base, 2, 2)
        merge_into_cache(path2, _fake_entries(other, FAST))
        write_manifest(manifest_path(path2),
                       build_manifest(other, FAST, 2, 2))
        with caplog.at_level("WARNING"):
            merged, _manifests, _paths = merge_shards(base, strict=False)
        assert "fingerprint" in caplog.text
        assert merged  # merge still happened under --force

    def test_unreadable_manifest_forced_is_skipped(self, tmp_path, caplog):
        base = str(tmp_path / "r.json")
        path = shard_cache_path(base, 1, 1)
        merge_into_cache(path, {"k": {"v": 1}})
        with open(manifest_path(path), "w") as handle:
            handle.write("{truncated")
        with pytest.raises(CacheError, match="unreadable shard manifest"):
            merge_shards(base)
        with caplog.at_level("WARNING"):
            merged, manifests, _paths = merge_shards(base, strict=False)
        assert merged == {"k": {"v": 1}}
        assert manifests == {}
        assert "ignoring unreadable shard manifest" in caplog.text

    def test_incomplete_shard_rejected(self, tmp_path):
        # Manifest claims keys the shard cache does not hold: the
        # shard run died between cache write and manifest write.
        base = str(tmp_path / "r.json")
        spec = _spec()
        path = shard_cache_path(base, 1, 2)
        merge_into_cache(path, {"unrelated": {"v": 1}})
        write_manifest(manifest_path(path),
                       build_manifest(spec, FAST, 1, 2))
        with pytest.raises(CacheError, match="manifest claims"):
            merge_shards(base)


class TestValidateCache:
    def test_complete_cache_is_ok(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        merge_into_cache(base, _fake_entries(spec, FAST))
        report = validate_cache(base, spec, FAST)
        assert report.ok
        assert report.missing == ()
        assert report.orphan_keys == ()
        assert "OK" in report.render()

    def test_missing_cell_fails(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        entries = _fake_entries(spec, FAST)
        dropped_key = sorted(entries)[0]
        del entries[dropped_key]
        merge_into_cache(base, entries)
        report = validate_cache(base, spec, FAST)
        assert not report.ok
        assert [key for _cell, key in report.missing] == [dropped_key]
        assert report.present_cells == report.expected_cells - 1
        assert "missing" in report.render()
        assert "FAIL" in report.render()

    def test_orphan_keys_reported_but_not_fatal(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        entries = _fake_entries(spec, FAST)
        entries["('stale', 'key')"] = {"v": 1}
        merge_into_cache(base, entries)
        report = validate_cache(base, spec, FAST)
        assert report.ok  # orphans alone do not fail (shared caches)
        assert report.orphan_keys == ("('stale', 'key')",)
        # ... unless strict, where verdict and pass/fail must agree.
        assert not report.passes(strict=True)
        assert "OK" in report.render()
        assert "FAIL" in report.render(strict=True)
        assert "fatal under --strict" in report.render(strict=True)

    def test_manifest_fingerprint_mismatch_fails(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        other = SweepSpec.build(benchmarks=["mcf"],
                                architectures=["e-fam"])
        merge_into_cache(base, _fake_entries(spec, FAST))
        stray = str(tmp_path / "m.json")
        write_manifest(stray, build_manifest(other, FAST, 1, 1))
        report = validate_cache(base, spec, FAST, manifest_paths=[stray])
        assert not report.fingerprint_ok
        assert not report.ok
        assert "MISMATCH" in report.render()

    def test_discovers_sibling_manifests(self, tmp_path):
        base = str(tmp_path / "r.json")
        spec = _spec()
        merge_into_cache(base, _fake_entries(spec, FAST))
        shard = shard_cache_path(base, 1, 2)
        merge_into_cache(shard, {})
        write_manifest(manifest_path(shard),
                       build_manifest(spec, FAST, 1, 2))
        report = validate_cache(base, spec, FAST)
        assert manifest_path(shard) in report.manifest_fingerprints
        assert report.fingerprint_ok
        assert discover_manifests(base) == [manifest_path(shard)]


class TestCanonicalText:
    def test_ignores_telemetry_and_key_order(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        merge_into_cache(a, {"k1": {"v": 1, "telemetry": {"wall_s": 1.0}},
                             "k2": {"v": 2}})
        merge_into_cache(b, {"k2": {"v": 2}})
        merge_into_cache(b, {"k1": {"v": 1, "telemetry": {"wall_s": 5.0}}})
        assert canonical_cache_text(a) == canonical_cache_text(b)

    def test_detects_outcome_difference(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        merge_into_cache(a, {"k1": {"v": 1}})
        merge_into_cache(b, {"k1": {"v": 2}})
        assert canonical_cache_text(a) != canonical_cache_text(b)
