"""Tests for the ``deact check`` static analyzer (:mod:`repro.analysis`).

Layout mirrors the checker's contract surface:

* per-rule positive/negative fixtures under ``tests/analysis_fixtures/``
  (``bad/`` must fire, ``good/`` must stay silent — both directions
  are regressions);
* the engine's suppression machinery (inline allows, baseline
  round-trip);
* the CLI's exit-code contract (0 clean / 1 findings / 2 internal
  error) and the ``--json`` report schema;
* the repo's own tree staying clean — the gate CI enforces.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    all_rules,
    get_rule,
    load_baseline,
    run_check,
    scan_project,
    write_baseline,
)
from repro.cli import main
from repro.core.hotpath import hot_path, is_hot_path
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def check_fixture(rule_ids, fixture, variant):
    root = FIXTURES / fixture / variant / "repro"
    return run_check(root=root, rules=[get_rule(r) for r in rule_ids])


def fired(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


# ----------------------------------------------------------------------
# Registry and decorator
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_documented_rules_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert {"DET001", "HOT001", "PAR001", "PKL001", "CFG001",
                "DEF001", "EXC001", "ROB001"} <= ids

    def test_rules_carry_metadata(self):
        for rule in all_rules():
            assert rule.title, rule.id
            assert rule.hint, rule.id
            assert rule.severity in ("error", "warning")

    def test_get_rule_unknown_id(self):
        with pytest.raises(KeyError, match="NOPE999"):
            get_rule("NOPE999")


class TestHotPathDecorator:
    def test_marks_without_wrapping(self):
        def probe(x):
            return x

        marked = hot_path(probe)
        assert marked is probe
        assert is_hot_path(probe)

    def test_unmarked(self):
        assert not is_hot_path(len)
        assert not is_hot_path(None)


# ----------------------------------------------------------------------
# Per-rule fixtures
# ----------------------------------------------------------------------
class TestDet001:
    def test_bad_tree_fires_each_source(self):
        report = check_fixture(["DET001"], "det001", "bad")
        messages = " | ".join(f.message for f in fired(report, "DET001"))
        assert "time.time()" in messages
        assert "os.urandom()" in messages
        assert "random.random()" in messages
        assert "random.Random() without a seed" in messages
        assert "sort_keys=True" in messages
        assert "without sorted()" in messages
        assert len(fired(report, "DET001")) == 6

    def test_good_tree_is_silent(self):
        report = check_fixture(["DET001"], "det001", "good")
        assert report.findings == ()
        # ...and the fixture's explicit allow was honored, not missed.
        assert len(report.suppressed_inline) == 1

    def test_scope_excludes_non_core_modules(self):
        report = check_fixture(["DET001"], "det001", "good")
        assert all(f.path != "repro/outside.py"
                   for f in report.findings + report.suppressed_inline)


class TestHot001:
    def test_bad_tree_fires_each_construct(self):
        report = check_fixture(["HOT001"], "hot001", "bad")
        messages = " | ".join(f.message for f in fired(report, "HOT001"))
        for construct in ("list comprehension", "dict display",
                         "f-string", "lambda", "list() call",
                         "nested FunctionDef", "set display"):
            assert construct in messages, construct

    def test_decorator_marks_non_fast_names(self):
        report = check_fixture(["HOT001"], "hot001", "bad")
        assert any(f.symbol == "decorated_step"
                   for f in fired(report, "HOT001"))

    def test_good_tree_is_silent(self):
        # Pins the false-positive boundary: raise statements may
        # format, cold functions may allocate.
        report = check_fixture(["HOT001"], "hot001", "good")
        assert report.findings == ()


class TestPar001:
    def test_bad_tree_fires_each_mirror(self):
        report = check_fixture(["PAR001"], "par001", "bad")
        messages = " | ".join(f.message for f in fired(report, "PAR001"))
        assert "frobnicate_fast" in messages      # orphan probe
        assert "DEFAULT_EXECUTION_MODE" in messages
        assert "execution_modes" in messages      # CLI tuple drift
        assert "hot_bench" in messages            # CLI literal drift
        assert "Node.metrics()" in messages       # constructor drift
        assert "_result_to_dict" in messages      # serializer drift
        assert "_handle_bogus" in messages        # orphan segment handler
        assert "'extension' has no _handle_extension()" in messages
        assert "_handle_hit_run() never calls" in messages
        assert len(fired(report, "PAR001")) == 9

    def test_paired_probe_not_flagged(self):
        report = check_fixture(["PAR001"], "par001", "bad")
        assert all("lookup_fast" not in f.message
                   for f in fired(report, "PAR001"))

    def test_matched_segment_handler_not_flagged(self):
        # _handle_scalar reaches step_fast (token "step" pairs with
        # reference_step) and names a declared kind: silent.
        report = check_fixture(["PAR001"], "par001", "bad")
        assert all("_handle_scalar" not in f.message
                   for f in fired(report, "PAR001"))

    def test_good_tree_is_silent(self):
        report = check_fixture(["PAR001"], "par001", "good")
        assert report.findings == ()

    def test_degrades_on_partial_trees(self):
        # A tree without the anchor modules (e.g. another rule's
        # fixture) must not crash or fire.
        report = check_fixture(["PAR001"], "det001", "bad")
        assert report.findings == ()


class TestPkl001:
    def test_bad_tree_fires_each_shape(self):
        report = check_fixture(["PKL001"], "pkl001", "bad")
        messages = " | ".join(f.message for f in fired(report, "PKL001"))
        assert "lambda" in messages
        assert "nested function 'worker'" in messages
        assert "bound method self._step" in messages
        assert len(fired(report, "PKL001")) == 3

    def test_good_tree_is_silent(self):
        # Module-level workers pass; the page tables' address-mapping
        # ``.map()`` API must never be mistaken for a pool submit.
        report = check_fixture(["PKL001"], "pkl001", "good")
        assert report.findings == ()


class TestCfg001:
    def test_bad_tree_fires(self):
        report = check_fixture(["CFG001"], "cfg001", "bad")
        messages = " | ".join(f.message for f in fired(report, "CFG001"))
        assert "ThawedConfig is not frozen" in messages
        assert "ExplicitlyThawed is not frozen" in messages
        assert "unannotated assignment page_bytes" in messages
        assert len(fired(report, "CFG001")) == 3

    def test_good_tree_is_silent(self):
        report = check_fixture(["CFG001"], "cfg001", "good")
        assert report.findings == ()


class TestHygieneRules:
    def test_bad_tree_fires(self):
        report = check_fixture(["DEF001", "EXC001"], "hygiene", "bad")
        assert len(fired(report, "DEF001")) == 2
        assert len(fired(report, "EXC001")) == 1

    def test_good_tree_is_silent(self):
        report = check_fixture(["DEF001", "EXC001"], "hygiene", "good")
        assert report.findings == ()


class TestRob001:
    def test_bad_tree_fires_each_shape(self):
        report = check_fixture(["ROB001"], "rob001", "bad")
        messages = " | ".join(f.message for f in fired(report, "ROB001"))
        assert "result_queue.get()" in messages
        assert "proc.join()" in messages
        assert "wait()" in messages
        assert ".imap_unordered()" in messages
        assert len(fired(report, "ROB001")) == 4

    def test_good_tree_is_silent(self):
        # Bounded waits pass in every spelling (keyword and positional
        # timeouts), a dict-style ``.get`` stays out of scope, and the
        # one intended unbounded wait is inline-allowed with rationale.
        report = check_fixture(["ROB001"], "rob001", "good")
        assert report.findings == ()

    def test_production_supervisor_is_in_scope_and_clean(self):
        # The real coordination modules must carry the discipline the
        # rule encodes (timeouts on every join/wait) without needing a
        # single suppression.
        from repro.analysis import run_check

        report = run_check(rules=[get_rule("ROB001")])
        assert fired(report, "ROB001") == []


# ----------------------------------------------------------------------
# Engine: scanning, suppression, baseline round-trip
# ----------------------------------------------------------------------
class TestEngine:
    def test_scan_derives_dotted_names(self):
        project = scan_project(FIXTURES / "det001" / "bad" / "repro")
        assert "repro.core.clock" in project.modules
        module = project.modules["repro.core.clock"]
        assert module.rel == "repro/core/clock.py"

    def test_scan_rejects_missing_root(self, tmp_path):
        with pytest.raises(AnalysisError, match="not a package"):
            scan_project(tmp_path / "nope")

    def test_scan_rejects_syntax_errors(self, tmp_path):
        root = tmp_path / "repro"
        root.mkdir()
        (root / "broken.py").write_text("def f(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            scan_project(root)

    def test_inline_allow_on_same_line(self, tmp_path):
        root = tmp_path / "repro"
        (root / "core").mkdir(parents=True)
        (root / "core" / "m.py").write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()  # deact: allow(DET001)\n")
        report = run_check(root=root, rules=[get_rule("DET001")])
        assert report.findings == ()
        assert len(report.suppressed_inline) == 1

    def test_findings_sorted_and_deduped(self):
        report = check_fixture(["DET001"], "det001", "bad")
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)
        assert len(set(report.findings)) == len(report.findings)

    def test_baseline_round_trip(self, tmp_path):
        bad_root = FIXTURES / "det001" / "bad" / "repro"
        first = run_check(root=bad_root, rules=[get_rule("DET001")])
        assert first.findings

        baseline_path = tmp_path / "analysis-baseline.toml"
        write_baseline(baseline_path, first.findings)
        baseline = load_baseline(baseline_path)

        second = run_check(root=bad_root, rules=[get_rule("DET001")],
                           baseline=baseline)
        assert second.findings == ()
        assert len(second.suppressed_baseline) == len(first.findings)

    def test_baseline_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.toml")
        assert baseline.entries == ()

    def test_baseline_rejects_corrupt_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("schema = [unclosed\n")
        with pytest.raises(AnalysisError, match="cannot read baseline"):
            load_baseline(path)

    def test_baseline_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("schema = 99\n")
        with pytest.raises(AnalysisError, match="unsupported schema"):
            load_baseline(path)

    def test_baseline_symbol_scoping(self, tmp_path):
        finding = Finding(rule="DET001", severity="error",
                          path="repro/core/clock.py", line=1, col=1,
                          symbol="stamp", message="m")
        other = Finding(rule="DET001", severity="error",
                        path="repro/core/clock.py", line=9, col=1,
                        symbol="entropy", message="m")
        path = tmp_path / "b.toml"
        write_baseline(path, (finding,))
        baseline = load_baseline(path)
        assert baseline.matches(finding)
        assert not baseline.matches(other)


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
class TestCheckCommand:
    def test_exit_zero_on_clean_tree(self, capsys):
        root = FIXTURES / "det001" / "good" / "repro"
        code = main(["check", "--root", str(root), "--rule", "DET001"])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        root = FIXTURES / "det001" / "bad" / "repro"
        code = main(["check", "--root", str(root), "--rule", "DET001"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "repro/core/clock.py" in out

    def test_exit_two_on_internal_error(self, tmp_path, capsys):
        root = tmp_path / "repro"
        root.mkdir()
        (root / "broken.py").write_text("def f(:\n")
        code = main(["check", "--root", str(root)])
        assert code == 2
        assert "internal error" in capsys.readouterr().err

    def test_exit_two_on_corrupt_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "corrupt.toml"
        baseline.write_text("schema = [unclosed\n")
        root = FIXTURES / "det001" / "good" / "repro"
        code = main(["check", "--root", str(root),
                     "--baseline", str(baseline)])
        assert code == 2

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["check", "--rule", "NOPE999"])

    def test_json_report_schema(self, capsys):
        root = FIXTURES / "det001" / "bad" / "repro"
        code = main(["check", "--root", str(root), "--rule", "DET001",
                     "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["tool"] == "deact-check"
        assert report["rules"] == ["DET001"]
        assert report["counts"]["total"] == len(report["findings"])
        assert report["counts"]["by_rule"] == {"DET001":
                                               report["counts"]["total"]}
        assert set(report["suppressed"]) == {"inline", "baseline"}
        for finding in report["findings"]:
            assert set(finding) == {"rule", "severity", "path", "line",
                                    "col", "symbol", "message", "hint"}

    def test_fix_hints_render(self, capsys):
        root = FIXTURES / "det001" / "bad" / "repro"
        main(["check", "--root", str(root), "--rule", "DET001",
              "--fix-hints"])
        out = capsys.readouterr().out
        assert "fix hints:" in out
        assert "seeded random.Random" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = FIXTURES / "det001" / "bad" / "repro"
        baseline = tmp_path / "analysis-baseline.toml"
        code = main(["check", "--root", str(root), "--rule", "DET001",
                     "--write-baseline", "--baseline", str(baseline)])
        assert code == 0
        assert baseline.is_file()
        capsys.readouterr()
        code = main(["check", "--root", str(root), "--rule", "DET001",
                     "--baseline", str(baseline)])
        assert code == 0
        assert "baselined" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The gate itself
# ----------------------------------------------------------------------
class TestRepoTreeIsClean:
    def test_repo_tree_has_no_findings(self):
        # The tree the repo ships must pass its own gate with the
        # shipped (empty) baseline — CI enforces exactly this.
        report = run_check()
        assert report.findings == (), report.render_table()

    def test_shipped_baseline_is_empty(self):
        repo_root = Path(__file__).resolve().parents[1]
        baseline = load_baseline(repo_root / "analysis-baseline.toml")
        assert baseline.entries == ()

    def test_hot_surface_is_marked(self):
        from repro.cache.hierarchy import CacheHierarchy
        from repro.core.node import Node
        from repro.tlb.mmu import Mmu

        for func in (Node.run_events, Node.run_decoded,
                     Node._charge_block, Mmu.translate_after_l1_miss,
                     CacheHierarchy.access_after_l1_miss):
            assert is_hot_path(func), func
