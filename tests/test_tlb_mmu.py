"""Tests for the TLB hierarchy and MMU."""

import itertools

import pytest

from repro.config.system import PtwConfig, TlbConfig
from repro.pagetable.x86 import FourLevelPageTable
from repro.tlb.mmu import Mmu
from repro.tlb.tlb import TwoLevelTlb


def small_tlb_config():
    return TlbConfig(l1_entries=4, l2_entries=16,
                     l1_associativity=2, l2_associativity=4)


def make_mmu(ptw_entries=32):
    counter = itertools.count()
    table = FourLevelPageTable(lambda: next(counter) * 4096)
    mmu = Mmu(table, small_tlb_config(), PtwConfig(cache_entries=ptw_entries))
    return mmu, table


class TestTwoLevelTlb:
    def test_miss_then_install_then_l1_hit(self):
        tlb = TwoLevelTlb(small_tlb_config())
        assert not tlb.lookup(5).hit
        tlb.install(5, 50)
        result = tlb.lookup(5)
        assert result.hit
        assert result.level == 1
        assert result.frame == 50

    def test_l2_hit_refills_l1(self):
        tlb = TwoLevelTlb(small_tlb_config())
        tlb.install(0, 10)
        # Thrash L1 set 0 (2-way, 2 sets): vpns 2, 4 share set 0.
        for vpn in (2, 4, 6):
            tlb.install(vpn, vpn)
        if tlb.l1.probe(0) is not None:
            pytest.skip("vpn 0 survived L1 thrashing")
        result = tlb.lookup(0)
        assert result.level == 2
        assert tlb.l1.probe(0) is not None

    def test_l2_hit_charges_latency(self):
        tlb = TwoLevelTlb(small_tlb_config())
        result = tlb.lookup(99)
        assert result.latency_ns == tlb.config.l2_latency_ns

    def test_invalidate(self):
        tlb = TwoLevelTlb(small_tlb_config())
        tlb.install(5, 50)
        tlb.invalidate(5)
        assert not tlb.lookup(5).hit

    def test_flush(self):
        tlb = TwoLevelTlb(small_tlb_config())
        for vpn in range(4):
            tlb.install(vpn, vpn)
        tlb.flush()
        assert not any(tlb.lookup(vpn).hit for vpn in range(4))

    def test_hit_rate(self):
        tlb = TwoLevelTlb(small_tlb_config())
        tlb.install(1, 1)
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.hit_rate == 0.5


class TestMmu:
    def test_translate_walks_on_cold_tlb(self):
        mmu, table = make_mmu()
        table.map(7, 70)
        outcome = mmu.translate(7 * 4096 + 123)
        assert outcome.frame == 70
        assert outcome.tlb_level == 0
        assert len(outcome.walk_steps) == 4

    def test_translate_hits_after_walk(self):
        mmu, table = make_mmu()
        table.map(7, 70)
        mmu.translate(7 * 4096)
        outcome = mmu.translate(7 * 4096 + 64)
        assert outcome.tlb_hit
        assert outcome.walk_steps == []

    def test_physical_address_combines_offset(self):
        mmu, table = make_mmu()
        table.map(7, 70)
        outcome = mmu.translate(7 * 4096 + 123)
        assert mmu.physical_address(outcome.frame, 7 * 4096 + 123) == \
            70 * 4096 + 123

    def test_walk_cache_shrinks_later_walks(self):
        mmu, table = make_mmu()
        table.map(0x100, 1)
        table.map(0x101, 2)
        mmu.translate(0x100 * 4096)
        outcome = mmu.translate(0x101 * 4096)
        assert len(outcome.walk_steps) == 1  # only the PTE read

    def test_shootdown_forces_rewalk(self):
        mmu, table = make_mmu()
        table.map(7, 70)
        mmu.translate(7 * 4096)
        mmu.shootdown(7)
        outcome = mmu.translate(7 * 4096)
        assert outcome.tlb_level == 0
        assert len(outcome.walk_steps) == 4  # walker caches flushed too

    def test_walk_rate(self):
        mmu, table = make_mmu()
        table.map(7, 70)
        mmu.translate(7 * 4096)
        mmu.translate(7 * 4096)
        assert mmu.walk_rate == 0.5

    def test_vpn_of(self):
        mmu, _table = make_mmu()
        assert mmu.vpn_of(4096 * 9 + 17) == 9


class TestTlbCapacityValidation:
    """Regression: ``entries // associativity`` used to silently drop
    capacity when entries did not divide into whole ways — now both
    the config and the TLB constructor reject the geometry."""

    def test_tlbconfig_rejects_non_divisible_l1(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="L1 TLB"):
            TlbConfig(l1_entries=33, l1_associativity=4)

    def test_tlbconfig_rejects_non_divisible_l2(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="L2 TLB"):
            TlbConfig(l2_entries=100, l2_associativity=8)

    def test_tlbconfig_rejects_non_positive_associativity(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="associativity"):
            TlbConfig(l1_associativity=0)
        with pytest.raises(ConfigError, match="associativity"):
            TlbConfig(l2_associativity=-2)

    def test_tlb_constructor_validates_independently(self):
        # Even a config object that skipped its own validation (e.g. a
        # duck-typed stub) must not silently truncate capacity.
        from types import SimpleNamespace

        from repro.errors import ConfigError

        stub = SimpleNamespace(l1_entries=33, l1_associativity=4,
                               l2_entries=256, l2_associativity=8,
                               l2_latency_ns=3.5, page_bytes=4096)
        with pytest.raises(ConfigError, match="silently drop"):
            TwoLevelTlb(stub)

    def test_tlb_constructor_rejects_zero_associativity_stub(self):
        from types import SimpleNamespace

        from repro.errors import ConfigError

        stub = SimpleNamespace(l1_entries=32, l1_associativity=0,
                               l2_entries=256, l2_associativity=8,
                               l2_latency_ns=3.5, page_bytes=4096)
        with pytest.raises(ConfigError, match="must be positive"):
            TwoLevelTlb(stub)

    def test_valid_geometry_keeps_full_capacity(self):
        tlb = TwoLevelTlb(TlbConfig(l1_entries=32, l1_associativity=4,
                                    l2_entries=256, l2_associativity=8))
        assert tlb.l1.n_sets * tlb.l1.associativity == 32
        assert tlb.l2.n_sets * tlb.l2.associativity == 256
