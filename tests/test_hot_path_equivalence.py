"""The hot-path equivalence guarantee.

Every production execution tier — the scalar fast path (vectorized
``Trace.decoded`` front-end plus the allocation-free probe entry
points behind ``Node.step_fast`` / ``Node.run_decoded``) **and** the
batch tier (:mod:`repro.core.batch`, which charges proved hit-runs
with array arithmetic) — must produce **bit-identical** run stats to
the seed implementation preserved in :mod:`repro.core.refpath`.  This
suite pins that down across every catalog benchmark, every
replacement policy, every architecture, and the multi-node
interleaved driver — comparing full serialized result dicts, so a
single drifting counter anywhere in the system fails loudly.

Tier-1 runs a deterministic ~25% sample of the catalog × policy
matrix (stratified per policy, seeded — the picked cells never change
between invocations); set ``REPRO_FULL_MATRIX=1`` to run every cell,
which the nightly CI job does.
"""

import dataclasses
import os
import random

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.config.presets import default_config, with_nodes
from repro.core.refpath import _ref_fill
from repro.core.system import FamSystem
from repro.experiments.runner import (
    RunSettings,
    _result_to_dict,
    build_traces,
)
from repro.workloads.catalog import benchmark_names

#: Small but non-trivial: enough events to exercise walks, evictions,
#: write-backs and FAM contention on every benchmark.
FAST = RunSettings(n_events=1000, footprint_scale=0.01, seed=5)

ARCHITECTURES = ("e-fam", "i-fam", "deact-w", "deact-n")
POLICIES = ("lru", "fifo", "random")

#: Full matrix under ``REPRO_FULL_MATRIX=1`` (the nightly CI job);
#: otherwise tier-1 runs the deterministic sampled slice below.
FULL_MATRIX = os.environ.get("REPRO_FULL_MATRIX") == "1"


def _matrix_cells():
    """The catalog × policy cells tier-1 actually runs.

    The full product under ``REPRO_FULL_MATRIX=1``; otherwise a
    seeded ~25% sample, stratified per policy so every replacement
    policy keeps coverage every run.  The sample is a pure function of
    the catalog and the fixed seed — no time, no environment — so the
    picked cells are identical on every machine and every invocation
    (deterministic test IDs, reproducible failures).
    """
    benches = benchmark_names()
    if FULL_MATRIX:
        return [(bench, policy) for policy in POLICIES
                for bench in benches]
    rng = random.Random(0xD5EC)
    quarter = max(1, round(len(benches) * 0.25))
    cells = []
    for policy in POLICIES:
        for bench in sorted(rng.sample(benches, quarter)):
            cells.append((bench, policy))
    return cells


def _with_data_cache_policy(config, policy):
    """The Table II config with every data-cache level using
    ``policy`` replacement."""
    return config.replace(
        l1=dataclasses.replace(config.l1, replacement=policy),
        l2=dataclasses.replace(config.l2, replacement=policy),
        l3=dataclasses.replace(config.l3, replacement=policy))


def _run_tiers(bench, architecture, config):
    """Run all three tiers on fresh systems; return serialized dicts
    ``(fast, batch, reference)``."""
    traces = build_traces(bench, config.nodes, FAST)
    seed = FAST.seed * 31 + 5
    fast = FamSystem(config, architecture, seed=seed).run(
        traces, benchmark=bench, mode="fast")
    batch_system = FamSystem(config, architecture, seed=seed)
    assert batch_system.batch_capable()
    batch = batch_system.run(traces, benchmark=bench, mode="batch")
    reference = FamSystem(config, architecture, seed=seed).run(
        traces, benchmark=bench, reference=True)
    return (_result_to_dict(fast), _result_to_dict(batch),
            _result_to_dict(reference))


def _run_both(bench, architecture, config):
    """Backward-compatible helper: ``(fast, reference)`` dicts."""
    fast, _batch, reference = _run_tiers(bench, architecture, config)
    return fast, reference


class TestCatalogEquivalence:
    """Catalog benchmark × replacement policy cells (sampled in
    tier-1, full under ``REPRO_FULL_MATRIX=1``).

    The architecture rotates per (benchmark, policy) cell so all four
    access procedures are exercised across the matrix without running
    the full 14 × 3 × 4 cube.
    """

    @pytest.mark.parametrize("bench,policy", _matrix_cells())
    def test_fast_and_batch_match_seed_path(self, bench, policy):
        index = benchmark_names().index(bench)
        architecture = ARCHITECTURES[
            (index + POLICIES.index(policy)) % len(ARCHITECTURES)]
        config = _with_data_cache_policy(default_config(), policy)
        fast, batch, reference = _run_tiers(bench, architecture, config)
        assert fast == reference
        assert batch == reference

    def test_all_architectures_one_benchmark(self):
        for architecture in ARCHITECTURES:
            fast, batch, reference = _run_tiers("mcf", architecture,
                                                default_config())
            assert fast == reference
            assert batch == reference

    @pytest.mark.parametrize("policy", POLICIES)
    def test_multi_node_interleaved_driver(self, policy):
        # nodes > 1 goes through the heap-interleaved drivers: the
        # scalar one pops one Node.step_fast per event, the batch one
        # pops whole proved hit-runs.
        config = _with_data_cache_policy(
            with_nodes(default_config(), 3), policy)
        fast, batch, reference = _run_tiers("dc", "deact-n", config)
        assert fast == reference
        assert batch == reference

    def test_encrypted_memory_mode(self):
        config = default_config()
        config = config.replace(
            stu=dataclasses.replace(config.stu, encrypted_memory_mode=True))
        fast, batch, reference = _run_tiers("canl", "deact-n", config)
        assert fast == reference
        assert batch == reference

    def test_hit_dominated_workload(self):
        # The batch tier's home regime: long provable hit-runs (the
        # catalog traces mostly exercise short runs and bail-outs).
        from repro.experiments.bench import hot_loop_trace

        traces = [hot_loop_trace(4000, seed=11)]
        for architecture in ARCHITECTURES:
            seed = 77
            reference = FamSystem(default_config(), architecture,
                                  seed=seed).run(
                traces, benchmark="hot-loop", reference=True)
            batch = FamSystem(default_config(), architecture,
                              seed=seed).run(
                traces, benchmark="hot-loop", mode="batch")
            assert _result_to_dict(batch) == _result_to_dict(reference)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_multi_node_hit_dominated(self, policy):
        # Long proved runs under the heap-interleaved multi-node
        # driver, for every replacement policy (refill-extended runs
        # get their own multi-node coverage in
        # test_batch_engine.py::test_tlb_l2_refills_extend_runs_multi_node
        # — the hotspot preset is pure enough to need no extensions).
        config = _with_data_cache_policy(
            with_nodes(default_config(), 3), policy)
        fast, batch, reference = _run_tiers("hotspot", "deact-w", config)
        assert fast == reference
        assert batch == reference

    def test_all_architectures_hit_dominated_catalog(self):
        # The hotspot preset (block-granular reuse) across all four
        # access procedures: the run-extension engine must stay
        # bit-identical whichever remote-access path charges misses.
        for architecture in ARCHITECTURES:
            fast, batch, reference = _run_tiers("hotspot", architecture,
                                                default_config())
            assert fast == reference
            assert batch == reference

    def test_not_vacuous(self):
        # Different seeds must differ, or the comparisons above would
        # pass for a runner that ignores its inputs.
        traces = build_traces("mcf", 1, FAST)
        base = FamSystem(default_config(), "deact-n", seed=1).run(
            traces, benchmark="mcf")
        other = FamSystem(default_config(), "deact-n", seed=2).run(
            traces, benchmark="mcf")
        assert _result_to_dict(base) != _result_to_dict(other)


class TestDecodedFrontEnd:
    """The vectorized decode must agree with per-event derivation."""

    def test_decode_matches_scalar_derivation(self):
        trace = build_traces("mcf", 1, FAST)[0]
        decoded = trace.decoded(4096, 64)
        assert len(decoded) == len(trace)
        for vaddr, vpn, offset, block in zip(
                trace.vaddrs, decoded.vpns, decoded.offsets,
                decoded.blocks):
            assert vpn == vaddr // 4096
            assert offset == vaddr % 4096
            assert block == (vaddr % 4096) // 64
            # Physical-block recomposition identity used by step_fast.
            for frame in (0, 7, 123456):
                npa = (frame << 12) | offset
                assert npa // 64 == (frame << 6) | block

    def test_decode_is_cached_per_geometry(self):
        trace = build_traces("mg", 1, FAST)[0]
        assert trace.decoded(4096, 64) is trace.decoded(4096, 64)
        assert trace.decoded(4096, 64) is not trace.decoded(4096, 128)

    def test_decode_rejects_non_power_of_two(self):
        from repro.errors import TraceError

        trace = build_traces("mg", 1, FAST)[0]
        with pytest.raises(TraceError):
            trace.decoded(page_bytes=4095)
        with pytest.raises(TraceError):
            trace.decoded(block_bytes=48)

    def test_columns_are_plain_python_scalars(self):
        # The per-event loop relies on plain ints/bools (NumPy scalar
        # attribute access is an order of magnitude slower).
        trace = build_traces("bc", 1, FAST)[0]
        decoded = trace.decoded()
        assert type(decoded.vpns[0]) is int
        assert type(decoded.offsets[0]) is int
        assert type(decoded.blocks[0]) is int
        assert type(trace.gaps[0]) is int
        assert type(trace.writes[0]) is bool


class TestTagStoreEquivalence:
    """Property test: the slim ``fill_line`` and the seed's boxed fill
    (preserved as ``refpath._ref_fill``) stay in lockstep — same
    contents, counters, eviction decisions and RNG draws — under
    random operation sequences for all three policies."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_random_operation_sequences(self, policy, seed):
        import random

        rng = random.Random(1000 * seed + POLICIES.index(policy))
        fast = SetAssociativeCache("fast", 4, 2, replacement=policy,
                                   seed=seed)
        reference = SetAssociativeCache("ref", 4, 2, replacement=policy,
                                        seed=seed)
        for _ in range(600):
            key = rng.randrange(64)
            op = rng.random()
            if op < 0.5:
                fast_line = fast.get_line(key, write=op < 0.1)
                ref_line = reference.get_line(key, write=op < 0.1)
                assert (fast_line is None) == (ref_line is None)
            elif op < 0.9:
                evicted = fast.fill_line(key, key * 3, dirty=op > 0.8)
                boxed = _ref_fill(reference, key, key * 3, dirty=op > 0.8)
                if evicted is None:
                    assert boxed.evicted_key is None
                else:
                    assert evicted == (boxed.evicted_key,
                                       boxed.evicted_value,
                                       boxed.evicted_dirty)
            else:
                assert fast.invalidate(key) == reference.invalidate(key)
        assert fast._sets == reference._sets
        assert (fast.hits, fast.misses, fast.fills, fast.evictions) == \
            (reference.hits, reference.misses, reference.fills,
             reference.evictions)
