"""Tests for configuration dataclasses and presets."""

import pytest

from repro.config.presets import (
    default_config,
    small_config,
    with_acm_bits,
    with_acm_subways,
    with_allocation_policy,
    with_fabric_latency,
    with_nodes,
    with_stu_associativity,
    with_stu_entries,
)
from repro.config.system import (
    CacheConfig,
    FabricConfig,
    FamConfig,
    GIB,
    KIB,
    MIB,
    StuConfig,
    SystemConfig,
    TlbConfig,
    TranslationCacheConfig,
)
from repro.errors import ConfigError


class TestTableIIDefaults:
    def test_core(self):
        config = default_config()
        assert config.core.cores == 4
        assert config.core.frequency_ghz == 2.0
        assert config.core.issue_width == 2
        assert config.core.max_outstanding == 32

    def test_tlb(self):
        config = default_config()
        assert config.tlb.l1_entries == 32
        assert config.tlb.l2_entries == 256

    def test_caches(self):
        config = default_config()
        assert config.l1.size_bytes == 32 * KIB
        assert config.l2.size_bytes == 256 * KIB
        assert config.l3.size_bytes == 1 * MIB
        assert config.block_bytes == 64

    def test_memories(self):
        config = default_config()
        assert config.local_memory.size_bytes == 1 * GIB
        assert config.fam.capacity_bytes == 16 * GIB
        assert config.fam.read_ns == 60.0
        assert config.fam.write_ns == 150.0
        assert config.fam.banks == 32
        assert config.fam.max_outstanding == 128

    def test_stu(self):
        config = default_config()
        assert config.stu.entries == 1024
        assert config.stu.associativity == 8
        assert config.stu.n_sets == 128
        assert config.stu.acm_bits == 16

    def test_fabric(self):
        assert default_config().fabric.total_latency_ns == 500.0

    def test_translation_cache(self):
        tcache = default_config().translation_cache
        assert tcache.size_bytes == 1 * MIB
        assert tcache.associativity == 4
        assert tcache.n_entries == 65536

    def test_allocation(self):
        allocation = default_config().allocation
        assert allocation.local_fraction == pytest.approx(0.2)
        assert allocation.fam_policy == "random"

    def test_describe_mentions_key_facts(self):
        text = " ".join(default_config().describe().values())
        assert "2GHz" in text
        assert "16GB" in text
        assert "1024 entries" in text


class TestValidation:
    def test_cache_geometry_must_divide(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, associativity=3, latency_ns=1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(node_to_stu_ns=-1)

    def test_acm_width_restricted(self):
        with pytest.raises(ConfigError):
            StuConfig(acm_bits=12)

    def test_stu_entries_divide_ways(self):
        with pytest.raises(ConfigError):
            StuConfig(entries=100, associativity=8)

    def test_subways_bounded(self):
        with pytest.raises(ConfigError):
            StuConfig(subways_per_way=4)

    def test_tlb_entries_divide_ways(self):
        with pytest.raises(ConfigError):
            TlbConfig(l1_entries=30, l1_associativity=4)

    def test_tcache_divides_into_sets(self):
        with pytest.raises(ConfigError):
            TranslationCacheConfig(size_bytes=100)

    def test_nodes_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(nodes=0)

    def test_fam_validation(self):
        with pytest.raises(ConfigError):
            FamConfig(capacity_bytes=0)


class TestPresetVariants:
    def test_with_stu_entries(self):
        config = with_stu_entries(default_config(), 256)
        assert config.stu.entries == 256
        assert default_config().stu.entries == 1024  # original untouched

    def test_with_stu_associativity(self):
        config = with_stu_associativity(default_config(), 32)
        assert config.stu.associativity == 32

    def test_with_acm_bits(self):
        config = with_acm_bits(default_config(), 8)
        assert config.stu.acm_bits == 8
        assert config.stu.contiguous_pages_per_way == 52 // 8

    def test_with_acm_subways(self):
        config = with_acm_subways(default_config(), 3)
        assert config.stu.subways_per_way == 3

    def test_with_fabric_latency(self):
        config = with_fabric_latency(default_config(), 6000.0)
        assert config.fabric.total_latency_ns == pytest.approx(6000.0)

    def test_with_nodes(self):
        assert with_nodes(default_config(), 8).nodes == 8

    def test_with_allocation_policy(self):
        config = with_allocation_policy(default_config(), "contiguous")
        assert config.allocation.fam_policy == "contiguous"

    def test_small_config_is_valid_and_smaller(self):
        small = small_config()
        assert small.l1.size_bytes < default_config().l1.size_bytes
        assert small.stu.entries < default_config().stu.entries

    def test_replace_helper(self):
        config = default_config().replace(nodes=4)
        assert config.nodes == 4
