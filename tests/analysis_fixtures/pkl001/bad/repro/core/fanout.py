"""PKL001-positive fixture: unpicklable callables at submit sites."""


class Engine:
    def run(self, pool, jobs):
        for _ in pool.imap_unordered(lambda job: job * 2, jobs):  # lambda
            pass

        def worker(job):  # nested def
            return job + 1

        pool.starmap(worker, jobs)
        return pool.apply_async(self._step, jobs)  # bound method

    def _step(self, job):
        return job
