"""PKL001-negative fixture: module-level workers, and the page-table
``.map()`` API that must never be mistaken for a pool submit."""


def execute(job):
    return job * 2


class Engine:
    def run(self, pool, table, jobs):
        table.map(0x10, 0x20)  # address-mapping API, not a pool
        results = pool.imap_unordered(execute, jobs)
        pool.apply_async(execute, jobs)
        return list(results)
