"""DET001-positive fixture: every banned nondeterminism source."""

import json
import os
import random
import time


def stamp():
    return time.time()  # banned wall clock


def entropy():
    return os.urandom(8)  # banned entropy


def rng():
    shared = random.random()  # module-level unseeded RNG
    unseeded = random.Random()  # Random() without a seed
    return shared, unseeded


def serialize(payload):
    return json.dumps(payload)  # missing sort_keys=True


def iterate():
    total = 0
    for item in {3, 1, 2}:  # set iteration without sorted()
        total += item
    return total
