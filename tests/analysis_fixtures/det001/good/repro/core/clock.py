"""DET001-negative fixture: the sanctioned counterparts."""

import json
import random
import time


def deadline(budget):
    return time.monotonic() + budget  # monotonic is allowed


def rng(seed):
    return random.Random(seed)  # seeded Random is the pattern


def serialize(payload):
    return json.dumps(payload, sort_keys=True)


def serialize_forwarding(payload, **kwargs):
    return json.dumps(payload, **kwargs)  # sort flag may travel in kwargs


def iterate():
    total = 0
    for item in sorted({3, 1, 2}):
        total += item
    return total


def suppressed():
    # deact: allow(DET001)
    return time.time()
