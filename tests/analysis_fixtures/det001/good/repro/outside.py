"""Out-of-scope module: DET001 only polices repro.core and the two
canonical-write experiment modules."""

import time


def now():
    return time.time()
