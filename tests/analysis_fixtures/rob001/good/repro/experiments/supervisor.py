"""ROB001-negative fixture: every wait is bounded (or allowed with a
rationale), and look-alike APIs stay out of scope."""

from multiprocessing.connection import wait


def collect(result_queue, workers, conns, task_queue, mapping):
    message = result_queue.get(timeout=5.0)
    polled = result_queue.get(True, 5.0)  # timeout in the positional slot
    for proc in workers:
        proc.join(timeout=2.0)
    ready = wait(conns, timeout=0.05)
    also_ready = wait(conns, 0.05)  # positional timeout
    task = task_queue.get()  # deact: allow(ROB001) idle worker awaits dispatch
    mapping.get("key")  # dict-style .get: not a queue, out of scope
    return message, polled, ready, also_ready, task
