"""ROB001-positive fixture: unbounded waits at coordination sites."""

from multiprocessing.connection import wait


def collect(result_queue, workers, conns, pool, jobs):
    message = result_queue.get()  # no timeout: hangs if producer died
    for proc in workers:
        proc.join()  # no timeout: hangs on a wedged child
    ready = wait(conns)  # no deadline: blocks if nobody speaks
    for _ in pool.imap_unordered(str, jobs):  # no timeout knob at all
        pass
    return message, ready
