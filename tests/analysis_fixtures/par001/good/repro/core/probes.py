def step_fast(node):  # paired with reference_step
    return node


def lookup_fast(tlb, vpn):  # paired with _ref_tlb_lookup
    return tlb, vpn
