"""Reference tier of the PAR001-negative fixture."""


def reference_step(node):
    return node


def _ref_tlb_lookup(tlb, vpn):
    return tlb, vpn
