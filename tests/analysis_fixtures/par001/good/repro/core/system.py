EXECUTION_MODES = ("batch", "fast", "reference")
DEFAULT_EXECUTION_MODE = "batch"
