"""Consumer side of the PAR001-negative fixture: one handler per
declared segment kind, each calling a refpath-token-matched probe."""


class BatchExecutor:
    def _handle_hit_run(self, cursor, k):
        return self.node.tlb.lookup_fast(cursor, k)

    def _handle_scalar(self, start, stop):
        return self.node.step_fast(start, stop)
