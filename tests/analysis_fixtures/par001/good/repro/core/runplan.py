"""Run-plan side of the PAR001-negative fixture: a literal kind
taxonomy plus a scalar executor whose handler reaches a refpath-
matched probe."""

SEGMENT_KINDS = ("hit-run", "scalar")


class ScalarExecutor:
    def _handle_scalar(self, start, stop):
        return self.node.step_fast(start, stop)
