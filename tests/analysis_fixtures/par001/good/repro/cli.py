def main(argv):
    execution_modes = ("batch", "fast", "reference")
    hot_bench = "hot-loop"
    return execution_modes, hot_bench
