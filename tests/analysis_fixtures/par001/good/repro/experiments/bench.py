HOT_BENCH = "hot-loop"
