EXECUTION_MODES = ("batch", "fast", "reference")
DEFAULT_EXECUTION_MODE = "turbo"  # not a member of EXECUTION_MODES
