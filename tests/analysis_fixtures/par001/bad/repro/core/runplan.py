"""Run-plan side of the PAR001-positive fixture.

Declares three kinds (``extension`` has no consumer in batch.py —
one finding) and an orphan ``_handle_bogus`` naming no kind."""

SEGMENT_KINDS = ("hit-run", "extension", "scalar")


class RunPlanner:
    def _handle_bogus(self, x):  # orphan: "bogus" is not a kind
        return x
