from dataclasses import dataclass


@dataclass(frozen=True)
class NodeMetrics:
    node_id: int
    instructions: int
    cycles: float
