"""An orphan fast probe: no refpath function shares a name token."""


def frobnicate_fast(x):
    return x


def lookup_fast(tlb, vpn):  # paired with _ref_tlb_lookup: fine
    return tlb, vpn
