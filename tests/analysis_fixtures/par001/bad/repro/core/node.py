from repro.core.results import NodeMetrics


class Node:
    def metrics(self):
        return NodeMetrics(  # missing cycles
            node_id=self.node_id,
            instructions=self.instructions,
        )
