"""Consumer side of the PAR001-positive fixture.

``_handle_extension`` is missing entirely, and ``_handle_hit_run``
charges without ever calling a refpath-token-matched probe."""


class BatchExecutor:
    def _handle_hit_run(self, cursor, k):  # no refpath-matched call
        return cursor + k

    def _handle_scalar(self, start, stop):  # fine: step_fast pairs
        return self.node.step_fast(start, stop)
