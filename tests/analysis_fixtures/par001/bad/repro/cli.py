def main(argv):
    execution_modes = ("batch", "fast")  # dropped the reference tier
    hot_bench = "hot-loop"  # bench.py says spin-loop
    return execution_modes, hot_bench
