def _result_to_dict(result):
    return {
        "nodes": [
            {
                "node_id": n.node_id,
                "instructions": n.instructions,
                "cycles": n.cycles,
                "ipc": n.ipc,  # not a NodeMetrics field: breaks **n
            }
            for n in result.nodes
        ],
    }
