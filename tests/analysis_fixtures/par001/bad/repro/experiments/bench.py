HOT_BENCH = "spin-loop"
