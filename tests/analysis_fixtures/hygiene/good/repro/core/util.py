"""DEF001/EXC001-negative fixture."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def fallback(overrides=()):  # immutable default is fine
    return dict(overrides)


def swallow(action):
    try:
        return action()
    except Exception:
        return None
