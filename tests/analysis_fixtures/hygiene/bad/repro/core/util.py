"""DEF001/EXC001-positive fixture."""


def collect(item, bucket=[]):  # mutable default
    bucket.append(item)
    return bucket


def fallback(overrides={}):  # mutable default (dict display)
    return overrides


def swallow(action):
    try:
        return action()
    except:  # bare except
        return None
