"""CFG001-positive fixture: thawed and under-annotated configs."""

from dataclasses import dataclass


@dataclass
class ThawedConfig:  # @dataclass without frozen=True
    nodes: int = 4


@dataclass(frozen=False)
class ExplicitlyThawed:
    nodes: int = 4


@dataclass(frozen=True)
class SharedState:
    nodes: int = 4
    page_bytes = 4096  # unannotated: class attribute, not a field
