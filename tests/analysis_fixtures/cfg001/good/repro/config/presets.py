"""CFG001-negative fixture: the sanctioned config shape."""

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class GoodConfig:
    nodes: int = 4
    page_bytes: int = 4096
    overrides: Dict[str, float] = field(default_factory=dict)
    _registry = {}  # underscore-named shared state is tolerated


class NotADataclass:
    nodes = 4  # plain classes are out of scope
