"""HOT001-positive fixture: allocating constructs on the hot path."""

from repro.core.hotpath import hot_path


def lookup_fast(items):
    doubled = [x * 2 for x in items]  # comprehension
    table = {}  # dict display
    label = f"{len(items)} items"  # f-string
    picker = lambda x: x  # noqa: E731  lambda
    boxed = list(items)  # list() call
    return doubled, table, label, picker, boxed


def walk_fast(n):
    def helper(x):  # nested def
        return x + 1

    return helper(n)


@hot_path
def decorated_step(n):
    return {n}  # set display; decorator marks this hot without _fast
