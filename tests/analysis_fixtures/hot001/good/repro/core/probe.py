"""HOT001-negative fixture: allocation-free hot code plus the
raise-statement exemption and an unmarked (cold) function."""

from repro.core.hotpath import hot_path


def lookup_fast(slots, key, default):
    index = key & (len(slots) - 1)
    hit = slots[index]
    if hit == key:
        return index, True
    if index < 0:
        raise ValueError(f"bad key {key}: {[key]}")  # raise is exempt
    return default, False


@hot_path
def decorated_step(a, b):
    return a + b, a * b  # tuples are fine


def cold_helper(items):
    return [x * 2 for x in items]  # not _fast, not decorated: cold
