"""Tests for ASCII rendering helpers (tables and bar charts)."""

from repro.experiments.report import (
    FigureResult,
    Row,
    render_bars,
    render_table,
)


def sample_figure():
    return FigureResult(
        figure_id="figY", title="Render sample", series=["X"],
        rows=[Row("short", {"X": 1.0}),
              Row("a-much-longer-label", {"X": 4.0}),
              Row("mid", {"X": 2.0})],
        unit="x")


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        text = render_bars(sample_figure(), "X", width=40)
        lines = text.splitlines()[1:]
        lengths = [line.count("#") for line in lines]
        assert lengths[1] == 40          # peak row gets full width
        assert lengths[0] == 10          # 1.0 / 4.0 of 40
        assert lengths[2] == 20

    def test_labels_aligned(self):
        text = render_bars(sample_figure(), "X")
        lines = text.splitlines()[1:]
        positions = {line.index("  ") for line in lines}
        # All labels padded to the same width.
        value_columns = {len(line) - len(line.lstrip()) for line in lines}
        assert len({line.split("  ")[0] and len(line.split("  ")[0])
                    for line in lines}) >= 1

    def test_missing_series_message(self):
        text = render_bars(sample_figure(), "nope")
        assert "no data" in text

    def test_minimum_one_hash(self):
        figure = FigureResult("f", "t", ["X"],
                              [Row("tiny", {"X": 0.0001}),
                               Row("huge", {"X": 100.0})])
        text = render_bars(figure, "X")
        assert all("#" in line for line in text.splitlines()[1:])

    def test_header_includes_unit(self):
        assert "[x]" in render_bars(sample_figure(), "X").splitlines()[0]


class TestRenderTableEdgeCases:
    def test_empty_values_render_blank(self):
        figure = FigureResult("f", "t", ["A", "B"],
                              [Row("r", {"A": 1.0})])
        text = render_table(figure)
        assert "1.00" in text

    def test_precision(self):
        figure = FigureResult("f", "t", ["A"], [Row("r", {"A": 1.23456})])
        assert "1.235" in render_table(figure, precision=3)
