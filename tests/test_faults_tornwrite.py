"""Torn-write property suite: kill the cache writer at every byte.

The atomic write path (`tempfile.mkstemp` + `os.replace`) promises
that a writer dying at *any* instant leaves readers a complete cache —
the old one or the new one, never a hybrid.  This suite proves it by
brute force: for every byte offset of the serialized text (plus the
write-complete-but-not-renamed and just-after-rename instants), a real
child process installs the torn-write hook, attempts the write, and
dies there with ``os._exit`` — no interpreter cleanup, exactly like a
kill -9 — after which the parent asserts the on-disk state.
"""

import json
import multiprocessing
import os

import pytest

from repro.experiments import cachefile, faults
from repro.experiments.cachefile import load_cache, write_cache_atomic

OLD = {"cell-a": {"value": 1}, "cell-b": {"value": 2}}
NEW = {"cell-a": {"value": 1}, "cell-b": {"value": 2},
       "cell-c": {"value": 3}}

#: What the new cache serializes to — offsets sweep over this text.
NEW_TEXT = json.dumps(NEW, sort_keys=True)


@pytest.fixture(autouse=True)
def no_leaked_hook():
    yield
    faults.deactivate()


def _torn_writer(path: str, entries: dict, cut: int) -> None:
    """Child body: die at byte ``cut`` of an atomic cache write."""
    faults.install_torn_write_hook(cut)
    write_cache_atomic(path, entries)
    os._exit(0)  # pragma: no cover - only reached when cut > len + 1


def _die_at(path: str, cut: int) -> int:
    context = multiprocessing.get_context("fork")
    proc = context.Process(target=_torn_writer,
                           args=(path, NEW, cut))
    proc.start()
    proc.join(timeout=30.0)
    assert proc.exitcode is not None, f"writer hung at cut={cut}"
    return proc.exitcode


class TestTornWrites:
    @pytest.mark.parametrize("cut", range(len(NEW_TEXT) + 1))
    def test_death_mid_tmp_write_preserves_old_cache(self, tmp_path, cut):
        path = str(tmp_path / "cache.json")
        write_cache_atomic(path, OLD)
        assert _die_at(path, cut) == faults.CRASH_EXIT_CODE
        # Reader sees the complete old cache; the torn bytes live only
        # in a dead .tmp. file.
        assert json.load(open(path)) == OLD
        assert load_cache(path) == OLD

    def test_death_before_replace_preserves_old_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        write_cache_atomic(path, OLD)
        assert _die_at(path, len(NEW_TEXT) + 1) == faults.CRASH_EXIT_CODE
        assert json.load(open(path)) == OLD
        # The fully-written-but-unrenamed temp file is left behind —
        # exactly the debris `deact cache validate --repair` sweeps.
        debris = [name for name in os.listdir(tmp_path)
                  if ".tmp." in name]
        assert debris

    def test_death_after_replace_lands_new_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        write_cache_atomic(path, OLD)
        assert _die_at(path, len(NEW_TEXT) + 2) == faults.CRASH_EXIT_CODE
        assert json.load(open(path)) == OLD | NEW

    def test_death_with_no_prior_cache_leaves_nothing_or_new(self,
                                                             tmp_path):
        path = str(tmp_path / "fresh.json")
        assert _die_at(path, 3) == faults.CRASH_EXIT_CODE
        assert not os.path.exists(path)
        assert load_cache(path) == {}

    def test_every_offset_reader_never_sees_hybrid(self, tmp_path):
        # The one-assertion statement of the property, across the whole
        # tmp+rename sequence: old or new, never anything else.
        path = str(tmp_path / "cache.json")
        for cut in range(len(NEW_TEXT) + 3):
            write_cache_atomic(path, OLD)
            _die_at(path, cut)
            on_disk = json.load(open(path))
            assert on_disk in (OLD, OLD | NEW), \
                f"hybrid cache after death at byte {cut}: {on_disk}"


class TestHookPlumbing:
    def test_hook_cleared_by_deactivate(self, tmp_path):
        faults.install_torn_write_hook(0)
        assert cachefile._WRITE_FAULT_HOOK is not None
        faults.deactivate()
        assert cachefile._WRITE_FAULT_HOOK is None
        # Writes work normally again in this process.
        path = str(tmp_path / "ok.json")
        write_cache_atomic(path, NEW)
        assert load_cache(path) == NEW

    def test_plan_write_fault_is_one_shot_via_state_dir(self, tmp_path):
        """A plan torn-write spends its attempt marker even though the
        writer died — the resume run's writes go through untouched."""
        state = str(tmp_path / "state")
        plan = faults.FaultPlan(
            rules=(faults.FaultRule(kind="torn-write", attempts=1,
                                    at_byte=5),),
            seed=3, state_dir=state)
        path = str(tmp_path / "cache.json")
        write_cache_atomic(path, OLD)

        def _plan_writer():
            faults.activate(plan)
            write_cache_atomic(path, NEW)
            os._exit(0)  # pragma: no cover - first run dies in the hook

        context = multiprocessing.get_context("fork")
        first = context.Process(target=_plan_writer)
        first.start()
        first.join(timeout=30.0)
        assert first.exitcode == faults.CRASH_EXIT_CODE
        assert json.load(open(path)) == OLD

        second = context.Process(target=_plan_writer)
        second.start()
        second.join(timeout=30.0)
        assert second.exitcode == 0  # marker spent: write goes through
        assert json.load(open(path)) == NEW
