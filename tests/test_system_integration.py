"""Integration tests: whole-system runs across architectures."""

import pytest

from repro.config.presets import small_config, with_nodes
from repro.core.system import FamSystem
from repro.errors import ConfigError
from repro.workloads.catalog import get_profile
from repro.workloads.synthetic import PatternSpec, generate_trace


def quick_trace(seed=1, n=1500, pages=600, reuse=0.6):
    return generate_trace(
        "it", n, pages,
        [PatternSpec("zipf", 0.7, {"alpha": 0.7}),
         PatternSpec("sequential", 0.3)],
        gap_mean=5.0, write_fraction=0.3, dependent_fraction=0.5,
        seed=seed, reuse_fraction=reuse, reuse_window=256)


class TestSingleNodeRuns:
    @pytest.mark.parametrize("arch", ["e-fam", "i-fam", "deact-w",
                                      "deact-n"])
    def test_run_completes_with_sane_metrics(self, arch):
        system = FamSystem(small_config(), arch, seed=2)
        result = system.run(quick_trace(), benchmark="it")
        assert result.architecture == arch
        node = result.nodes[0]
        assert node.instructions == quick_trace().instructions
        assert node.memory_accesses == 1500
        assert 0 < result.ipc < 16  # bounded by issue slots
        assert result.runtime_ns > 0

    def test_determinism(self):
        """Identical config + trace + seed -> identical results."""
        def run():
            system = FamSystem(small_config(), "deact-n", seed=9)
            return system.run(quick_trace(), benchmark="it")
        a, b = run(), run()
        assert a.ipc == b.ipc
        assert a.fam_counters == b.fam_counters
        assert a.nodes[0].runtime_ns == b.nodes[0].runtime_ns

    def test_efam_fastest_overall(self):
        results = {}
        for arch in ("e-fam", "i-fam", "deact-n"):
            system = FamSystem(small_config(), arch, seed=2)
            results[arch] = system.run(quick_trace(), benchmark="it")
        assert results["e-fam"].ipc > results["i-fam"].ipc
        assert results["e-fam"].ipc > results["deact-n"].ipc

    def test_ifam_has_more_at_traffic_than_efam(self):
        results = {}
        for arch in ("e-fam", "i-fam"):
            system = FamSystem(small_config(), arch, seed=2)
            results[arch] = system.run(quick_trace(), benchmark="it")
        assert results["i-fam"].fam_at_fraction > \
            results["e-fam"].fam_at_fraction

    def test_no_access_violations_in_honest_runs(self):
        """An unmodified workload never trips access control."""
        system = FamSystem(small_config(), "deact-n", seed=2)
        system.run(quick_trace(), benchmark="it")  # would raise
        assert system.nodes[0].stu.stats.get("violations") == 0


class TestMultiNodeRuns:
    def test_per_node_traces(self):
        config = with_nodes(small_config(), 2)
        system = FamSystem(config, "deact-n", seed=2)
        traces = [quick_trace(seed=1), quick_trace(seed=2)]
        result = system.run(traces, benchmark="pair")
        assert len(result.nodes) == 2
        assert all(n.memory_accesses == 1500 for n in result.nodes)

    def test_trace_count_mismatch_rejected(self):
        config = with_nodes(small_config(), 2)
        system = FamSystem(config, "i-fam", seed=2)
        with pytest.raises(ConfigError):
            system.run([quick_trace()], benchmark="bad")

    def test_single_trace_replicated(self):
        config = with_nodes(small_config(), 2)
        system = FamSystem(config, "i-fam", seed=2)
        result = system.run(quick_trace(), benchmark="rep")
        assert len(result.nodes) == 2

    def test_nodes_isolated_in_fam(self):
        """Two nodes never receive the same FAM frame."""
        config = with_nodes(small_config(), 2)
        system = FamSystem(config, "i-fam", seed=2)
        system.run([quick_trace(seed=1), quick_trace(seed=2)],
                   benchmark="iso")
        frames = [set(), set()]
        for node_id in range(2):
            table = system.broker.system_table(node_id)
            frames[node_id] = {e.frame for _v, e in table.iter_mappings()}
        assert not frames[0] & frames[1]

    def test_contention_slows_shared_fam(self):
        """8 nodes sharing the pool run no faster per node than 1."""
        solo = FamSystem(small_config(), "i-fam", seed=2)
        solo_result = solo.run(quick_trace(seed=1), benchmark="c")
        crowd = FamSystem(with_nodes(small_config(), 4), "i-fam", seed=2)
        crowd_result = crowd.run(
            [quick_trace(seed=i) for i in range(4)], benchmark="c")
        assert crowd_result.nodes[0].runtime_ns >= \
            solo_result.nodes[0].runtime_ns

    def test_deact_speedup_grows_with_nodes(self):
        """The Figure 16 trend at miniature scale."""
        def speedup(nodes):
            config = with_nodes(small_config(), nodes)
            traces = [quick_trace(seed=i, reuse=0.4) for i in range(nodes)]
            ifam = FamSystem(config, "i-fam", seed=2).run(
                traces, benchmark="f16")
            deact = FamSystem(config, "deact-n", seed=2).run(
                traces, benchmark="f16")
            return deact.speedup_over(ifam)

        assert speedup(4) > speedup(1) * 0.9  # allow noise, expect gain


class TestRunResultDerivations:
    def make(self, arch):
        system = FamSystem(small_config(), arch, seed=2)
        return system.run(quick_trace(), benchmark="it")

    def test_speedup_and_slowdown_consistent(self):
        efam = self.make("e-fam")
        ifam = self.make("i-fam")
        assert ifam.slowdown_vs(efam) == pytest.approx(
            1.0 / ifam.normalized_performance(efam))
        assert efam.speedup_over(ifam) == pytest.approx(
            ifam.slowdown_vs(efam))

    def test_mpki_positive(self):
        assert self.make("e-fam").mpki > 0

    def test_node_accessor(self):
        result = self.make("e-fam")
        assert result.node(0) is result.nodes[0]
        assert result.node(99) is None
