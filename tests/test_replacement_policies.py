"""Tests for the standalone replacement-policy objects.

The cache core inlines LRU/FIFO/random for speed; these policy classes
remain part of the public API for users building custom structures.
"""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


class TestLruPolicy:
    def test_promotes_on_access(self):
        policy = LruPolicy()
        order = [1, 2, 3]
        policy.on_access(order, 1)
        assert order == [2, 3, 1]

    def test_victim_is_front(self):
        assert LruPolicy().select_victim([5, 6, 7]) == 5

    def test_new_way_appended(self):
        policy = LruPolicy()
        order = [1]
        policy.on_access(order, 9)
        assert order == [1, 9]


class TestFifoPolicy:
    def test_hits_do_not_promote(self):
        policy = FifoPolicy()
        order = [1, 2, 3]
        policy.on_access(order, 1)
        assert order == [1, 2, 3]

    def test_fill_moves_to_back(self):
        policy = FifoPolicy()
        order = [1, 2, 3]
        policy.on_fill(order, 1)
        assert order == [2, 3, 1]

    def test_victim_is_front(self):
        assert FifoPolicy().select_victim([4, 5]) == 4


class TestRandomPolicy:
    def test_deterministic_by_seed(self):
        a = RandomPolicy(seed=2)
        b = RandomPolicy(seed=2)
        order = [1, 2, 3, 4]
        picks_a = [a.select_victim(order) for _ in range(10)]
        picks_b = [b.select_victim(order) for _ in range(10)]
        assert picks_a == picks_b

    def test_victim_always_resident(self):
        policy = RandomPolicy(seed=5)
        order = [7, 8, 9]
        for _ in range(20):
            assert policy.select_victim(order) in order


class TestFactory:
    def test_make_each(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("plru")


class TestFifoFillInPlaceRegression:
    """Regression for the FIFO aging bug: ``fill`` on an
    already-present key used to ``move_to_end`` unconditionally,
    refreshing the line's insertion age under FIFO — replace-in-place
    must preserve insertion order."""

    def _filled(self, policy):
        from repro.cache.cache import SetAssociativeCache

        cache = SetAssociativeCache("t", n_sets=1, associativity=3,
                                    replacement=policy)
        cache.fill(10, "a")
        cache.fill(11, "b")
        cache.fill(12, "c")
        return cache

    def test_fifo_replace_in_place_preserves_age(self):
        cache = self._filled("fifo")
        cache.fill(10, "a2")  # replace in place — age must not refresh
        result = cache.fill(13, "d")
        assert result.evicted_key == 10  # 10 is still the oldest

    def test_fifo_fill_line_preserves_age(self):
        cache = self._filled("fifo")
        assert cache.fill_line(10, "a2") is None
        evicted = cache.fill_line(13, "d")
        assert evicted is not None and evicted[0] == 10

    def test_fifo_hits_still_do_not_promote(self):
        cache = self._filled("fifo")
        cache.get_line(10)
        result = cache.fill(13, "d")
        assert result.evicted_key == 10

    def test_lru_replace_in_place_does_promote(self):
        # LRU semantics are unchanged: a fill is a touch.
        cache = self._filled("lru")
        cache.fill(10, "a2")
        result = cache.fill(13, "d")
        assert result.evicted_key == 11

    def test_replace_in_place_keeps_dirty_bit(self):
        cache = self._filled("fifo")
        cache.fill(10, "a2", dirty=True)
        cache.fill(10, "a3", dirty=False)
        evicted = cache.fill_line(13, "d")
        assert evicted == (10, "a3", True)
