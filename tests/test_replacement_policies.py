"""Tests for the standalone replacement-policy objects.

The cache core inlines LRU/FIFO/random for speed; these policy classes
remain part of the public API for users building custom structures.
"""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


class TestLruPolicy:
    def test_promotes_on_access(self):
        policy = LruPolicy()
        order = [1, 2, 3]
        policy.on_access(order, 1)
        assert order == [2, 3, 1]

    def test_victim_is_front(self):
        assert LruPolicy().select_victim([5, 6, 7]) == 5

    def test_new_way_appended(self):
        policy = LruPolicy()
        order = [1]
        policy.on_access(order, 9)
        assert order == [1, 9]


class TestFifoPolicy:
    def test_hits_do_not_promote(self):
        policy = FifoPolicy()
        order = [1, 2, 3]
        policy.on_access(order, 1)
        assert order == [1, 2, 3]

    def test_fill_moves_to_back(self):
        policy = FifoPolicy()
        order = [1, 2, 3]
        policy.on_fill(order, 1)
        assert order == [2, 3, 1]

    def test_victim_is_front(self):
        assert FifoPolicy().select_victim([4, 5]) == 4


class TestRandomPolicy:
    def test_deterministic_by_seed(self):
        a = RandomPolicy(seed=2)
        b = RandomPolicy(seed=2)
        order = [1, 2, 3, 4]
        picks_a = [a.select_victim(order) for _ in range(10)]
        picks_b = [b.select_victim(order) for _ in range(10)]
        assert picks_a == picks_b

    def test_victim_always_resident(self):
        policy = RandomPolicy(seed=5)
        order = [7, 8, 9]
        for _ in range(20):
            assert policy.select_victim(order) in order


class TestFactory:
    def test_make_each(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("plru")
