"""Tests for the inclusive three-level cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.config.system import CacheConfig


def tiny_hierarchy():
    """A hierarchy small enough to force evictions quickly."""
    return CacheHierarchy(
        CacheConfig("L1", 256, associativity=2, latency_ns=1.0),
        CacheConfig("L2", 512, associativity=2, latency_ns=3.0),
        CacheConfig("L3", 1024, associativity=2, latency_ns=10.0),
    )


class TestHitPath:
    def test_cold_miss_hits_no_level(self):
        hierarchy = tiny_hierarchy()
        result = hierarchy.access(0)
        assert result.level == 0
        assert not result.hit
        assert result.latency_ns == 14.0  # checked all three levels

    def test_second_access_hits_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        result = hierarchy.access(0)
        assert result.level == 1
        assert result.latency_ns == 1.0

    def test_block_granularity(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        result = hierarchy.access(63)  # same 64B block
        assert result.level == 1

    def test_adjacent_block_misses(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        result = hierarchy.access(64)
        assert result.level == 0

    def test_l2_hit_refills_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        # Evict block 0 from L1 (2-way sets of 2: fill same L1 set).
        l1_sets = hierarchy.levels[0].n_sets
        hierarchy.access(64 * l1_sets)
        hierarchy.access(64 * 2 * l1_sets)
        assert hierarchy.levels[0].probe(0) is None
        result = hierarchy.access(0)
        assert result.level == 2
        # And L1 now holds it again.
        assert hierarchy.levels[0].probe(0) is not None


class TestInclusivity:
    def test_l3_eviction_back_invalidates(self):
        hierarchy = tiny_hierarchy()
        l3 = hierarchy.levels[2]
        hierarchy.access(0)
        # Fill the L3 set containing block 0 until 0 is evicted.
        addr = 0
        while l3.probe(0) is not None:
            addr += 64 * l3.n_sets
            hierarchy.access(addr)
        assert hierarchy.levels[0].probe(0) is None
        assert hierarchy.levels[1].probe(0) is None

    def test_inner_levels_subset_of_l3(self):
        hierarchy = tiny_hierarchy()
        for i in range(200):
            hierarchy.access(i * 64 * 3)
        l3 = hierarchy.levels[2]
        for inner in hierarchy.levels[:2]:
            for lines in inner._sets:
                for key in lines:
                    assert key in l3, "inclusivity violated"


class TestWritebacks:
    def test_dirty_l3_eviction_reports_writeback(self):
        hierarchy = tiny_hierarchy()
        l3 = hierarchy.levels[2]
        hierarchy.access(0, write=True)
        writebacks = []
        addr = 0
        while l3.probe(0) is not None:
            addr += 64 * l3.n_sets
            writebacks += hierarchy.access(addr).writebacks
        assert 0 in writebacks

    def test_clean_eviction_no_writeback(self):
        hierarchy = tiny_hierarchy()
        l3 = hierarchy.levels[2]
        hierarchy.access(0, write=False)
        writebacks = []
        addr = 0
        while l3.probe(0) is not None:
            addr += 64 * l3.n_sets
            writebacks += hierarchy.access(addr).writebacks
        assert 0 not in writebacks


class TestStats:
    def test_llc_miss_count(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        hierarchy.access(0)
        hierarchy.access(6400)
        assert hierarchy.llc_miss_count() == 2

    def test_miss_latency(self):
        assert tiny_hierarchy().miss_latency_ns == 14.0

    def test_contains(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        assert hierarchy.contains(0) == 1
        assert hierarchy.contains(10_000_000) is None

    def test_table_ii_geometry(self):
        """The default Table II hierarchy has the right set counts."""
        from repro.config.presets import default_config
        config = default_config()
        hierarchy = CacheHierarchy(config.l1, config.l2, config.l3)
        assert hierarchy.levels[0].n_sets * 8 * 64 == 32 * 1024
        assert hierarchy.levels[1].n_sets * 8 * 64 == 256 * 1024
        assert hierarchy.levels[2].n_sets * 16 * 64 == 1024 * 1024
