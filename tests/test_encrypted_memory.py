"""Tests for the encrypted-memory read optimization (Section III-A
aside): with per-node encryption keys, reads skip verification; writes
are still vetted."""

import pytest

from repro.acm.metadata import Permission
from repro.config.presets import small_config, with_encrypted_memory
from repro.core.system import FamSystem
from repro.errors import AccessViolationError
from repro.workloads.synthetic import PatternSpec, generate_trace

PAGE = 4096


def trace(seed=1):
    return generate_trace(
        "enc", 1200, 500,
        [PatternSpec("zipf", 1.0, {"alpha": 0.5})],
        gap_mean=4.0, write_fraction=0.3, dependent_fraction=0.5,
        seed=seed, reuse_fraction=0.5, reuse_window=256)


class TestEncryptedMode:
    def test_reads_skip_acm(self):
        config = with_encrypted_memory(small_config())
        system = FamSystem(config, "deact-n", seed=5)
        system.run(trace(), benchmark="enc")
        node = system.nodes[0]
        assert node.stats.get("stu.reads_unverified") > 0
        # Only write verifications reached the ACM cache.
        acm_lookups = node.stu.organization.hits + \
            node.stu.organization.misses
        assert acm_lookups < node.stats.get("mem.fam")

    def test_writes_still_verified(self):
        config = with_encrypted_memory(small_config())
        system = FamSystem(config, "deact-n", seed=5)
        fam_page = system.broker.allocate_for_node(0, node_page=0x99)
        # A foreign node's *write* must still be caught.
        other = FamSystem(with_encrypted_memory(small_config()),
                          "deact-n", seed=6)
        with pytest.raises(AccessViolationError):
            system.nodes[0].stu.verify_access(
                (fam_page + 10_000) * PAGE, now=0.0,
                needed=Permission.WRITE)

    def test_encrypted_mode_not_slower(self):
        """Skipping read verification can only reduce latency."""
        plain = FamSystem(small_config(), "deact-n", seed=5)
        plain_result = plain.run(trace(), benchmark="enc")
        enc = FamSystem(with_encrypted_memory(small_config()), "deact-n",
                        seed=5)
        enc_result = enc.run(trace(), benchmark="enc")
        assert enc_result.ipc >= plain_result.ipc * 0.999

    def test_default_is_disabled(self):
        system = FamSystem(small_config(), "deact-n", seed=5)
        system.run(trace(), benchmark="enc")
        assert system.nodes[0].stats.get("stu.reads_unverified") == 0

    def test_fewer_acm_fetches_at_fam(self):
        plain = FamSystem(small_config(), "deact-n", seed=5)
        plain.run(trace(), benchmark="enc")
        enc = FamSystem(with_encrypted_memory(small_config()), "deact-n",
                        seed=5)
        enc.run(trace(), benchmark="enc")
        from repro.mem.request import RequestKind
        assert enc.fam.kind_counts[RequestKind.ACM] <= \
            plain.fam.kind_counts[RequestKind.ACM]
