"""Bounds on the hot-path memo caches.

PR 2's pure memo layers (per-geometry trace decode, per-VPN page-walk
decomposition) were unbounded; they are now LRU-capped through
:class:`repro.memo.BoundedMemo` so long many-trace sweeps cannot grow
them without limit.  Eviction only ever costs a recompute — these
tests also pin that recomputed entries are correct.
"""

import pytest

from repro.errors import ConfigError
from repro.memo import BoundedMemo
from repro.pagetable.x86 import FourLevelPageTable, WALK_MEMO_CAP
from repro.workloads.trace import DECODED_MEMO_CAP, Trace


class TestBoundedMemo:
    def test_capacity_enforced_lru(self):
        memo = BoundedMemo(3)
        for key in "abc":
            memo.put(key, key.upper())
        assert memo.get("a") == "A"      # refreshes a
        memo.put("d", "D")               # evicts b (coldest)
        assert len(memo) == 3
        assert "b" not in memo
        assert memo.get("b") is None
        assert memo.get("a") == "A"
        assert memo.get("d") == "D"

    def test_put_refreshes_and_replaces(self):
        memo = BoundedMemo(2)
        memo.put("x", 1)
        memo.put("y", 2)
        memo.put("x", 3)                 # replace refreshes recency
        memo.put("z", 4)                 # evicts y
        assert memo.get("x") == 3
        assert "y" not in memo

    def test_pop_and_clear(self):
        memo = BoundedMemo(2)
        memo.put("x", 1)
        assert memo.pop("x") == 1
        assert memo.pop("x", "gone") == "gone"
        memo.put("y", 2)
        memo.clear()
        assert len(memo) == 0

    def test_none_values_memoize(self):
        memo = BoundedMemo(2)
        memo.put("x", None)
        assert memo.get("x", "default") is None

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigError):
            BoundedMemo(0)


class TestDecodedCacheBound:
    def _trace(self):
        return Trace(name="t", gaps=[0, 1, 2], vaddrs=[0, 4096, 8192],
                     writes=[False, True, False],
                     dependents=[False, False, True])

    def test_cache_capped_across_geometries(self):
        trace = self._trace()
        block = 64
        for exponent in range(DECODED_MEMO_CAP + 3):
            trace.decoded(4096 << exponent, block)
        assert len(trace._decoded_cache) <= DECODED_MEMO_CAP

    def test_recent_geometry_stays_cached(self):
        trace = self._trace()
        decoded = trace.decoded(4096, 64)
        assert trace.decoded(4096, 64) is decoded
        arrays = trace.decoded_arrays(4096, 64)
        assert trace.decoded_arrays(4096, 64) is arrays

    def test_evicted_geometry_recomputes_identically(self):
        trace = self._trace()
        first = trace.decoded(4096, 64)
        for exponent in range(1, DECODED_MEMO_CAP + 2):
            trace.decoded(4096 << exponent, 64)
        again = trace.decoded(4096, 64)
        assert again is not first          # evicted, rebuilt
        assert again == first              # ... identically


class TestWalkMemoBound:
    def _table(self):
        frames = iter(range(1, 100000))
        return FourLevelPageTable(lambda: next(frames) * 4096, name="pt")

    def test_default_cap_is_bounded(self):
        table = self._table()
        assert table._walk_memo.capacity == WALK_MEMO_CAP

    def test_memo_never_exceeds_cap(self):
        table = self._table()
        table._walk_memo = BoundedMemo(8)
        for vpn in range(40):
            table.map(vpn, 5000 + vpn)
        for vpn in range(40):
            table.walk_entries_cached(vpn)
        assert len(table._walk_memo) <= 8
        # Evicted entries re-walk correctly.
        steps, entry = table.walk_entries_cached(0)
        assert entry.frame == 5000
        assert [step.level for step in steps] == [0, 1, 2, 3]

    def test_map_invalidates_memo_entry(self):
        table = self._table()
        table.map(7, 1234)
        _steps, entry = table.walk_entries_cached(7)
        assert entry.frame == 1234
        table.map(7, 4321)                 # remap must invalidate
        _steps, entry = table.walk_entries_cached(7)
        assert entry.frame == 4321

    def test_unmap_invalidates_memo_entry(self):
        from repro.errors import TranslationFault

        table = self._table()
        table.map(9, 77)
        table.walk_entries_cached(9)
        assert table.unmap(9)
        with pytest.raises(TranslationFault):
            table.walk_entries_cached(9)
