"""Tests for the FAM translator, translation cache and outstanding
mapping list."""

import pytest

from repro.config.system import LocalMemoryConfig, TranslationCacheConfig
from repro.errors import ProtocolError
from repro.mem.device import DramDevice
from repro.translator.fam_translator import FamTranslator
from repro.translator.outstanding import OutstandingMappingList
from repro.translator.translation_cache import TranslationCache


def small_tcache_config():
    # 1 KB: 64 entries of 16 B, 4-way -> 16 sets.
    return TranslationCacheConfig(size_bytes=1024)


class TestTranslationCache:
    def test_geometry(self):
        cache = TranslationCache(small_tcache_config())
        assert cache.config.n_entries == 64
        assert cache.n_sets == 16

    def test_paper_geometry_1mb(self):
        """1 MB, four 104-bit entries per 64 B row -> 65536 entries."""
        cache = TranslationCache(TranslationCacheConfig())
        assert cache.config.n_entries == 65536
        assert cache.config.associativity == 4

    def test_set_index_is_modulo(self):
        cache = TranslationCache(small_tcache_config())
        assert cache.set_index(17) == 17 % 16

    def test_row_offset_is_64_bytes_per_set(self):
        cache = TranslationCache(small_tcache_config())
        assert cache.row_offset_bytes(1) == 64
        assert cache.row_offset_bytes(16) == 0

    def test_lookup_install(self):
        cache = TranslationCache(small_tcache_config())
        assert cache.lookup(5) is None
        cache.install(5, 500)
        assert cache.lookup(5) == 500

    def test_hit_rate(self):
        cache = TranslationCache(small_tcache_config())
        cache.install(5, 500)
        cache.lookup(5)
        cache.lookup(6)
        assert cache.hit_rate == 0.5

    def test_random_replacement_within_row(self):
        cache = TranslationCache(small_tcache_config())
        # Five mappings in the same set (4-way): one gets evicted.
        keys = [16 * i for i in range(5)]
        for key in keys:
            cache.install(key, key)
        assert len(cache) == 64 or len(cache) <= 64
        resident = [k for k in keys if cache.probe_resident(k)] \
            if hasattr(cache, "probe_resident") else None
        # At most 4 of the 5 can be resident.
        hits = sum(1 for k in keys if cache.lookup(k) is not None)
        assert hits <= 4

    def test_invalidate(self):
        cache = TranslationCache(small_tcache_config())
        cache.install(5, 500)
        assert cache.invalidate(5)
        assert cache.lookup(5) is None

    def test_invalidate_all(self):
        cache = TranslationCache(small_tcache_config())
        for key in range(10):
            cache.install(key, key)
        assert cache.invalidate_all() == 10
        assert len(cache) == 0


class TestOutstandingMappingList:
    def test_register_resolve(self):
        oml = OutstandingMappingList(capacity=4)
        oml.register(1, fam_addr=0xF000, node_addr=0xA000)
        assert oml.node_address_of(1) == 0xA000
        assert oml.resolve(1) == (0xF000, 0xA000)
        assert len(oml) == 0

    def test_overflow_is_protocol_error(self):
        oml = OutstandingMappingList(capacity=1)
        oml.register(1, 0, 0)
        with pytest.raises(ProtocolError):
            oml.register(2, 0, 0)

    def test_duplicate_id_rejected(self):
        oml = OutstandingMappingList(capacity=4)
        oml.register(1, 0, 0)
        with pytest.raises(ProtocolError):
            oml.register(1, 0, 0)

    def test_unknown_response_rejected(self):
        oml = OutstandingMappingList(capacity=4)
        with pytest.raises(ProtocolError):
            oml.resolve(42)

    def test_peak_occupancy(self):
        oml = OutstandingMappingList(capacity=8)
        for i in range(5):
            oml.register(i, i, i)
        for i in range(5):
            oml.resolve(i)
        assert oml.peak_occupancy == 5
        assert oml.registered == 5

    def test_paper_capacity_default(self):
        assert OutstandingMappingList().capacity == 128


class TestFamTranslator:
    def make(self):
        dram = DramDevice(LocalMemoryConfig())
        translator = FamTranslator(small_tcache_config(), dram,
                                   region_base=0x3FF00000)
        return translator, dram

    def test_lookup_charges_one_dram_access(self):
        translator, dram = self.make()
        result = translator.lookup(5, now=0.0)
        assert not result.hit
        assert dram.accesses == 1
        assert result.completion_ns >= dram.config.access_ns

    def test_install_is_read_modify_write(self):
        translator, dram = self.make()
        done = translator.install(5, 500, now=0.0)
        assert dram.reads == 1
        assert dram.writes == 1
        assert done >= 2 * dram.config.access_ns

    def test_hit_after_install(self):
        translator, _dram = self.make()
        translator.install(5, 500, now=0.0)
        result = translator.lookup(5, now=200.0)
        assert result.hit
        assert result.fam_page == 500

    def test_row_addresses_inside_region(self):
        translator, _dram = self.make()
        for node_page in (0, 1, 17, 161):
            addr = translator.row_address(node_page)
            assert 0x3FF00000 <= addr < 0x3FF00000 + 1024

    def test_shootdown_invalidates_and_writes(self):
        translator, dram = self.make()
        translator.install(5, 500, now=0.0)
        translator.shootdown(5, now=100.0)
        assert not translator.lookup(5, now=200.0).hit
        assert dram.writes == 2  # install write + shootdown write

    def test_hit_rate_reported(self):
        translator, _dram = self.make()
        translator.install(5, 500, now=0.0)
        translator.lookup(5, now=0.0)
        translator.lookup(6, now=0.0)
        assert translator.hit_rate == 0.5

    def test_response_readdressing(self):
        translator, _dram = self.make()
        translator.register_response_mapping(9, fam_addr=0xF0,
                                             node_addr=0xA0)
        assert translator.readdress_response(9) == 0xA0
