"""Unit and property tests for the run-plan layer.

The headline property is the refactor's core claim made executable:
the scalar loop is the *degenerate case* of the run-first pipeline.  A
:class:`BatchExecutor` driven by a plan forced to all length-1 scalar
segments must reproduce the scalar ``step_fast`` path bit-identically
— clock, counters, tag probes — on every catalog workload.  The rest
pins the planner's segment invariants, the per-kind census, and the
``repro.core.tierstats`` compatibility shim.
"""

import pytest

from repro.config.presets import default_config
from repro.core.batch import BatchExecutor
from repro.core.results import RunResult
from repro.core.runplan import (
    EXTENSION,
    HIT_RUN,
    SCALAR,
    SEGMENT_KINDS,
    RunPlanner,
    ScalarExecutor,
    ScalarPlanner,
    Segment,
    SegmentStats,
)
from repro.core.system import FamSystem
from repro.experiments.runner import (
    RunSettings,
    _result_to_dict,
    build_traces,
)
from repro.workloads.catalog import benchmark_names

SETTINGS = RunSettings(n_events=1000, footprint_scale=0.01, seed=5)
SEED = SETTINGS.seed * 31 + 5


def _run_fast(trace, benchmark):
    """The scalar tier through ``FamSystem.run`` — the oracle for the
    degenerate-plan property."""
    system = FamSystem(default_config(), "deact-n", seed=SEED)
    result = system.run([trace], benchmark=benchmark, mode="fast")
    node = system.nodes[0]
    return (_result_to_dict(result), node.core_time_ns,
            system.tag_store_probes())


def _run_with_planner(trace, benchmark, planner):
    """The batch executor with an injected planner, assembled into the
    same RunResult ``FamSystem.run`` would produce."""
    system = FamSystem(default_config(), "deact-n", seed=SEED)
    node = system.nodes[0]
    decoded = trace.decoded(system.config.page_bytes,
                            system.config.block_bytes)
    arrays = trace.decoded_arrays(system.config.page_bytes,
                                  system.config.block_bytes)
    executor = BatchExecutor(node, decoded, arrays, planner=planner)
    executor.run(0, len(decoded))
    node.drain()
    result = RunResult(
        architecture=system.architecture.key, benchmark=benchmark,
        nodes=[node.metrics()],
        fam_counters=system.fam.stats.snapshot(),
        fabric_counters=system.fabric.stats.snapshot())
    return (_result_to_dict(result), node.core_time_ns,
            system.tag_store_probes(), executor.stats)


class TestDegeneratePlan:
    """A plan forced to all length-1 segments IS the scalar path."""

    @pytest.mark.parametrize("bench", benchmark_names())
    def test_all_length_one_segments_match_step_fast(self, bench):
        trace = build_traces(bench, 1, SETTINGS)[0]
        fast_result, fast_clock, fast_probes = _run_fast(trace, bench)
        result, clock, probes, stats = _run_with_planner(
            trace, bench, ScalarPlanner(grain=1))
        assert result == fast_result
        assert clock == fast_clock        # bit-identical, not approx
        assert probes == fast_probes
        # Every event really went through a length-1 scalar segment.
        assert stats.segments[SCALAR] == len(trace)
        assert stats.events[SCALAR] == len(trace)
        assert stats.segments[HIT_RUN] == 0
        assert stats.segments[EXTENSION] == 0

    def test_coarse_scalar_plan_matches_too(self):
        # Segmentation must never affect results: an arbitrary scalar
        # grain (here a prime, so segments straddle every natural
        # boundary) is as bit-identical as the length-1 plan.
        trace = build_traces("mcf", 1, SETTINGS)[0]
        fast_result, fast_clock, fast_probes = _run_fast(trace, "mcf")
        result, clock, probes, _stats = _run_with_planner(
            trace, "mcf", ScalarPlanner(grain=97))
        assert (result, clock, probes) == (fast_result, fast_clock,
                                           fast_probes)

    def test_scalar_planner_rejects_bad_grain(self):
        with pytest.raises(ValueError):
            ScalarPlanner(grain=0)


class TestPlannerSegments:
    """Structural invariants of the segments a RunPlanner emits."""

    def _plan_prefix(self, bench):
        trace = build_traces(bench, 1, SETTINGS)[0]
        system = FamSystem(default_config(), "deact-n", seed=SEED)
        node = system.nodes[0]
        decoded = trace.decoded(system.config.page_bytes,
                                system.config.block_bytes)
        arrays = trace.decoded_arrays(system.config.page_bytes,
                                      system.config.block_bytes)
        executor = BatchExecutor(node, decoded, arrays)
        planner = executor.planner
        assert isinstance(planner, RunPlanner)
        stop = len(decoded)
        batches = []
        cursor = 0
        while cursor < stop:
            segments = planner.next_segments(cursor, stop)
            batches.append(segments)
            for seg in segments:
                executor._dispatch(seg)
                cursor = seg.start + seg.length
        return batches, stop

    @pytest.mark.parametrize("bench", ("hotspot", "bc"))
    def test_segments_are_contiguous_and_typed(self, bench):
        batches, stop = self._plan_prefix(bench)
        cursor = 0
        for segments in batches:
            assert segments, "planner must always emit a segment"
            for seg in segments:
                assert seg.kind in SEGMENT_KINDS
                assert seg.start == cursor
                assert seg.length >= 1
                if seg.kind == HIT_RUN:
                    assert seg.pblocks is not None
                    assert len(seg.pblocks) == seg.length
                else:
                    assert seg.pblocks is None
                if seg.kind == EXTENSION:
                    assert seg.length == 1
                cursor = seg.start + seg.length
        assert cursor == stop

    def test_hit_dominated_trace_plans_runs(self):
        batches, stop = self._plan_prefix("hotspot")
        kinds = [seg.kind for segments in batches for seg in segments]
        run_events = sum(seg.length
                         for segments in batches for seg in segments
                         if seg.kind == HIT_RUN)
        assert HIT_RUN in kinds
        assert run_events > stop // 2


class TestSegmentStats:
    def test_observe_and_merge(self):
        a = SegmentStats()
        a.observe(HIT_RUN, 300, 0.25)
        a.observe(SCALAR, 1)
        b = SegmentStats()
        b.observe(SCALAR, 24, 0.5)
        b.observe(EXTENSION, 1)
        a.merge(b)
        assert a.segments == {HIT_RUN: 1, EXTENSION: 1, SCALAR: 2}
        assert a.events == {HIT_RUN: 300, EXTENSION: 1, SCALAR: 25}
        assert a.wall_s[SCALAR] == 0.5
        assert a.total_events() == 326
        # 300 buckets at 2^8..2^9, 24 at 2^4..2^5, 1 at 2^0.
        assert a.length_hist[HIT_RUN] == {9: 1}
        assert a.length_hist[SCALAR] == {1: 1, 5: 1}
        census = a.as_dict()
        assert set(census) == set(SEGMENT_KINDS)
        assert census[HIT_RUN]["events"] == 300

    def test_render_mentions_every_kind(self):
        stats = SegmentStats()
        stats.observe(HIT_RUN, 128, 0.1)
        text = stats.render()
        for kind in SEGMENT_KINDS:
            assert kind in text

    def test_system_run_exposes_census(self):
        trace = build_traces("hotspot", 1, SETTINGS)[0]
        system = FamSystem(default_config(), "deact-n", seed=SEED)
        system.run([trace], benchmark="hotspot", mode="batch")
        stats = system.segment_stats
        assert stats is not None
        assert stats.total_events() == len(trace)
        assert stats.events[HIT_RUN] > 0
        # Counting is always on; wall-clock attribution is opt-in.
        assert all(v == 0.0 for v in stats.wall_s.values())
        timed = FamSystem(default_config(), "deact-n", seed=SEED)
        timed.run([trace], benchmark="hotspot", mode="batch",
                  segment_timing=True)
        assert timed.segment_stats is not None
        assert sum(timed.segment_stats.wall_s.values()) > 0.0

    def test_reference_run_has_no_census(self):
        trace = build_traces("mcf", 1, SETTINGS)[0]
        system = FamSystem(default_config(), "deact-n", seed=SEED)
        system.run([trace], benchmark="mcf", reference=True)
        assert system.segment_stats is None

    def test_fast_tier_census_is_all_scalar(self):
        trace = build_traces("mcf", 1, SETTINGS)[0]
        system = FamSystem(default_config(), "deact-n", seed=SEED)
        system.run([trace], benchmark="mcf", mode="fast")
        stats = system.segment_stats
        assert stats is not None
        assert stats.events[SCALAR] == len(trace)
        assert stats.segments[HIT_RUN] == 0


class TestScalarExecutorParity:
    def test_advance_matches_run(self):
        trace = build_traces("canl", 1, SETTINGS)[0]
        whole = FamSystem(default_config(), "deact-n", seed=SEED)
        decoded = trace.decoded(whole.config.page_bytes,
                                whole.config.block_bytes)
        ScalarExecutor(whole.nodes[0], decoded).run(0, len(decoded))
        stepped = FamSystem(default_config(), "deact-n", seed=SEED)
        decoded2 = trace.decoded(stepped.config.page_bytes,
                                 stepped.config.block_bytes)
        executor = ScalarExecutor(stepped.nodes[0], decoded2)
        cursor = 0
        while cursor < len(decoded2):
            cursor, _t = executor.advance(cursor, len(decoded2))
        assert (stepped.nodes[0].core_time_ns
                == whole.nodes[0].core_time_ns)
        assert executor.stats.segments[SCALAR] == len(decoded2)


class TestTierstatsShim:
    def test_shim_reexports_runplan_objects(self):
        from repro.core import runplan, tierstats

        assert tierstats.TierPredictor is runplan.TierPredictor
        assert tierstats.MAX_SCAN_WINDOW == runplan.MAX_SCAN_WINDOW
        assert tierstats.MIN_SCALAR_STRETCH == runplan.MIN_SCALAR_STRETCH


class TestSegmentRepr:
    def test_repr_is_debuggable(self):
        seg = Segment(SCALAR, 7, 3)
        assert "scalar" in repr(seg)
        assert "start=7" in repr(seg)
