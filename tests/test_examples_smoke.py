"""Smoke tests: every example script imports and its main() runs on a
reduced problem size.

The examples are user-facing documentation; a refactor that breaks one
should fail the suite, not a reader.
"""

import importlib.util
import os
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def load_example(name):
    path = os.path.join(_EXAMPLES, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "secure_sharing.py",
        "multi_tenant_hpc.py",
        "job_migration.py",
        "sensitivity_sweep.py",
    ])
    def test_example_loads(self, name):
        module = load_example(name)
        assert hasattr(module, "main")


class TestFastExamplesRun:
    def test_secure_sharing_main(self, capsys):
        load_example("secure_sharing.py").main()
        out = capsys.readouterr().out
        assert "DENIED" in out
        assert "must never print" not in out

    def test_job_migration_main(self, capsys):
        load_example("job_migration.py").main()
        out = capsys.readouterr().out
        assert "pages moved" in out
        assert "must never print" not in out

    def test_quickstart_reduced(self, capsys, monkeypatch):
        module = load_example("quickstart.py")
        monkeypatch.setattr(module, "EVENTS", 1200)
        monkeypatch.setattr(module, "FOOTPRINT_SCALE", 0.01)
        module.main()
        out = capsys.readouterr().out
        assert "deact-n" in out

    def test_multi_tenant_reduced(self, capsys, monkeypatch):
        module = load_example("multi_tenant_hpc.py")
        monkeypatch.setattr(module, "EVENTS", 600)
        monkeypatch.setattr(module, "SCALE", 0.01)
        module.main()
        out = capsys.readouterr().out
        assert "whole-system runtime" in out
