"""Tests for the frame allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.broker.allocator import FrameAllocator
from repro.errors import AllocationError, ConfigError


class TestContiguousPolicy:
    def test_ascending_addresses(self):
        alloc = FrameAllocator(0, 10, policy="contiguous")
        addrs = [alloc.allocate() for _ in range(3)]
        assert addrs == [0, 4096, 8192]

    def test_base_offset(self):
        alloc = FrameAllocator(8192, 4, policy="contiguous")
        assert alloc.allocate() == 8192


class TestRandomPolicy:
    def test_deterministic_per_seed(self):
        def run(seed):
            alloc = FrameAllocator(0, 100, policy="random", seed=seed)
            return [alloc.allocate() for _ in range(20)]
        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_not_simply_ascending(self):
        alloc = FrameAllocator(0, 1000, policy="random", seed=1)
        addrs = [alloc.allocate() for _ in range(50)]
        assert addrs != sorted(addrs)

    def test_no_duplicates(self):
        alloc = FrameAllocator(0, 500, policy="random", seed=2)
        addrs = [alloc.allocate() for _ in range(500)]
        assert len(set(addrs)) == 500

    def test_large_pool_constructs_quickly(self):
        """Lazy Fisher-Yates: a 16GB pool must not be shuffled up
        front."""
        import time
        start = time.time()
        alloc = FrameAllocator(0, 4_000_000, policy="random", seed=1)
        alloc.allocate()
        assert time.time() - start < 0.5


class TestExhaustionAndFree:
    def test_exhaustion_raises(self):
        alloc = FrameAllocator(0, 2, policy="contiguous")
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AllocationError):
            alloc.allocate()

    def test_free_enables_reuse(self):
        alloc = FrameAllocator(0, 1, policy="contiguous")
        addr = alloc.allocate()
        alloc.free(addr)
        assert alloc.allocate() == addr

    def test_double_free_rejected(self):
        alloc = FrameAllocator(0, 4)
        addr = alloc.allocate()
        alloc.free(addr)
        with pytest.raises(AllocationError):
            alloc.free(addr)

    def test_foreign_free_rejected(self):
        alloc = FrameAllocator(0, 4)
        with pytest.raises(AllocationError):
            alloc.free(4096 * 100)

    def test_unaligned_free_rejected(self):
        alloc = FrameAllocator(0, 4)
        alloc.allocate()
        with pytest.raises(AllocationError):
            alloc.free(7)

    def test_len_and_utilization(self):
        alloc = FrameAllocator(0, 4)
        assert len(alloc) == 4
        alloc.allocate()
        assert len(alloc) == 3
        assert alloc.utilization == 0.25

    def test_is_allocated(self):
        alloc = FrameAllocator(0, 4, policy="contiguous")
        addr = alloc.allocate()
        assert alloc.is_allocated(addr)
        assert not alloc.is_allocated(addr + 4096)


class TestContiguousRuns:
    def test_run_is_consecutive(self):
        alloc = FrameAllocator(0, 64, policy="random", seed=9)
        run = alloc.allocate_contiguous_run(8)
        assert [run[i + 1] - run[i] for i in range(7)] == [4096] * 7

    def test_run_avoids_allocated_frames(self):
        alloc = FrameAllocator(0, 64, policy="random", seed=9)
        taken = [alloc.allocate() for _ in range(10)]
        run = alloc.allocate_contiguous_run(8)
        assert not set(run) & set(taken)

    def test_run_too_large_raises(self):
        alloc = FrameAllocator(0, 4)
        with pytest.raises(AllocationError):
            alloc.allocate_contiguous_run(5)

    def test_run_frames_marked_allocated(self):
        alloc = FrameAllocator(0, 16, policy="random", seed=1)
        run = alloc.allocate_contiguous_run(4)
        for addr in run:
            assert alloc.is_allocated(addr)

    def test_allocation_after_run_avoids_run(self):
        alloc = FrameAllocator(0, 16, policy="random", seed=1)
        run = set(alloc.allocate_contiguous_run(4))
        rest = [alloc.allocate() for _ in range(12)]
        assert not run & set(rest)
        with pytest.raises(AllocationError):
            alloc.allocate()


class TestAllocateMany:
    def test_all_or_nothing(self):
        alloc = FrameAllocator(0, 4)
        with pytest.raises(AllocationError):
            alloc.allocate_many(5)
        assert len(alloc) == 4  # nothing leaked

    def test_count(self):
        alloc = FrameAllocator(0, 8)
        addrs = alloc.allocate_many(8)
        assert len(set(addrs)) == 8


class TestValidation:
    def test_rejects_zero_frames(self):
        with pytest.raises(ConfigError):
            FrameAllocator(0, 0)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ConfigError):
            FrameAllocator(100, 4)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            FrameAllocator(0, 4, policy="buddy")


class TestAllocateFreeProperty:
    @given(st.lists(st.sampled_from(["alloc", "free"]),
                    min_size=1, max_size=200),
           st.sampled_from(["random", "contiguous"]))
    @settings(max_examples=40)
    def test_no_double_allocation_ever(self, ops, policy):
        """Invariant: a frame is never handed out twice while live."""
        alloc = FrameAllocator(0, 16, policy=policy, seed=11)
        live = set()
        for op in ops:
            if op == "alloc":
                try:
                    addr = alloc.allocate()
                except AllocationError:
                    assert len(live) == 16
                    continue
                assert addr not in live
                live.add(addr)
            elif live:
                addr = live.pop()
                alloc.free(addr)
        assert alloc.allocated_count == len(live)
