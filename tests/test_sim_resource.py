"""Tests for busy-until resources and outstanding windows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.sim.resource import BankedResource, OutstandingWindow, TimedResource


class TestTimedResource:
    def test_idle_resource_serves_immediately(self):
        res = TimedResource()
        assert res.reserve(10.0, 5.0) == 15.0

    def test_back_to_back_requests_queue(self):
        res = TimedResource()
        assert res.reserve(0.0, 10.0) == 10.0
        # Arrives at t=2 while busy until 10: served 10..15.
        assert res.reserve(2.0, 5.0) == 15.0

    def test_late_arrival_after_idle_gap(self):
        res = TimedResource()
        res.reserve(0.0, 10.0)
        assert res.reserve(100.0, 5.0) == 105.0

    def test_peek_does_not_reserve(self):
        res = TimedResource()
        assert res.peek_completion(0.0, 5.0) == 5.0
        assert res.busy_until == 0.0

    def test_negative_service_rejected(self):
        res = TimedResource()
        with pytest.raises(ConfigError):
            res.reserve(0.0, -1.0)

    def test_busy_time_accumulates(self):
        res = TimedResource()
        res.reserve(0.0, 3.0)
        res.reserve(0.0, 4.0)
        assert res.busy_time == 7.0
        assert res.reservations == 2

    def test_reset(self):
        res = TimedResource()
        res.reserve(0.0, 5.0)
        res.reset()
        assert res.busy_until == 0.0
        assert res.reservations == 0

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                              st.floats(min_value=0, max_value=1e4)),
                    min_size=1, max_size=50))
    def test_completions_monotone_for_sorted_arrivals(self, items):
        """FIFO service: completion times never decrease when arrivals
        are fed in time order."""
        res = TimedResource()
        last = 0.0
        for arrival, service in sorted(items):
            done = res.reserve(arrival, service)
            assert done >= last
            assert done >= arrival + service
            last = done


class TestBankedResource:
    def test_different_banks_overlap(self):
        banks = BankedResource("m", 2, interleave_bytes=64)
        done0 = banks.reserve(0, 0.0, 10.0)
        done1 = banks.reserve(64, 0.0, 10.0)
        assert done0 == 10.0
        assert done1 == 10.0  # different bank: no queueing

    def test_same_bank_serializes(self):
        banks = BankedResource("m", 2, interleave_bytes=64)
        assert banks.reserve(0, 0.0, 10.0) == 10.0
        assert banks.reserve(128, 0.0, 10.0) == 20.0  # 128 -> bank 0

    def test_bank_index_wraps(self):
        banks = BankedResource("m", 4, interleave_bytes=64)
        assert banks.bank_index(0) == 0
        assert banks.bank_index(64) == 1
        assert banks.bank_index(64 * 4) == 0

    def test_rejects_bad_interleave(self):
        with pytest.raises(ConfigError):
            BankedResource("m", 4, interleave_bytes=48)

    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigError):
            BankedResource("m", 0)

    def test_total_counters(self):
        banks = BankedResource("m", 2)
        banks.reserve(0, 0.0, 5.0)
        banks.reserve(64, 0.0, 7.0)
        assert banks.total_reservations == 2
        assert banks.total_busy_time == 12.0


class TestOutstandingWindow:
    def test_admit_when_empty(self):
        window = OutstandingWindow(2)
        assert window.admit(5.0) == 5.0

    def test_blocks_when_full(self):
        window = OutstandingWindow(2)
        window.admit(0.0)
        window.record(100.0)
        window.admit(0.0)
        window.record(200.0)
        # Third request must wait for the t=100 completion.
        assert window.admit(0.0) == 100.0

    def test_drain_frees_slots(self):
        window = OutstandingWindow(1)
        window.admit(0.0)
        window.record(50.0)
        # At t=60 the request has completed; no waiting.
        assert window.admit(60.0) == 60.0

    def test_stall_time_tracked(self):
        window = OutstandingWindow(1)
        window.admit(0.0)
        window.record(30.0)
        window.admit(10.0)
        assert window.stall_time == 20.0

    def test_latest_completion(self):
        window = OutstandingWindow(4)
        for t in (30.0, 10.0, 20.0):
            window.admit(0.0)
            window.record(t)
        assert window.latest_completion() == 30.0
        assert window.earliest_completion() == 10.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            OutstandingWindow(0)

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.floats(min_value=0.1, max_value=100.0),
                    min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_never_exceeds_capacity(self, capacity, latencies):
        """Invariant: in-flight count stays within capacity."""
        window = OutstandingWindow(capacity)
        now = 0.0
        for latency in latencies:
            issue = window.admit(now)
            assert issue >= now
            window.record(issue + latency)
            assert len(window) <= capacity
            now = issue
