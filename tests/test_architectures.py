"""Tests for the architecture strategies (E-FAM / I-FAM / DeACT)."""

import pytest

from repro.config.presets import small_config
from repro.core.architectures import (
    ARCHITECTURES,
    DeactN,
    DeactW,
    EFam,
    IFam,
    make_architecture,
)
from repro.core.system import FamSystem
from repro.errors import ConfigError
from repro.mem.request import RequestKind
from repro.stu.organizations import (
    DeactNAcmCache,
    DeactWAcmCache,
    IFamStuCache,
)

PAGE = 4096


def system_for(arch, local_fraction=0.0):
    from dataclasses import replace
    config = small_config()
    config = config.replace(
        allocation=replace(config.allocation,
                           local_fraction=local_fraction))
    return FamSystem(config, arch, seed=3)


class TestRegistry:
    def test_four_architectures(self):
        assert set(ARCHITECTURES) == {"e-fam", "i-fam", "deact-w",
                                      "deact-n"}

    def test_make_by_name_case_insensitive(self):
        assert isinstance(make_architecture("DeACT-N"), DeactN)
        assert isinstance(make_architecture("E-FAM"), EFam)

    def test_make_passthrough(self):
        arch = IFam()
        assert make_architecture(arch) is arch

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_architecture("z-fam")

    def test_table_i_properties(self):
        assert not EFam().secure and not EFam().avoids_os_changes
        assert IFam().secure and IFam().avoids_os_changes
        assert DeactN().secure and DeactN().avoids_os_changes

    def test_stu_organizations(self):
        config = small_config().stu
        assert IFam().make_stu_organization(config).__class__ is IFamStuCache
        assert DeactW().make_stu_organization(config).__class__ is \
            DeactWAcmCache
        assert DeactN().make_stu_organization(config).__class__ is \
            DeactNAcmCache
        assert EFam().make_stu_organization(config) is None


class TestEFamPath:
    def test_no_translation_traffic_at_fam(self):
        system = system_for("e-fam")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        snap = system.fam.snapshot()
        # Node PTW traffic may reach FAM (PT pages live there), but no
        # STU walks or ACM fetches exist in E-FAM.
        assert snap["kind.fam_ptw"] == 0
        assert snap["kind.acm"] == 0

    def test_round_trip_latency(self):
        system = system_for("e-fam")
        node = system.nodes[0]
        completion, level = node.access(0x5000_0000, False, 0.0)
        assert level == 0
        assert completion >= 1000.0  # two 500ns one-way hops minimum


class TestIFamPath:
    def test_miss_walks_system_table(self):
        system = system_for("i-fam")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        assert system.fam.snapshot()["kind.fam_ptw"] >= 4

    def test_hit_skips_walk(self):
        system = system_for("i-fam")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        walks_before = node.stu.stats.get("walks")
        node.access(0x5000_0000 + 64, False, 50_000.0)
        # Same page: STU mapping cached; no new walk for the data
        # access (TLB also hits so no node PTW either).
        assert node.stu.stats.get("walks") == walks_before

    def test_translation_hit_rate_reported(self):
        system = system_for("i-fam")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        node.access(0x5000_0000 + 64, False, 50_000.0)
        arch = system.architecture
        assert 0.0 < arch.translation_hit_rate(node) <= 1.0
        assert arch.acm_hit_rate(node) == arch.translation_hit_rate(node)


class TestDeactPath:
    def test_translation_miss_uses_stu_walk_then_caches(self):
        system = system_for("deact-n")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        assert node.fam_translator.cache.misses >= 1
        assert system.fam.snapshot()["kind.fam_ptw"] >= 4
        # The mapping response installed the translation.
        vpn = 0x5000_0000 // PAGE
        frame = node.page_table.lookup(vpn).frame
        assert node.fam_translator.cache.lookup(frame) is not None

    def test_acm_fetches_reach_fam(self):
        system = system_for("deact-n")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        assert system.fam.snapshot()["kind.acm"] >= 1

    def test_hit_path_accesses_local_dram(self):
        system = system_for("deact-n")
        node = system.nodes[0]
        node.access(0x5000_0000, False, 0.0)
        dram_before = node.dram.accesses
        node.access(0x5000_0000 + 64, False, 100_000.0)
        # L1/2/3 may hit for the same block; use a different block in
        # the same page to force a FAM access with a translator lookup.
        node.access(0x5000_0000 + 128, False, 200_000.0)
        assert node.dram.accesses > dram_before

    def test_deact_w_and_n_differ_only_in_acm_cache(self):
        w = system_for("deact-w")
        n = system_for("deact-n")
        assert isinstance(w.nodes[0].stu.organization, DeactWAcmCache)
        assert isinstance(n.nodes[0].stu.organization, DeactNAcmCache)
        assert w.nodes[0].fam_translator is not None
        assert n.nodes[0].fam_translator is not None

    def test_rates_reported_separately(self):
        system = system_for("deact-n")
        node = system.nodes[0]
        for block in range(4):
            node.access(0x5000_0000 + block * 64, False,
                        block * 100_000.0)
        arch = system.architecture
        assert 0.0 <= arch.translation_hit_rate(node) <= 1.0
        assert 0.0 <= arch.acm_hit_rate(node) <= 1.0


class TestCrossArchitectureOrdering:
    def test_efam_fastest_for_translation_heavy_access(self):
        """One cold FAM access: E-FAM completes before I-FAM (which
        walks) and DeACT (which walks + verifies)."""
        completions = {}
        for arch in ("e-fam", "i-fam", "deact-n"):
            system = system_for(arch)
            node = system.nodes[0]
            completion, _ = node.access(0x5000_0000, False, 0.0)
            completions[arch] = completion
        assert completions["e-fam"] < completions["i-fam"]
        assert completions["e-fam"] < completions["deact-n"]

    def test_warm_deact_beats_warm_ifam_after_stu_thrash(self):
        """Touch more pages than the STU holds; re-touch the first
        page.  DeACT's in-DRAM cache still holds it, I-FAM re-walks."""
        from dataclasses import replace
        thrash_pages = 200  # >> small_config STU (64 entries)

        def warm_then_probe(arch):
            system = system_for(arch)
            node = system.nodes[0]
            t = 0.0
            for page in range(thrash_pages):
                completion, _ = node.access(0x5000_0000 + page * PAGE,
                                            False, t)
                t = completion + 1000.0
            start = t + 1_000_000.0
            completion, _ = node.access(0x5000_0000 + 64, False, start)
            return completion - start

        assert warm_then_probe("deact-n") < warm_then_probe("i-fam")
